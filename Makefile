# Convenience targets for the reproduction harness.
#
#   make test        - the full tier-1 suite (tests/)
#   make test-fast   - tier-1 minus the multi-second 'slow' tests
#   make bench       - the benchmark suite (figures, ablations, perf gates)
#   make experiments - regenerate EXPERIMENTS.md with a warm oracle store

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench experiments

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest .

experiments:
	$(PYTHON) -m repro.experiments.run_all --oracle-store .oracle --out EXPERIMENTS.md
