# Convenience targets for the reproduction harness.
#
#   make test        - the full tier-1 suite (tests/)
#   make test-fast   - tier-1 minus the multi-second 'slow' tests
#   make test-fault  - fault-injection / resilience tests only
#   make bench       - the benchmark suite (figures, ablations, perf gates)
#   make serve-smoke - tuning daemon + load generator under flaky-gpu faults
#   make experiments - regenerate EXPERIMENTS.md with a warm oracle store

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast test-fault bench serve-smoke experiments

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

test-fault:
	$(PYTHON) -m pytest tests/ -m fault

bench:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest .

serve-smoke:
	$(PYTHON) -m repro.serve.smoke

experiments:
	$(PYTHON) -m repro.experiments.run_all --oracle-store .oracle --out EXPERIMENTS.md
