# Convenience targets for the reproduction harness.
#
#   make test        - the full tier-1 suite (tests/)
#   make test-fast   - tier-1 minus the multi-second 'slow'/'drift' tests
#   make test-fault  - fault-injection / resilience tests only
#   make test-drift  - drift-detection / online re-tuning tests only
#   make test-ml     - training-engine / model-layer tests only
#   make test-search - strategy-zoo / bandit meta-tuner tests only
#   make bench       - the benchmark suite (figures, ablations, perf gates)
#   make serve-smoke - tuning daemon + load generator under flaky-gpu faults
#   make drift-smoke - daemon + load + watch campaign under thermal-throttle
#   make experiments - regenerate EXPERIMENTS.md with a warm oracle store

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast test-fault test-drift test-ml test-search bench serve-smoke drift-smoke experiments

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow and not drift"

test-fault:
	$(PYTHON) -m pytest tests/ -m fault

test-drift:
	$(PYTHON) -m pytest tests/ -m drift

test-ml:
	$(PYTHON) -m pytest tests/ -m ml

test-search:
	$(PYTHON) -m pytest tests/ -m search

bench:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest .

serve-smoke:
	$(PYTHON) -m repro.serve.smoke

drift-smoke:
	$(PYTHON) -m repro.serve.smoke --drift thermal-throttle

experiments:
	$(PYTHON) -m repro.experiments.run_all --oracle-store .oracle --out EXPERIMENTS.md
