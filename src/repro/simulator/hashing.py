"""Deterministic pseudo-random factors from stable keys.

Real devices show reproducible, configuration-specific performance quirks
that no reasonable feature set explains: shared-memory bank conflict
patterns, partition camping, instruction-scheduler luck, alignment.  The
simulator models this as a multiplicative jitter drawn deterministically
from a hash of ``(device, kernel, configuration)`` — the *same* config
always gets the *same* quirk (it is part of the true time, not noise), but
neighbouring configs get unrelated quirks.  This is what gives the learned
model a realistic, device-dependent error floor.

``blake2b`` is used (not ``hash()``) so results are stable across processes
and Python versions.
"""

from __future__ import annotations

import hashlib
import math
import struct


def stable_hash64(*parts) -> int:
    """64-bit stable hash of a tuple of primitives."""
    h = hashlib.blake2b(digest_size=8)
    for p in parts:
        h.update(repr(p).encode("utf-8"))
        h.update(b"\x1f")
    return struct.unpack("<Q", h.digest())[0]


def unit_uniform(*parts) -> float:
    """Deterministic uniform in [0, 1) keyed on ``parts``."""
    return stable_hash64(*parts) / float(1 << 64)


def unit_normal(*parts) -> float:
    """Deterministic standard-normal variate keyed on ``parts``.

    Box-Muller on two independent sub-hashes; clipped to ±4 sigma so a
    single unlucky key cannot produce an absurd outlier.
    """
    u1 = unit_uniform(*parts, "u1")
    u2 = unit_uniform(*parts, "u2")
    u1 = max(u1, 1e-12)
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    return max(-4.0, min(4.0, z))


def lognormal_factor(sigma: float, *parts) -> float:
    """Deterministic multiplicative jitter ``exp(sigma * N(0,1))``."""
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    if sigma == 0.0:
        return 1.0
    return math.exp(sigma * unit_normal(*parts))


class HashPrefix:
    """A blake2b state pre-fed with a constant key prefix.

    Batch evaluation hashes thousands of keys that share a long constant
    prefix (device name, kernel name, component label) and differ only in
    the trailing configuration tuple.  Feeding the prefix once and
    ``copy()``-ing the hash state per suffix produces bit-identical values
    to :func:`unit_uniform` / :func:`unit_normal` at a fraction of the
    cost — ``copy`` duplicates the internal state without re-hashing the
    prefix bytes.
    """

    __slots__ = ("_state",)

    def __init__(self, *prefix) -> None:
        h = hashlib.blake2b(digest_size=8)
        for p in prefix:
            h.update(repr(p).encode("utf-8"))
            h.update(b"\x1f")
        self._state = h

    def _digest(self, suffix: tuple) -> int:
        h = self._state.copy()
        for p in suffix:
            h.update(repr(p).encode("utf-8"))
            h.update(b"\x1f")
        return struct.unpack("<Q", h.digest())[0]

    def uniform(self, *suffix) -> float:
        """``unit_uniform(*prefix, *suffix)``, bit-identical."""
        return self._digest(suffix) / float(1 << 64)

    def normal(self, *suffix) -> float:
        """``unit_normal(*prefix, *suffix)``, bit-identical."""
        base = self._state.copy()
        for p in suffix:
            base.update(repr(p).encode("utf-8"))
            base.update(b"\x1f")
        h1 = base.copy()
        h1.update(b"'u1'\x1f")
        h2 = base.copy()
        h2.update(b"'u2'\x1f")
        u1 = struct.unpack("<Q", h1.digest())[0] / float(1 << 64)
        u2 = struct.unpack("<Q", h2.digest())[0] / float(1 << 64)
        u1 = max(u1, 1e-12)
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return max(-4.0, min(4.0, z))


class JitterTable:
    """Memoizing batch evaluator of :func:`structured_jitter`.

    One table serves one ``(device, kernel)`` pair.  The three structured
    group draws are keyed on *parameter subgroups*, so across a large batch
    of configurations only a handful of distinct group values exist — the
    table caches each group normal the first time it is seen.  The
    idiosyncratic draw is unique per configuration but reuses a
    pre-hashed key prefix.  ``factor()`` is bit-identical to
    :func:`structured_jitter` for the same arguments.
    """

    def __init__(
        self,
        sigma_structured: float,
        sigma_idiosyncratic: float,
        device_name: str,
        kernel_name: str,
    ) -> None:
        if sigma_structured < 0 or sigma_idiosyncratic < 0:
            raise ValueError("sigmas must be >= 0")
        self._ss = sigma_structured
        self._si = sigma_idiosyncratic
        self._group_prefixes = tuple(
            HashPrefix(device_name, kernel_name, f"group{i}") for i in range(3)
        )
        self._group_memo: tuple = ({}, {}, {})
        self._idio = HashPrefix(device_name, kernel_name, "idio")
        self._inv = math.sqrt(3)

    def _group_normal(self, i: int, group: tuple) -> float:
        memo = self._group_memo[i]
        z = memo.get(group)
        if z is None:
            z = self._group_prefixes[i].normal(group)
            memo[group] = z
        return z

    def factor(self, config_tuple: tuple) -> float:
        """Jitter factor for one configuration (bit-identical to
        ``structured_jitter(ss, si, device, kernel, config_tuple)``)."""
        z_struct = (
            self._group_normal(0, config_tuple[0:2])
            + self._group_normal(1, config_tuple[2:4])
            + self._group_normal(2, config_tuple[4:])
        ) / self._inv
        z_idio = self._idio.normal(config_tuple)
        return math.exp(self._ss * z_struct + self._si * z_idio)


def structured_jitter(
    sigma_structured: float,
    sigma_idiosyncratic: float,
    device_name: str,
    kernel_name: str,
    config_tuple: tuple,
) -> float:
    """Two-component deterministic jitter for one configuration.

    *Structured* component: interaction quirks keyed on small parameter
    subgroups — work-group shape ``(cfg[0], cfg[1])``, per-thread blocking
    ``(cfg[2], cfg[3])``, and the remaining switches (all three benchmarks
    order their parameters this way).  These are deterministic functions of
    a few features, so a learned model *can* absorb them given enough
    training data — they are what makes the error curves of Figs. 4-6 keep
    improving with sample count.

    *Idiosyncratic* component: keyed on the full configuration; no feature
    set explains it.  It is the irreducible error floor, and the reason
    even a good tuner lands a few percent off the global optimum.

    The three group draws are averaged with ``1/sqrt(3)`` so
    ``sigma_structured`` is the total structured standard deviation.
    """
    if sigma_structured < 0 or sigma_idiosyncratic < 0:
        raise ValueError("sigmas must be >= 0")
    groups = (config_tuple[0:2], config_tuple[2:4], config_tuple[4:])
    z_struct = sum(
        unit_normal(device_name, kernel_name, f"group{i}", g)
        for i, g in enumerate(groups)
    ) / math.sqrt(len(groups))
    z_idio = unit_normal(device_name, kernel_name, "idio", config_tuple)
    return math.exp(sigma_structured * z_struct + sigma_idiosyncratic * z_idio)
