"""Deterministic pseudo-random factors from stable keys.

Real devices show reproducible, configuration-specific performance quirks
that no reasonable feature set explains: shared-memory bank conflict
patterns, partition camping, instruction-scheduler luck, alignment.  The
simulator models this as a multiplicative jitter drawn deterministically
from a hash of ``(device, kernel, configuration)`` — the *same* config
always gets the *same* quirk (it is part of the true time, not noise), but
neighbouring configs get unrelated quirks.  This is what gives the learned
model a realistic, device-dependent error floor.

``blake2b`` is used (not ``hash()``) so results are stable across processes
and Python versions.
"""

from __future__ import annotations

import hashlib
import math
import struct

import numpy as np


def stable_hash64(*parts) -> int:
    """64-bit stable hash of a tuple of primitives."""
    h = hashlib.blake2b(digest_size=8)
    for p in parts:
        h.update(repr(p).encode("utf-8"))
        h.update(b"\x1f")
    return struct.unpack("<Q", h.digest())[0]


def unit_uniform(*parts) -> float:
    """Deterministic uniform in [0, 1) keyed on ``parts``."""
    return stable_hash64(*parts) / float(1 << 64)


def unit_normal(*parts) -> float:
    """Deterministic standard-normal variate keyed on ``parts``.

    Box-Muller on two independent sub-hashes; clipped to ±4 sigma so a
    single unlucky key cannot produce an absurd outlier.
    """
    u1 = unit_uniform(*parts, "u1")
    u2 = unit_uniform(*parts, "u2")
    u1 = max(u1, 1e-12)
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    return max(-4.0, min(4.0, z))


def lognormal_factor(sigma: float, *parts) -> float:
    """Deterministic multiplicative jitter ``exp(sigma * N(0,1))``."""
    if sigma < 0:
        raise ValueError("sigma must be >= 0")
    if sigma == 0.0:
        return 1.0
    return math.exp(sigma * unit_normal(*parts))


class HashPrefix:
    """A blake2b state pre-fed with a constant key prefix.

    Batch evaluation hashes thousands of keys that share a long constant
    prefix (device name, kernel name, component label) and differ only in
    the trailing configuration tuple.  Feeding the prefix once and
    ``copy()``-ing the hash state per suffix produces bit-identical values
    to :func:`unit_uniform` / :func:`unit_normal` at a fraction of the
    cost — ``copy`` duplicates the internal state without re-hashing the
    prefix bytes.
    """

    __slots__ = ("_state",)

    def __init__(self, *prefix) -> None:
        h = hashlib.blake2b(digest_size=8)
        for p in prefix:
            h.update(repr(p).encode("utf-8"))
            h.update(b"\x1f")
        self._state = h

    def _digest(self, suffix: tuple) -> int:
        h = self._state.copy()
        for p in suffix:
            h.update(repr(p).encode("utf-8"))
            h.update(b"\x1f")
        return struct.unpack("<Q", h.digest())[0]

    def uniform(self, *suffix) -> float:
        """``unit_uniform(*prefix, *suffix)``, bit-identical."""
        return self._digest(suffix) / float(1 << 64)

    def normal(self, *suffix) -> float:
        """``unit_normal(*prefix, *suffix)``, bit-identical."""
        base = self._state.copy()
        for p in suffix:
            base.update(repr(p).encode("utf-8"))
            base.update(b"\x1f")
        h1 = base.copy()
        h1.update(b"'u1'\x1f")
        h2 = base.copy()
        h2.update(b"'u2'\x1f")
        u1 = struct.unpack("<Q", h1.digest())[0] / float(1 << 64)
        u2 = struct.unpack("<Q", h2.digest())[0] / float(1 << 64)
        u1 = max(u1, 1e-12)
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return max(-4.0, min(4.0, z))


class JitterTable:
    """Memoizing batch evaluator of :func:`structured_jitter`.

    One table serves one ``(device, kernel)`` pair.  The three structured
    group draws are keyed on *parameter subgroups*, so across a large batch
    of configurations only a handful of distinct group values exist — the
    table caches each group normal the first time it is seen.  The
    idiosyncratic draw is unique per configuration but reuses a
    pre-hashed key prefix.  ``factor()`` is bit-identical to
    :func:`structured_jitter` for the same arguments.
    """

    def __init__(
        self,
        sigma_structured: float,
        sigma_idiosyncratic: float,
        device_name: str,
        kernel_name: str,
    ) -> None:
        if sigma_structured < 0 or sigma_idiosyncratic < 0:
            raise ValueError("sigmas must be >= 0")
        self._ss = sigma_structured
        self._si = sigma_idiosyncratic
        self._group_prefixes = tuple(
            HashPrefix(device_name, kernel_name, f"group{i}") for i in range(3)
        )
        self._group_memo: tuple = ({}, {}, {})
        self._idio = HashPrefix(device_name, kernel_name, "idio")
        self._inv = math.sqrt(3)

    def _group_normal(self, i: int, group: tuple) -> float:
        memo = self._group_memo[i]
        z = memo.get(group)
        if z is None:
            z = self._group_prefixes[i].normal(group)
            memo[group] = z
        return z

    def factor(self, config_tuple: tuple) -> float:
        """Jitter factor for one configuration (bit-identical to
        ``structured_jitter(ss, si, device, kernel, config_tuple)``)."""
        z_struct = (
            self._group_normal(0, config_tuple[0:2])
            + self._group_normal(1, config_tuple[2:4])
            + self._group_normal(2, config_tuple[4:])
        ) / self._inv
        z_idio = self._idio.normal(config_tuple)
        return math.exp(self._ss * z_struct + self._si * z_idio)


# -- vectorized keyed hashing (splitmix64) ----------------------------------
#
# The blake2b helpers above key the *true-time* quirks and must stay
# byte-stable forever (every recorded fixture depends on them).  The fault
# and drift layers need something different: thousands of keyed draws per
# measurement batch, array-in/array-out.  splitmix64 — a 64-bit finalizer
# with full avalanche — runs as three shifts and two multiplies per lane
# under numpy, so a whole attempt-wave of fault decisions is one vector op.
#
# The scalar entry points below are implemented on Python ints with the
# identical modular arithmetic, so scalar and vector paths are bit-equal by
# construction (property-tested in tests/test_simulator_noise_hashing.py).
# Keys are folded left to right; tuples fold a length-tagged sub-key so
# ``(k, (1, 2))`` and ``(k, 1, 2)`` cannot collide.

_MASK64 = (1 << 64) - 1
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MIX_A = 0xBF58476D1CE4E5B9
_SM_MIX_B = 0x94D049BB133111EB
#: Distinct salts so uniform and normal variates of one key never share bits.
_SALT_UNIFORM = 0xD6E8FEB86659FD93
_SALT_N1 = 0xA5A3_564D_9F4C_11E3
_SALT_N2 = 0xC2B2_AE3D_27D4_EB4F
#: Fold-chain start and the tuple-substructure tag.
_KEY_SEED = 0x8F5C0C4F29F4A7C1
_TUPLE_SEED = 0x2545F4914F6CDD1D

_U64 = np.uint64


def splitmix64_py(z: int) -> int:
    """splitmix64 finalizer on one Python int (modulo 2**64)."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * _SM_MIX_A) & _MASK64
    z = ((z ^ (z >> 27)) * _SM_MIX_B) & _MASK64
    return z ^ (z >> 31)


def splitmix64(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (bit-equal to the scalar)."""
    z = (z ^ (z >> _U64(30))) * _U64(_SM_MIX_A)
    z = (z ^ (z >> _U64(27))) * _U64(_SM_MIX_B)
    return z ^ (z >> _U64(31))


def fold64(h: int, v: int) -> int:
    """Fold one 64-bit value into a running key (scalar)."""
    return splitmix64_py(h ^ ((v + _SM_GAMMA) & _MASK64))


def fold64_many(h, v: np.ndarray) -> np.ndarray:
    """Vector :func:`fold64`: ``h`` scalar-or-array, ``v`` a uint64 array."""
    if not isinstance(h, np.ndarray):
        h = _U64(h & _MASK64)
    return splitmix64(h ^ (v + _U64(_SM_GAMMA)))


def part64(p) -> int:
    """One key part reduced to 64 bits: strings via the stable blake2b
    hash (memoized — part of the key identity, never throughput-critical),
    ints as themselves, tuples as a length-tagged sub-fold."""
    if isinstance(p, (int, np.integer)):
        return int(p) & _MASK64
    if isinstance(p, str):
        h = _STR_MEMO.get(p)
        if h is None:
            h = stable_hash64(p)
            _STR_MEMO[p] = h
        return h
    if isinstance(p, tuple):
        h = fold64(_TUPLE_SEED, len(p))
        for q in p:
            h = fold64(h, part64(q))
        return h
    raise TypeError(f"cannot key a {type(p).__name__!r} part: {p!r}")


_STR_MEMO: dict = {}


def key64(*parts) -> int:
    """Stable 64-bit key of a tuple of primitives (splitmix64 discipline —
    *not* interchangeable with :func:`stable_hash64`)."""
    h = _KEY_SEED
    for p in parts:
        h = fold64(h, part64(p))
    return h


def tuple_keys64(prefix: int, int_matrix: np.ndarray) -> np.ndarray:
    """Per-row keys for many same-length int tuples under one prefix.

    Bit-equal to ``fold64(prefix, part64(tuple(row)))`` per row — the
    vectorized form of keying a configuration tuple — so batch fault and
    drift draws match the scalar surfaces exactly.
    """
    m = np.asarray(int_matrix)
    if m.ndim != 2:
        raise ValueError("int_matrix must be 2-D (rows are tuples)")
    h = _U64(fold64(_TUPLE_SEED, m.shape[1]) & _MASK64)
    h = np.broadcast_to(h, m.shape[0]).copy()
    cols = m.astype(np.uint64)
    for j in range(m.shape[1]):
        h = fold64_many(h, cols[:, j])
    return fold64_many(_U64(prefix & _MASK64), h)


def pair_key_prefix64(first) -> int:
    """Fold prefix for 2-tuple keys: for any part ``x``,
    ``part64((first, x)) == fold64(pair_key_prefix64(first), part64(x))``.

    The fault and drift surfaces key on ``(kernel_name, config_tuple)``
    pairs; pre-folding the constant half lets batch paths hash only the
    varying half per lane.
    """
    return fold64(fold64(_TUPLE_SEED, 2), part64(first))


def _unit_open_of(h: np.ndarray) -> np.ndarray:
    return ((h >> _U64(11)).astype(np.float64) + 0.5) * (2.0 ** -53)


def keyed_uniform(h: int) -> float:
    """Deterministic uniform in (0, 1) from one folded key (scalar)."""
    return ((splitmix64_py(h ^ _SALT_UNIFORM) >> 11) + 0.5) * (2.0 ** -53)


def keyed_uniform_many(h: np.ndarray) -> np.ndarray:
    """Vector :func:`keyed_uniform`, bit-equal per lane."""
    return _unit_open_of(splitmix64(h ^ _U64(_SALT_UNIFORM)))


def keyed_normal(h: int) -> float:
    """Deterministic standard normal from one folded key, clipped to
    ±4 sigma like :func:`unit_normal` (scalar).

    Transcendentals go through the numpy ufuncs (not ``math.*``) so the
    scalar value is bit-equal to :func:`keyed_normal_many` — libm and
    numpy's loops can disagree in the last ulp.
    """
    u1 = ((splitmix64_py(h ^ _SALT_N1) >> 11) + 0.5) * (2.0 ** -53)
    u2 = ((splitmix64_py(h ^ _SALT_N2) >> 11) + 0.5) * (2.0 ** -53)
    z = float(np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2))
    return max(-4.0, min(4.0, z))


def keyed_normal_many(h: np.ndarray) -> np.ndarray:
    """Vector :func:`keyed_normal`, bit-equal per lane."""
    u1 = _unit_open_of(splitmix64(h ^ _U64(_SALT_N1)))
    u2 = _unit_open_of(splitmix64(h ^ _U64(_SALT_N2)))
    z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
    return np.clip(z, -4.0, 4.0)


def structured_jitter(
    sigma_structured: float,
    sigma_idiosyncratic: float,
    device_name: str,
    kernel_name: str,
    config_tuple: tuple,
) -> float:
    """Two-component deterministic jitter for one configuration.

    *Structured* component: interaction quirks keyed on small parameter
    subgroups — work-group shape ``(cfg[0], cfg[1])``, per-thread blocking
    ``(cfg[2], cfg[3])``, and the remaining switches (all three benchmarks
    order their parameters this way).  These are deterministic functions of
    a few features, so a learned model *can* absorb them given enough
    training data — they are what makes the error curves of Figs. 4-6 keep
    improving with sample count.

    *Idiosyncratic* component: keyed on the full configuration; no feature
    set explains it.  It is the irreducible error floor, and the reason
    even a good tuner lands a few percent off the global optimum.

    The three group draws are averaged with ``1/sqrt(3)`` so
    ``sigma_structured`` is the total structured standard deviation.
    """
    if sigma_structured < 0 or sigma_idiosyncratic < 0:
        raise ValueError("sigmas must be >= 0")
    groups = (config_tuple[0:2], config_tuple[2:4], config_tuple[4:])
    z_struct = sum(
        unit_normal(device_name, kernel_name, f"group{i}", g)
        for i, g in enumerate(groups)
    ) / math.sqrt(len(groups))
    z_idio = unit_normal(device_name, kernel_name, "idio", config_tuple)
    return math.exp(sigma_structured * z_struct + sigma_idiosyncratic * z_idio)
