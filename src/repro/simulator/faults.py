"""Fault injection: the failure modes real OpenCL drivers actually have.

The deterministic simulator models configurations that *always* fail
(resource limits — :mod:`.validity`).  Real tuning campaigns additionally
see run-specific failures: drivers that spuriously refuse to compile,
launches that error out under load, kernels that hang until a watchdog
resets the device, measurements poisoned by interference spikes, and the
occasional full device reset that wipes compiled binaries.  The paper
side-steps these by ignoring failed configurations (§5.2) and notes in §7
that measurement noise feeds straight into model error — which is exactly
why the measurement pipeline needs a resilience layer that can be *tested*.

A :class:`FaultProfile` describes the failure statistics of one rig; a
:class:`FaultInjector` turns it into per-operation decisions at the
``Program.build()`` / ``Kernel.enqueue()`` surfaces.  Decisions are drawn
from a stable hash of ``(profile seed, surface, kernel, configuration,
attempt number)`` — **not** from the context's RNG stream — so:

* the same profile + seed replays the identical fault sequence (retries
  and quarantines are reproducible, serial and batch paths agree);
* attaching a profile never perturbs the measurement-noise stream — a
  transient failure happens *before* the noise draw of the launch it
  kills, and the retry that succeeds draws exactly the sample the
  fault-free run would have drawn.  Fault-free outputs are therefore
  bit-identical whether the code path is fault-aware or not.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.simulator.hashing import (
    fold64,
    fold64_many,
    key64,
    keyed_uniform,
    keyed_uniform_many,
    pair_key_prefix64,
    part64,
    tuple_keys64,
)

#: Injection decisions (returned by the injector, consumed by the runtime).
OK = "ok"
TRANSIENT = "transient"
HANG = "hang"
RESET = "reset"


@dataclass(frozen=True)
class FaultProfile:
    """Failure statistics of one (simulated) rig.

    All ``p_*`` fields are per-attempt probabilities in ``[0, 1]``; an
    attempt is one build or one launch.  The all-zero default injects
    nothing — attaching it is equivalent to attaching no profile at all.

    Attributes
    ----------
    seed:
        Fault-stream seed.  Independent of the context seed: the same
        measurement campaign can be replayed under different fault
        histories (or the same faults under different noise).
    p_transient_build:
        Spurious ``clBuildProgram`` failure of a valid configuration.
    p_transient_launch:
        Spurious ``clEnqueueNDRangeKernel`` failure of a valid
        configuration.
    p_hang / hang_duration_s:
        A launch that never completes; the driver's watchdog (or the
        caller's timeout, whichever is shorter) kills it after
        ``hang_duration_s`` simulated seconds, all charged to the ledger.
    p_outlier / outlier_factor:
        A reported measurement multiplied by ``outlier_factor``
        (interference spike — garbage data, not an error).
    p_device_reset / reset_cost_s:
        Device lost mid-launch: ``reset_cost_s`` is charged, and compiled
        binaries (the measurer's compile cache) are invalidated.
    """

    seed: int = 0
    p_transient_build: float = 0.0
    p_transient_launch: float = 0.0
    p_hang: float = 0.0
    hang_duration_s: float = 8.0
    p_outlier: float = 0.0
    outlier_factor: float = 25.0
    p_device_reset: float = 0.0
    reset_cost_s: float = 2.0

    def __post_init__(self):
        for name in ("p_transient_build", "p_transient_launch", "p_hang",
                     "p_outlier", "p_device_reset"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.p_hang + self.p_transient_launch + self.p_device_reset > 1.0:
            raise ValueError("launch-surface probabilities sum to > 1")
        if self.hang_duration_s <= 0 or self.reset_cost_s < 0:
            raise ValueError("durations must be positive")
        if self.outlier_factor <= 1.0:
            raise ValueError("outlier_factor must be > 1")

    @property
    def any_faults(self) -> bool:
        """True when any injection probability is non-zero."""
        return (
            self.p_transient_build > 0
            or self.p_transient_launch > 0
            or self.p_hang > 0
            or self.p_outlier > 0
            or self.p_device_reset > 0
        )


#: Named rigs for the CLI and tests.  "flaky-gpu" matches the acceptance
#: bar of docs/robustness.md: >=5% transient launch failures, >=1% hangs —
#: *recoverable* faults only, so a retry-equipped pipeline reproduces the
#: fault-free results.  Outlier spikes are a different beast (garbage data
#: a retry cannot detect, it poisons the model): "noisy-rig" models them
#: alone, "unstable-driver" piles everything on at once.
FAULT_PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile(),
    "flaky-gpu": FaultProfile(
        p_transient_build=0.03,
        p_transient_launch=0.05,
        p_hang=0.01,
        hang_duration_s=8.0,
        p_device_reset=0.002,
        reset_cost_s=2.0,
    ),
    "unstable-driver": FaultProfile(
        p_transient_build=0.10,
        p_transient_launch=0.12,
        p_hang=0.03,
        hang_duration_s=12.0,
        p_outlier=0.02,
        outlier_factor=40.0,
        p_device_reset=0.01,
        reset_cost_s=3.0,
    ),
    "noisy-rig": FaultProfile(
        p_outlier=0.05,
        outlier_factor=10.0,
    ),
}


def get_fault_profile(spec: str) -> FaultProfile:
    """Resolve a CLI fault spec: ``<name>`` or ``<name>:field=value,...``.

    ``repro tune --faults flaky-gpu`` or
    ``--faults flaky-gpu:seed=3,p_hang=0.05``.
    """
    name, _, overrides = spec.partition(":")
    name = name.strip()
    if name not in FAULT_PROFILES:
        raise ValueError(
            f"unknown fault profile {name!r}; expected one of "
            f"{sorted(FAULT_PROFILES)}"
        )
    profile = FAULT_PROFILES[name]
    if not overrides:
        return profile
    known = {f.name: f.type for f in fields(FaultProfile)}
    kwargs = {}
    for item in overrides.split(","):
        item = item.strip()
        if not item:
            continue
        key, eq, raw = item.partition("=")
        key = key.strip()
        if not eq or key not in known:
            raise ValueError(
                f"bad fault override {item!r}; expected field=value with "
                f"field in {sorted(known)}"
            )
        kwargs[key] = int(raw) if key == "seed" else float(raw)
    return replace(profile, **kwargs)


class FaultInjector:
    """Stateful per-context fault stream for one :class:`FaultProfile`.

    One uniform draw per (surface, configuration, attempt) — keyed on a
    stable hash, never on the context RNG — decides the outcome; the
    launch surface partitions its single draw into reset / hang /
    transient bands so the three faults stay mutually exclusive per
    attempt.  Attempt numbers are per-configuration operation counters, so
    a retry of the same configuration re-rolls while a replay of the whole
    campaign reproduces every decision.
    """

    def __init__(self, profile: FaultProfile):
        self.profile = profile
        # (surface, key) -> attempts so far; the attempt number salts the
        # hash so retries are fresh draws.
        self._attempts: Dict[Tuple[str, tuple], int] = {}
        # Per-surface fold prefixes; a draw is
        # uniform(fold(fold(prefix, part64(key)), attempt)).
        self._surface_h: Dict[str, int] = {
            s: key64(profile.seed, "fault", s)
            for s in ("build", "launch", "outlier")
        }
        # key tuple -> part64(key), memoized (keys repeat across attempts).
        self._key_h: Dict[tuple, int] = {}
        #: Totals per decision kind, for debugging and tests.
        self.injected: Dict[str, int] = {
            "transient_build": 0,
            "transient_launch": 0,
            "hang": 0,
            "reset": 0,
            "outlier": 0,
        }

    def _key64(self, key: tuple) -> int:
        h = self._key_h.get(key)
        if h is None:
            h = part64(key)
            self._key_h[key] = h
        return h

    def _roll(self, surface: str, key: tuple) -> float:
        n = self._attempts.get((surface, key), 0)
        self._attempts[(surface, key)] = n + 1
        return keyed_uniform(fold64(self._surface_h[surface] ^ self._key64(key), n))

    # -- batch draw API (pure: no counters move) -------------------------------

    @staticmethod
    def config_key_hashes(
        kernel_name: str, int_matrix: np.ndarray
    ) -> np.ndarray:
        """``part64((kernel_name, config_tuple))`` per row, vectorized —
        the 64-bit identity of the ``(kernel, config)`` fault keys the
        runtime rolls at the build/launch surfaces."""
        return tuple_keys64(pair_key_prefix64(kernel_name), int_matrix)

    @staticmethod
    def index_key_hashes(kernel_name: str, indices: np.ndarray) -> np.ndarray:
        """``part64((kernel_name, int(index)))`` per element, vectorized —
        the identity of the outlier-surface measurement keys."""
        idx = np.asarray(indices, dtype=np.int64).astype(np.uint64)
        return fold64_many(pair_key_prefix64(kernel_name), idx)

    def peek_uniforms(
        self, surface: str, key_hashes: np.ndarray, attempts: np.ndarray
    ) -> np.ndarray:
        """The uniforms :meth:`_roll` *would* draw for ``attempts[i]`` of
        ``key_hashes[i]`` on ``surface`` — pure, no attempt counters move.
        The wave engine decides whole attempt-waves from one such call and
        commits the consumed counters afterwards."""
        h = self._surface_h[surface]
        base = np.uint64(h) ^ np.asarray(key_hashes, dtype=np.uint64)
        return keyed_uniform_many(
            fold64_many(base, np.asarray(attempts, dtype=np.int64).astype(np.uint64))
        )

    def attempts_of(self, surface: str, key: tuple) -> int:
        """Current attempt counter of ``(surface, key)`` (next roll's salt)."""
        return self._attempts.get((surface, key), 0)

    def bump_attempts(self, surface: str, key: tuple, n: int) -> None:
        """Advance a counter by ``n`` consumed rolls (wave-engine commit)."""
        if n:
            self._attempts[(surface, key)] = (
                self._attempts.get((surface, key), 0) + n
            )

    def at_build(self, key: tuple) -> str:
        """Decision for one build attempt: :data:`OK` or :data:`TRANSIENT`."""
        p = self.profile.p_transient_build
        if p > 0.0 and self._roll("build", key) < p:
            self.injected["transient_build"] += 1
            return TRANSIENT
        return OK

    def at_launch(self, key: tuple) -> str:
        """Decision for one launch attempt: :data:`OK`, :data:`RESET`,
        :data:`HANG` or :data:`TRANSIENT` (mutually exclusive bands of a
        single uniform draw)."""
        prof = self.profile
        p_total = prof.p_device_reset + prof.p_hang + prof.p_transient_launch
        if p_total <= 0.0:
            return OK
        u = self._roll("launch", key)
        if u < prof.p_device_reset:
            self.injected["reset"] += 1
            return RESET
        if u < prof.p_device_reset + prof.p_hang:
            self.injected["hang"] += 1
            return HANG
        if u < p_total:
            self.injected["transient_launch"] += 1
            return TRANSIENT
        return OK

    def on_measurement(self, key: tuple, value_s: float) -> float:
        """Pass a reported measurement through the outlier fault: returns
        the value, spiked by ``outlier_factor`` when the roll hits."""
        p = self.profile.p_outlier
        if p > 0.0 and self._roll("outlier", key) < p:
            self.injected["outlier"] += 1
            return value_s * self.profile.outlier_factor
        return value_s

    def reset_state(self) -> None:
        """Forget attempt counters (a replay starts from a fresh stream)."""
        self._attempts.clear()
        for k in self.injected:
            self.injected[k] = 0


def make_injector(
    faults: "FaultProfile | FaultInjector | str | None",
) -> Optional[FaultInjector]:
    """Coerce the ``faults=`` argument accepted by ``Context``: a profile,
    a ready injector, a named spec string, or None."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, str):
        faults = get_fault_profile(faults)
    if not isinstance(faults, FaultProfile):
        raise TypeError(f"cannot build a FaultInjector from {faults!r}")
    if not faults.any_faults:
        return None
    return FaultInjector(faults)
