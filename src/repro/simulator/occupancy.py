"""Occupancy: how many work-groups a compute unit can keep resident.

GPUs hide memory latency by switching between resident work-groups; how many
fit is limited by the per-CU thread budget, work-group slots, local-memory
capacity and the register file.  Low occupancy means memory time cannot be
overlapped with compute — the single biggest reason work-group shape and
per-thread work interact with everything else, and why a learned model beats
one-at-a-time parameter search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulator.device import DeviceSpec
from repro.simulator.workload import WorkloadBatch, WorkloadProfile


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy of one launch on one device.

    Attributes
    ----------
    workgroups_per_cu:
        Resident work-groups per compute unit (0 means the work-group does
        not fit at all — a launch failure).
    active_threads_per_cu:
        Resident work-items per compute unit.
    occupancy:
        ``active_threads_per_cu / max_threads_per_cu`` in [0, 1].
    limiter:
        Which resource bound first: ``"threads"``, ``"slots"``,
        ``"local_mem"`` or ``"registers"``.
    """

    workgroups_per_cu: int
    active_threads_per_cu: int
    occupancy: float
    limiter: str


def effective_registers_per_thread(profile: WorkloadProfile, device: DeviceSpec) -> int:
    """Register demand after the compiler clamps to the per-thread ceiling.

    Demand above the ceiling spills (handled as extra memory traffic by the
    executor), it does not raise the per-thread allocation further.
    """
    return min(profile.registers_per_thread, device.max_registers_per_thread)


def compute_occupancy(profile: WorkloadProfile, device: DeviceSpec) -> OccupancyResult:
    """Resident work-groups per CU and the limiting resource."""
    wg_threads = profile.workgroup_threads

    limits = {}
    limits["threads"] = device.max_threads_per_cu // wg_threads
    limits["slots"] = device.max_workgroups_per_cu

    if profile.local_mem_per_wg_bytes > 0:
        limits["local_mem"] = (
            device.local_mem_per_cu_bytes // profile.local_mem_per_wg_bytes
        )

    regs = effective_registers_per_thread(profile, device)
    regs_per_wg = regs * wg_threads
    if regs_per_wg > 0:
        limits["registers"] = device.registers_per_cu // regs_per_wg

    limiter = min(limits, key=lambda k: (limits[k], k))
    wgs = max(0, limits[limiter])
    # Never let more work-groups be "resident" than exist in the launch.
    wgs_in_launch = profile.num_workgroups
    cu_share = max(1, (wgs_in_launch + device.compute_units - 1) // device.compute_units)
    wgs_effective = min(wgs, cu_share)

    active = wgs_effective * wg_threads
    occ = min(1.0, active / device.max_threads_per_cu)
    return OccupancyResult(
        workgroups_per_cu=wgs_effective,
        active_threads_per_cu=active,
        occupancy=occ,
        limiter=limiter,
    )


@dataclass(frozen=True)
class OccupancyBatch:
    """Array-shaped :class:`OccupancyResult` (no per-config limiter label —
    batch callers only consume the numeric columns)."""

    workgroups_per_cu: np.ndarray
    active_threads_per_cu: np.ndarray
    occupancy: np.ndarray


def compute_occupancy_batch(batch: WorkloadBatch, device: DeviceSpec) -> OccupancyBatch:
    """Vectorized :func:`compute_occupancy` over a workload batch.

    Produces the same ``workgroups_per_cu`` / ``active_threads_per_cu`` /
    ``occupancy`` values as the scalar path, elementwise.  Resources a
    configuration does not consume (no local memory, zero registers) are
    excluded from the minimum exactly as the scalar dict construction does.
    """
    wg_threads = batch.workgroup_threads

    no_limit = np.iinfo(np.int64).max
    limit_threads = device.max_threads_per_cu // wg_threads
    limit_slots = np.full_like(wg_threads, device.max_workgroups_per_cu)

    lm = batch.local_mem_per_wg_bytes
    limit_local = np.where(
        lm > 0, device.local_mem_per_cu_bytes // np.maximum(lm, 1), no_limit
    )

    regs = np.minimum(batch.registers_per_thread, device.max_registers_per_thread)
    regs_per_wg = regs * wg_threads
    limit_regs = np.where(
        regs_per_wg > 0, device.registers_per_cu // np.maximum(regs_per_wg, 1), no_limit
    )

    wgs = np.minimum(
        np.minimum(limit_threads, limit_slots), np.minimum(limit_local, limit_regs)
    )
    wgs = np.maximum(0, wgs)

    wgs_in_launch = batch.num_workgroups
    cu_share = np.maximum(
        1, (wgs_in_launch + device.compute_units - 1) // device.compute_units
    )
    wgs_effective = np.minimum(wgs, cu_share)

    active = wgs_effective * wg_threads
    occ = np.minimum(1.0, active / device.max_threads_per_cu)
    return OccupancyBatch(
        workgroups_per_cu=wgs_effective,
        active_threads_per_cu=active,
        occupancy=occ,
    )
