"""The execution-time model: roofline with occupancy-driven overlap.

The *true* time of one kernel launch is assembled from:

1. **compute time** — scalar ops (plus per-iteration loop overhead) issued
   over all SIMD lanes, degraded by intra-work-group lane waste and, on the
   CPU, by how vectorizable the access pattern is;
2. **memory time** — :mod:`repro.simulator.memory`;
3. **overlap** — GPUs hide the smaller of the two behind the larger in
   proportion to achieved occupancy; CPUs hide a fixed fraction via
   out-of-order execution and prefetching;
4. **wave quantization** — work-groups execute in waves of
   ``compute_units x workgroups_per_cu``; a partial tail wave costs a full
   wave, and launches with fewer work-groups than compute units leave the
   device underutilized;
5. **overheads** — a fixed launch cost plus a per-work-group scheduling
   cost (the term that punishes millions of tiny work-groups, especially on
   the CPU's thread pool);
6. **deterministic jitter** — :mod:`repro.simulator.hashing`, the
   configuration-specific quirk the model cannot explain from features.

The result is a pure function: same (kernel, config, device) in, same true
time out.  Measurement noise lives in :mod:`repro.simulator.noise`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.simulator.device import DeviceSpec
from repro.simulator.hashing import JitterTable, structured_jitter
from repro.simulator.memory import MemoryCost, memory_time, memory_time_batch
from repro.simulator.occupancy import (
    OccupancyBatch,
    OccupancyResult,
    compute_occupancy,
    compute_occupancy_batch,
)
from repro.simulator.validity import STAGE_OK_CODE, validate, validate_batch
from repro.simulator.workload import WorkloadBatch, WorkloadProfile

#: Scalar ops charged per remaining loop iteration (compare+branch+index).
LOOP_OVERHEAD_OPS = 4.0

#: GPU occupancy at which latency hiding saturates.
OCCUPANCY_KNEE = 0.45

#: Fixed overlap fraction for CPUs (out-of-order cores + HW prefetch).
CPU_OVERLAP = 0.80

#: Barrier cost: per warp/wavefront per barrier on GPUs (re-convergence),
#: per *work-item* per barrier on CPUs (the runtime must suspend and resume
#: every work-item's state — why local-memory tiling rarely wins on CPUs).
GPU_BARRIER_NS_PER_WARP = 60.0
CPU_BARRIER_NS_PER_ITEM = 22.0

#: CPU work-item dispatch overhead: each work-item is a loop iteration of
#: the runtime's work-group function.  GPU-style launches with millions of
#: tiny-work threads drown in this.
CPU_ITEM_OVERHEAD_NS = 28.0

#: GPU scheduling-granularity penalty coefficient, quadratic in
#: log2(warps per work-group): bigger blocks allocate coarser, balance worse
#: across SMs, and stall longer at block boundaries — the cost compounds.
GPU_WG_GRANULARITY_PENALTY = 0.01

#: Extra deterministic variance for kernels whose unrolling relies on the
#: driver pragma, scaled by how unreliable that driver is: even when the
#: pragma is honoured, *how* the unrolled code is scheduled varies with
#: opaque compiler heuristics.  This is the paper's §7 mechanism for the
#: AMD convolution/stereo vs raycasting accuracy gap.
DRIVER_UNROLL_QUIRK_SIGMA = 0.22


@dataclass(frozen=True)
class ExecutionBreakdown:
    """Where the time of one simulated launch went (all seconds)."""

    compute_time: float
    memory: MemoryCost
    occupancy: OccupancyResult
    overlap: float
    wave_quantization: float
    overhead_time: float
    jitter: float
    total_time: float


def simd_utilization(profile: WorkloadProfile, device: DeviceSpec) -> float:
    """Fraction of SIMD issue slots doing useful work.

    Work-items are packed into lock-step groups of ``simd_width`` within a
    work-group; a work-group whose size is not a multiple of the width burns
    the ragged lanes.
    """
    wg = profile.workgroup_threads
    groups = math.ceil(wg / device.simd_width)
    return wg / (groups * device.simd_width)


def compute_time(profile: WorkloadProfile, device: DeviceSpec) -> float:
    """Seconds of pure arithmetic for the launch at full device throughput."""
    util = simd_utilization(profile, device)
    ops_per_thread = profile.flops_per_thread + (
        LOOP_OVERHEAD_OPS * profile.loop_iterations_per_thread
    )
    total_ops = profile.threads * ops_per_thread / max(util, 1e-9)
    throughput = device.peak_gflops * 1e9
    if device.is_cpu:
        # The compiler only vectorizes across work-items when their accesses
        # are contiguous; otherwise execution falls back towards scalar.
        vec = 0.30 + 0.70 * profile.coalesced_fraction
        throughput *= vec
    return total_ops / throughput


def wave_quantization_factor(
    profile: WorkloadProfile, device: DeviceSpec, occ: OccupancyResult
) -> float:
    """Slowdown from partial waves and compute-unit under-subscription.

    With ``W`` work-groups, ``C`` compute units and ``g`` resident groups
    per unit, execution takes ``ceil(W / (C*g))`` waves but only
    ``W / (C*g)`` waves' worth of work exists — the ratio is the tail
    penalty (>= 1, and large when W < C, i.e. parts of the device idle).
    """
    per_wave = device.compute_units * max(occ.workgroups_per_cu, 1)
    n_wg = profile.num_workgroups
    waves = math.ceil(n_wg / per_wave)
    return waves * per_wave / n_wg


def overlap_fraction(device: DeviceSpec, occ: OccupancyResult) -> float:
    """How much of min(compute, memory) hides behind the other."""
    if device.is_cpu:
        return CPU_OVERLAP
    return min(1.0, occ.occupancy / OCCUPANCY_KNEE)


def overhead_time(profile: WorkloadProfile, device: DeviceSpec) -> float:
    """Launch, scheduling, barrier and (CPU) work-item overheads, seconds."""
    per_wg_us = device.wg_launch_overhead_us
    spread = profile.num_workgroups * per_wg_us / device.compute_units
    total = (device.kernel_launch_overhead_us + spread) * 1e-6

    if device.is_cpu:
        total += (
            profile.threads * CPU_ITEM_OVERHEAD_NS * 1e-9 / device.compute_units
        )

    if profile.barriers_per_workgroup > 0:
        if device.is_cpu:
            per_wg_ns = (
                profile.barriers_per_workgroup
                * profile.workgroup_threads
                * CPU_BARRIER_NS_PER_ITEM
            )
        else:
            warps = math.ceil(profile.workgroup_threads / device.simd_width)
            per_wg_ns = (
                profile.barriers_per_workgroup * warps * GPU_BARRIER_NS_PER_WARP
            )
        total += profile.num_workgroups * per_wg_ns * 1e-9 / device.compute_units
    return total


def granularity_penalty(profile: WorkloadProfile, device: DeviceSpec) -> float:
    """Multiplicative slowdown for very large GPU work-groups."""
    if device.is_cpu:
        return 1.0
    warps = max(1, math.ceil(profile.workgroup_threads / device.simd_width))
    return 1.0 + GPU_WG_GRANULARITY_PENALTY * math.log2(warps) ** 2


def execute(
    profile: WorkloadProfile,
    device: DeviceSpec,
    jitter_key: tuple = (),
) -> ExecutionBreakdown:
    """Simulate one launch; the profile must already be valid for ``device``.

    ``jitter_key`` identifies the configuration (kernel name + config tuple)
    for the deterministic micro-architectural jitter; an empty key disables
    jitter (useful for model unit tests).
    """
    validate(profile, device).raise_if_invalid()

    occ = compute_occupancy(profile, device)
    comp = compute_time(profile, device)
    mem = memory_time(profile, device)

    ov = overlap_fraction(device, occ)
    busy = max(comp, mem.total) + (1.0 - ov) * min(comp, mem.total)

    # Uncovered latency: each wave pays the global round-trip it could not
    # hide.  Only matters at very low occupancy.
    per_wave = device.compute_units * max(occ.workgroups_per_cu, 1)
    waves = math.ceil(profile.num_workgroups / per_wave)
    latency = (1.0 - ov) * waves * device.global_latency_us * 1e-6

    q = wave_quantization_factor(profile, device, occ) * granularity_penalty(
        profile, device
    )
    ovh = overhead_time(profile, device)

    jitter = 1.0
    if jitter_key:
        kernel_name, config_tuple = jitter_key
        jitter = structured_jitter(
            device.jitter_sigma,
            device.jitter_idio_sigma,
            device.name,
            kernel_name,
            tuple(config_tuple),
        )
        if profile.uses_driver_unroll and profile.unroll_factor > 1:
            quirk_sigma = DRIVER_UNROLL_QUIRK_SIGMA * (
                1.0 - device.driver_unroll_reliability
            )
            jitter *= structured_jitter(
                0.0, quirk_sigma, device.name, f"{kernel_name}/unroll-quirk",
                tuple(config_tuple),
            )

    total = (busy * q + latency + ovh) * jitter
    return ExecutionBreakdown(
        compute_time=comp,
        memory=mem,
        occupancy=occ,
        overlap=ov,
        wave_quantization=q,
        overhead_time=ovh,
        jitter=jitter,
        total_time=total,
    )


def simulate_kernel_time(
    profile: WorkloadProfile,
    device: DeviceSpec,
    jitter_key: tuple = (),
) -> float:
    """True (noise-free) execution time in seconds for one launch."""
    return execute(profile, device, jitter_key=jitter_key).total_time


# ---------------------------------------------------------------------------
# Batch (vectorized) execution.  Mirrors the scalar pipeline operation for
# operation so true times are bit-identical to per-config `execute` calls;
# only the per-config jitter lookup stays a Python loop (over valid configs),
# served by memoizing `JitterTable`s.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchExecution:
    """Result of :func:`execute_batch` over ``n`` configurations.

    ``times`` holds the true time in seconds where ``stages`` is
    :data:`~repro.simulator.validity.STAGE_OK_CODE` and NaN otherwise;
    ``stages`` are the :func:`~repro.simulator.validity.validate_batch`
    codes (0 ok / 1 build / 2 launch).
    """

    times: np.ndarray
    stages: np.ndarray


def simd_utilization_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`simd_utilization`."""
    wg = batch.workgroup_threads
    groups = np.ceil(wg / device.simd_width)
    return wg / (groups * device.simd_width)


def compute_time_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`compute_time`."""
    util = simd_utilization_batch(batch, device)
    ops_per_thread = batch.flops_per_thread + (
        LOOP_OVERHEAD_OPS * batch.loop_iterations_per_thread
    )
    total_ops = batch.threads * ops_per_thread / np.maximum(util, 1e-9)
    throughput = device.peak_gflops * 1e9
    if device.is_cpu:
        vec = 0.30 + 0.70 * batch.coalesced_fraction
        return total_ops / (throughput * vec)
    return total_ops / throughput


def wave_quantization_factor_batch(
    batch: WorkloadBatch, device: DeviceSpec, occ: OccupancyBatch
) -> np.ndarray:
    """Vectorized :func:`wave_quantization_factor`."""
    per_wave = device.compute_units * np.maximum(occ.workgroups_per_cu, 1)
    n_wg = batch.num_workgroups
    waves = np.ceil(n_wg / per_wave)
    return waves * per_wave / n_wg


def overlap_fraction_batch(device: DeviceSpec, occ: OccupancyBatch) -> np.ndarray:
    """Vectorized :func:`overlap_fraction`."""
    if device.is_cpu:
        return np.full(occ.occupancy.shape[0], CPU_OVERLAP)
    return np.minimum(1.0, occ.occupancy / OCCUPANCY_KNEE)


def overhead_time_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`overhead_time`."""
    n_wg = batch.num_workgroups
    spread = n_wg * device.wg_launch_overhead_us / device.compute_units
    total = (device.kernel_launch_overhead_us + spread) * 1e-6

    if device.is_cpu:
        total = total + (
            batch.threads * CPU_ITEM_OVERHEAD_NS * 1e-9 / device.compute_units
        )

    barriers = batch.barriers_per_workgroup
    if device.is_cpu:
        per_wg_ns = barriers * batch.workgroup_threads * CPU_BARRIER_NS_PER_ITEM
    else:
        warps = np.ceil(batch.workgroup_threads / device.simd_width)
        per_wg_ns = barriers * warps * GPU_BARRIER_NS_PER_WARP
    barrier_term = n_wg * per_wg_ns * 1e-9 / device.compute_units
    return total + np.where(barriers > 0, barrier_term, 0.0)


def granularity_penalty_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`granularity_penalty`.

    log2 is evaluated with ``math.log2`` over the (few) unique warp counts —
    ``np.log2``'s last bit can differ from the C library's, which would break
    bit-identity with the scalar path.
    """
    if device.is_cpu:
        return np.ones(len(batch))
    warps = np.maximum(
        1, np.ceil(batch.workgroup_threads / device.simd_width).astype(np.int64)
    )
    uniq, inverse = np.unique(warps, return_inverse=True)
    table = np.fromiter(
        (math.log2(int(u)) ** 2 for u in uniq), np.float64, uniq.shape[0]
    )
    return 1.0 + GPU_WG_GRANULARITY_PENALTY * table[inverse]


def batch_jitter_factors(
    batch: WorkloadBatch,
    device: DeviceSpec,
    kernel_name: str,
    config_tuples: Sequence[tuple],
    mask: np.ndarray,
) -> np.ndarray:
    """Deterministic jitter factor per configuration (1.0 where ``mask`` is
    false).  Bit-identical to the jitter block of :func:`execute`."""
    factors = np.ones(len(batch))
    table = JitterTable(
        device.jitter_sigma, device.jitter_idio_sigma, device.name, kernel_name
    )
    quirk_table = None
    if batch.uses_driver_unroll:
        quirk_sigma = DRIVER_UNROLL_QUIRK_SIGMA * (
            1.0 - device.driver_unroll_reliability
        )
        quirk_table = JitterTable(
            0.0, quirk_sigma, device.name, f"{kernel_name}/unroll-quirk"
        )
    unroll = batch.unroll_factor
    for p in np.nonzero(mask)[0].tolist():
        cfg = tuple(config_tuples[p])
        j = table.factor(cfg)
        if quirk_table is not None and unroll[p] > 1:
            j *= quirk_table.factor(cfg)
        factors[p] = j
    return factors


def execute_batch(
    batch: WorkloadBatch,
    device: DeviceSpec,
    kernel_name: Optional[str] = None,
    config_tuples: Optional[Sequence[tuple]] = None,
) -> BatchExecution:
    """Simulate a whole batch of launches in one vectorized pass.

    Unlike :func:`execute`, invalid configurations do not raise — they come
    back as NaN times with a non-zero stage code, so callers triage a full
    sweep in one call.  Passing ``kernel_name`` + ``config_tuples`` enables
    the per-configuration deterministic jitter (the scalar path's
    ``jitter_key``); omitting them disables jitter, as an empty key does.
    """
    stages = validate_batch(batch, device)
    valid = stages == STAGE_OK_CODE

    occ = compute_occupancy_batch(batch, device)
    comp = compute_time_batch(batch, device)
    mem = memory_time_batch(batch, device)

    ov = overlap_fraction_batch(device, occ)
    busy = np.maximum(comp, mem) + (1.0 - ov) * np.minimum(comp, mem)

    per_wave = device.compute_units * np.maximum(occ.workgroups_per_cu, 1)
    waves = np.ceil(batch.num_workgroups / per_wave)
    latency = (1.0 - ov) * waves * device.global_latency_us * 1e-6

    q = wave_quantization_factor_batch(batch, device, occ) * granularity_penalty_batch(
        batch, device
    )
    ovh = overhead_time_batch(batch, device)

    total = busy * q + latency + ovh
    if kernel_name is not None and config_tuples is not None:
        total = total * batch_jitter_factors(
            batch, device, kernel_name, config_tuples, valid
        )
    return BatchExecution(times=np.where(valid, total, np.nan), stages=stages)


class KernelExecutor:
    """Bound (device, kernel-name) executor with a stable jitter namespace.

    Thin convenience over :func:`execute` used by the runtime layer: the
    jitter key is ``(kernel_name, config_tuple)`` so distinct kernels on the
    same device draw independent quirks.
    """

    def __init__(self, device: DeviceSpec, kernel_name: str):
        self.device = device
        self.kernel_name = kernel_name

    def run(self, profile: WorkloadProfile, config_tuple: tuple) -> ExecutionBreakdown:
        return execute(
            profile, self.device, jitter_key=(self.kernel_name, config_tuple)
        )

    def time(self, profile: WorkloadProfile, config_tuple: tuple) -> float:
        return self.run(profile, config_tuple).total_time
