"""Measurement model: noise around the true time, and tuning-cost accounting.

The executor produces a deterministic *true* time; a real measurement sees
that time through run-to-run noise (DVFS, other processes, timer
granularity).  We use multiplicative log-normal noise with a per-device
sigma — smaller on the CPU, whose longer-running kernels the paper notes
time more reliably (§7).

The same module models the *cost of measuring*: kernel compilation takes
seconds (growing with unroll factor — more code), and failed builds/launches
of invalid configurations still burn wall-clock time.  This reproduces the
paper's §6 accounting, where gathering 2000 convolution samples on the K40
took ~30 min while training took ~1 min.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulator.device import DeviceSpec

#: Wall-clock cost of discovering a build-stage failure (driver error path).
FAILED_BUILD_COST_S = 0.4

#: Wall-clock cost of a failed launch (build succeeded, enqueue failed).
FAILED_LAUNCH_COST_S = 0.15


def compile_time(device: DeviceSpec, unroll_factor: int = 1) -> float:
    """Seconds to build one kernel variant on ``device``."""
    if unroll_factor < 1:
        raise ValueError("unroll_factor must be >= 1")
    return (
        device.compile_time_base_s
        + device.compile_time_per_unroll_s * (unroll_factor - 1)
    )


@dataclass
class CostLedger:
    """Accumulated wall-clock cost of a tuning campaign (seconds).

    ``failed_s`` covers every *error path* — deterministic build/launch
    failures and injected transient failures, hangs, device resets.
    ``retry_s`` is the backoff time a resilient measurer sleeps between
    attempts; it stays 0.0 unless a fault profile and retry policy are in
    play, so fault-free ledger totals are unchanged by its existence.
    """

    compile_s: float = 0.0
    run_s: float = 0.0
    failed_s: float = 0.0
    retry_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.compile_s + self.run_s + self.failed_s + self.retry_s

    def merge(self, other: "CostLedger") -> "CostLedger":
        return CostLedger(
            compile_s=self.compile_s + other.compile_s,
            run_s=self.run_s + other.run_s,
            failed_s=self.failed_s + other.failed_s,
            retry_s=self.retry_s + other.retry_s,
        )


class MeasurementModel:
    """Draws noisy measurements of true times, with a seeded generator.

    Parameters
    ----------
    device:
        Supplies ``timing_noise_sigma``.
    rng:
        Source of randomness; pass a seeded ``numpy.random.Generator`` for
        reproducible campaigns.
    """

    def __init__(self, device: DeviceSpec, rng: np.random.Generator | None = None):
        self.device = device
        self.rng = rng if rng is not None else np.random.default_rng()

    def observe(self, true_time_s: float) -> float:
        """One noisy observation of a true time."""
        if true_time_s <= 0:
            raise ValueError(f"true time must be positive, got {true_time_s}")
        sigma = self.device.timing_noise_sigma
        if sigma == 0.0:
            return true_time_s
        return float(true_time_s * np.exp(sigma * self.rng.standard_normal()))

    def observe_many(self, true_time_s: float, repeats: int) -> np.ndarray:
        """``repeats`` independent observations of the same true time.

        Same contract as :meth:`observe` on both edges: a non-positive
        true time is rejected, and a zero-sigma device draws *nothing*
        from the generator — the RNG stream position is identical
        whichever entry point measured a configuration.
        """
        if true_time_s <= 0:
            raise ValueError(f"true time must be positive, got {true_time_s}")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        sigma = self.device.timing_noise_sigma
        if sigma == 0.0:
            return np.full(repeats, float(true_time_s))
        noise = np.exp(sigma * self.rng.standard_normal(repeats))
        return true_time_s * noise

    def best_of(self, true_time_s: float, repeats: int = 3) -> float:
        """Minimum of ``repeats`` observations — the usual benchmarking
        practice for kernels (noise is one-sided-ish: interference only
        slows you down)."""
        return float(self.observe_many(true_time_s, repeats).min())
