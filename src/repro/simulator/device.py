"""Architecture model of one OpenCL device.

The fields are the knobs the executor's cost model reads.  They are filled
with published numbers for the paper's devices where available (clock rates,
compute-unit counts, bandwidths, local-memory sizes) and with calibrated
behavioural factors where the real quantity is not a single number (texture
path throughput, driver unroll reliability, timing noise).
"""

from __future__ import annotations

from dataclasses import dataclass


CPU = "cpu"
GPU = "gpu"


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a device, consumed by the performance model.

    Attributes
    ----------
    name, vendor, device_type:
        Identity; ``device_type`` is ``"cpu"`` or ``"gpu"``.
    compute_units:
        OpenCL compute units (SMs on Nvidia, CUs on AMD, logical cores on
        the CPU).
    simd_width:
        Lock-step execution width in work-items (warp 32, wavefront 64;
        AVX float lanes on the CPU).
    clock_ghz:
        Core clock.
    flops_per_lane_per_cycle:
        Sustained scalar operations per SIMD lane per cycle for the mix of
        arithmetic in the benchmarks (≈1 for simple FMA-light code).
    global_bandwidth_gbs:
        Peak global-memory (DRAM) bandwidth.
    global_latency_us:
        Latency of an uncovered global access burst, per wave.
    cache_kb:
        Last-level cache serving global reads (L2 on GPUs, L3 on the CPU).
    cache_bandwidth_factor:
        Multiplier over DRAM bandwidth when hitting in cache.
    local_mem_per_cu_kb:
        On-chip scratchpad per compute unit (shared/LDS).  On CPUs OpenCL
        reports plain (cached) global memory; ``local_is_emulated`` is then
        True and "local" traffic costs like cached global traffic.
    local_bandwidth_factor:
        Aggregate local-memory bandwidth as a multiple of DRAM bandwidth.
    texture_rate_gtexels:
        Texture (image) fetch rate in billions of texels/s.  On devices
        where images are emulated (CPU), this is the *effective* rate of the
        emulation path, which is far below the load path.
    texture_cache_factor:
        Service-rate multiplier for texture fetches that hit the texture
        cache (2D-local access re-touching cached texels).  This is what
        makes image memory competitive with manual local-memory tiling for
        stencils on Nvidia hardware, and less so on GCN, whose design
        centres on the LDS.
    image_is_emulated:
        True when image memory has no dedicated hardware (CPU).
    constant_bandwidth_factor:
        Effective bandwidth multiple for constant-memory broadcasts.
    max_workgroup_size:
        Hard limit on work-items per work-group (build/launch fails above).
    max_threads_per_cu:
        Resident work-items per compute unit (occupancy ceiling).
    max_workgroups_per_cu:
        Resident work-groups per compute unit.
    registers_per_cu:
        32-bit registers per compute unit; exceeded demand first costs
        occupancy, then spills.
    max_registers_per_thread:
        Per-thread register ceiling before the compiler spills to memory.
    wg_launch_overhead_us:
        Scheduling cost per work-group (amortized across compute units).
    kernel_launch_overhead_us:
        Fixed cost per kernel launch (driver + queue).
    driver_unroll_reliability:
        Probability-like factor in [0, 1] that a ``#pragma unroll`` request
        is honoured effectively by the driver's compiler (the paper blames
        the AMD driver's unrolling for the raycasting/others accuracy gap,
        §7 — raycasting unrolls manually with macros and is unaffected).
    compile_time_base_s / compile_time_per_unroll_s:
        Kernel build time model: base plus growth with unrolled code size.
    timing_noise_sigma:
        Log-space standard deviation of run-to-run measurement noise.  The
        paper notes CPU timings are more reliable (longer kernels), §7.
    jitter_sigma:
        Magnitude of the *structured* deterministic jitter: interaction
        quirks keyed on parameter subgroups (bank-conflict patterns per
        work-group shape, scheduler behaviour per blocking, ...).  A model
        can learn these from enough data — they dominate early-training
        error (Figs. 4-6 learning curves).
    jitter_idio_sigma:
        Magnitude of the *idiosyncratic* deterministic jitter keyed on the
        full configuration (alignment, partition camping).  No feature set
        explains it: the irreducible error floor, and why tuned results sit
        a few percent above the global optimum (Figs. 11-13).
    """

    name: str
    vendor: str
    device_type: str
    compute_units: int
    simd_width: int
    clock_ghz: float
    flops_per_lane_per_cycle: float
    global_bandwidth_gbs: float
    global_latency_us: float
    cache_kb: float
    cache_bandwidth_factor: float
    local_mem_per_cu_kb: float
    local_bandwidth_factor: float
    local_is_emulated: bool
    texture_rate_gtexels: float
    texture_cache_factor: float
    image_is_emulated: bool
    constant_bandwidth_factor: float
    max_workgroup_size: int
    max_threads_per_cu: int
    max_workgroups_per_cu: int
    registers_per_cu: int
    max_registers_per_thread: int
    wg_launch_overhead_us: float
    kernel_launch_overhead_us: float
    driver_unroll_reliability: float
    compile_time_base_s: float
    compile_time_per_unroll_s: float
    timing_noise_sigma: float
    jitter_sigma: float
    jitter_idio_sigma: float

    def __post_init__(self) -> None:
        if self.device_type not in (CPU, GPU):
            raise ValueError(f"device_type must be 'cpu' or 'gpu', got {self.device_type!r}")
        if self.compute_units < 1 or self.simd_width < 1:
            raise ValueError("compute_units and simd_width must be >= 1")
        if not 0.0 <= self.driver_unroll_reliability <= 1.0:
            raise ValueError("driver_unroll_reliability must be in [0, 1]")
        for f in ("clock_ghz", "global_bandwidth_gbs", "texture_rate_gtexels"):
            if getattr(self, f) <= 0:
                raise ValueError(f"{f} must be positive")

    @property
    def is_cpu(self) -> bool:
        return self.device_type == CPU

    @property
    def is_gpu(self) -> bool:
        return self.device_type == GPU

    @property
    def peak_gflops(self) -> float:
        """Peak scalar-op throughput in Gops/s."""
        return (
            self.compute_units
            * self.simd_width
            * self.clock_ghz
            * self.flops_per_lane_per_cycle
        )

    @property
    def local_mem_per_cu_bytes(self) -> int:
        return int(self.local_mem_per_cu_kb * 1024)

    def __str__(self) -> str:
        return f"{self.name} ({self.vendor} {self.device_type.upper()})"
