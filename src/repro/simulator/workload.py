"""Workload characterization handed from a kernel to the executor.

Each benchmark kernel (:mod:`repro.kernels`) turns a tuning configuration
into a :class:`WorkloadProfile`: how many threads, how much arithmetic, and
how much traffic per memory space one thread generates, plus the structural
facts the cost model needs (register demand, local-memory footprint, access
locality, unroll provenance).  The executor never sees kernel code — only
this profile — which keeps the device model kernel-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np


@dataclass(frozen=True)
class WorkloadProfile:
    """Per-configuration description of a kernel launch.

    All "per-thread" quantities are averages over the launch.  Traffic is in
    4-byte accesses (the benchmarks are float32/uchar4 codes).

    Attributes
    ----------
    global_size:
        Launched ND-range, ``(gx, gy)`` work-items.
    workgroup:
        Work-group shape ``(wx, wy)``.
    flops_per_thread:
        Arithmetic operations per work-item.
    global_reads / global_writes:
        Global-memory accesses per work-item (4 B each).
    image_reads:
        Image (texture) fetches per work-item.
    local_reads / local_writes:
        Local-memory accesses per work-item.
    constant_reads:
        Constant-memory reads per work-item.
    local_mem_per_wg_bytes:
        Scratchpad allocated per work-group (drives occupancy & validity).
    registers_per_thread:
        Register demand (drives occupancy, spilling, launch validity).
    coalesced_fraction:
        Fraction of global accesses that are contiguous across adjacent
        work-items of a row (GPU coalescing; CPU vectorization proxy).
    spatial_locality:
        0..1 measure of 2D locality of the global/image footprint; drives
        cache and texture-cache hit rates.
    footprint_bytes:
        Total distinct bytes touched in global/image memory (cache sizing).
    loop_iterations_per_thread:
        Loop-control iterations per work-item *after* unrolling — pays
        branch/index overhead per iteration.
    uses_driver_unroll:
        True when unrolling relies on the OpenCL driver pragma (convolution
        and stereo in the paper) rather than manual macros (raycasting);
        on drivers with low ``driver_unroll_reliability`` the requested
        factor is then only partially honoured.
    unroll_factor:
        Requested unroll factor (1 = none).
    barriers_per_workgroup:
        Work-group-wide barriers executed per work-group (cooperative tile
        loads need them).  Cheap per-warp on GPUs; on CPUs every barrier
        forces the runtime to suspend/resume every work-item, which is why
        local-memory tiling rarely pays off there.
    wg_footprint_bytes:
        Distinct bytes one work-group touches.  On CPUs the work-group is
        the runtime's cache-blocking unit: footprints past per-core L2
        thrash (this is what keeps CPU-optimal work-group x block shapes
        moderate).  0 means unknown/not-modelled.
    """

    global_size: tuple
    workgroup: tuple
    flops_per_thread: float
    global_reads: float = 0.0
    global_writes: float = 0.0
    image_reads: float = 0.0
    local_reads: float = 0.0
    local_writes: float = 0.0
    constant_reads: float = 0.0
    local_mem_per_wg_bytes: int = 0
    registers_per_thread: int = 16
    coalesced_fraction: float = 1.0
    spatial_locality: float = 0.5
    footprint_bytes: float = 0.0
    loop_iterations_per_thread: float = 0.0
    uses_driver_unroll: bool = False
    unroll_factor: int = 1
    barriers_per_workgroup: float = 0.0
    wg_footprint_bytes: float = 0.0

    def __post_init__(self) -> None:
        gx, gy = self.global_size
        wx, wy = self.workgroup
        if gx < 1 or gy < 1 or wx < 1 or wy < 1:
            raise ValueError("global_size and workgroup must be positive")
        if not 0.0 <= self.coalesced_fraction <= 1.0:
            raise ValueError("coalesced_fraction must be in [0, 1]")
        if not 0.0 <= self.spatial_locality <= 1.0:
            raise ValueError("spatial_locality must be in [0, 1]")
        if self.unroll_factor < 1:
            raise ValueError("unroll_factor must be >= 1")
        for f in (
            "flops_per_thread",
            "global_reads",
            "global_writes",
            "image_reads",
            "local_reads",
            "local_writes",
            "constant_reads",
            "loop_iterations_per_thread",
            "barriers_per_workgroup",
        ):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be non-negative")

    @property
    def threads(self) -> int:
        """Total work-items in the launch."""
        return self.global_size[0] * self.global_size[1]

    @property
    def workgroup_threads(self) -> int:
        """Work-items per work-group."""
        return self.workgroup[0] * self.workgroup[1]

    @property
    def num_workgroups(self) -> int:
        """Work-groups in the launch (the ND-range is padded to a multiple
        of the work-group shape by the kernels, so division is exact)."""
        gx, gy = self.global_size
        wx, wy = self.workgroup
        return ((gx + wx - 1) // wx) * ((gy + wy - 1) // wy)

    def total_global_bytes(self) -> float:
        """Raw global traffic of the launch in bytes (before caching)."""
        return 4.0 * self.threads * (self.global_reads + self.global_writes)


@dataclass
class WorkloadBatch:
    """Column-wise batch of :class:`WorkloadProfile` records.

    Each scalar field of ``WorkloadProfile`` becomes a NumPy array of
    length ``n``; the ``(gx, gy)`` / ``(wx, wy)`` tuples are split into
    per-axis integer arrays.  ``uses_driver_unroll`` stays a single bool —
    it is a property of the kernel, not of the configuration.

    Integer-valued columns use ``int64`` and float columns ``float64`` so
    that elementwise arithmetic reproduces the scalar Python computation
    bit for bit.  No validation happens here: batches may describe invalid
    configurations (over-sized work-groups etc.); :func:`validity
    <repro.simulator.validity.validate_batch>` classifies them afterwards.
    """

    gx: np.ndarray
    gy: np.ndarray
    wx: np.ndarray
    wy: np.ndarray
    flops_per_thread: np.ndarray
    global_reads: np.ndarray
    global_writes: np.ndarray
    image_reads: np.ndarray
    local_reads: np.ndarray
    local_writes: np.ndarray
    constant_reads: np.ndarray
    local_mem_per_wg_bytes: np.ndarray
    registers_per_thread: np.ndarray
    coalesced_fraction: np.ndarray
    spatial_locality: np.ndarray
    footprint_bytes: np.ndarray
    loop_iterations_per_thread: np.ndarray
    unroll_factor: np.ndarray
    barriers_per_workgroup: np.ndarray
    wg_footprint_bytes: np.ndarray
    uses_driver_unroll: bool = False

    def __len__(self) -> int:
        return int(self.gx.shape[0])

    @property
    def threads(self) -> np.ndarray:
        """Total work-items per launch (int64)."""
        return self.gx * self.gy

    @property
    def workgroup_threads(self) -> np.ndarray:
        """Work-items per work-group (int64)."""
        return self.wx * self.wy

    @property
    def num_workgroups(self) -> np.ndarray:
        """Work-groups per launch (int64)."""
        return ((self.gx + self.wx - 1) // self.wx) * (
            (self.gy + self.wy - 1) // self.wy
        )

    @classmethod
    def from_profiles(cls, profiles: "list[WorkloadProfile]") -> "WorkloadBatch":
        """Stack scalar profiles into a batch (reference path; kernels
        normally build batches directly from decoded parameter columns)."""
        n = len(profiles)
        int_cols = {"local_mem_per_wg_bytes", "registers_per_thread", "unroll_factor"}
        kw = {
            "gx": np.fromiter((p.global_size[0] for p in profiles), np.int64, n),
            "gy": np.fromiter((p.global_size[1] for p in profiles), np.int64, n),
            "wx": np.fromiter((p.workgroup[0] for p in profiles), np.int64, n),
            "wy": np.fromiter((p.workgroup[1] for p in profiles), np.int64, n),
            "uses_driver_unroll": any(p.uses_driver_unroll for p in profiles),
        }
        for f in fields(WorkloadProfile):
            if f.name in ("global_size", "workgroup", "uses_driver_unroll"):
                continue
            dtype = np.int64 if f.name in int_cols else np.float64
            kw[f.name] = np.fromiter(
                (getattr(p, f.name) for p in profiles), dtype, n
            )
        return cls(**kw)
