"""Performance drift: the machine changing under a long-lived campaign.

Fault injection (:mod:`.faults`) models *discrete* failures; real rigs
additionally change *continuously*: clocks throttle as the card heats up,
and co-tenants come and go, shifting contention regimes mid-campaign.  A
tuner that measured once and cached the answer is then optimizing for a
machine that no longer exists — the setting the online re-tuning layer
(:mod:`repro.core.online`) is built for.

A :class:`DriftProfile` describes a drift *schedule* over simulated
campaign time; a :class:`DriftModel` turns it into multiplicative factors
applied to true times at the measurement surfaces.  Two components:

* **thermal throttling** — after ``onset_s`` simulated seconds the whole
  device slows down, ramping linearly to ``throttle_factor`` over
  ``ramp_s`` and holding there.  A pure global multiplier: rankings are
  preserved, only the absolute times move.
* **contention regimes** — after ``onset_s``, time is divided into
  epochs of ``regime_duration_s``; each epoch draws a global contention
  level in ``[contention_min, contention_max]`` plus a per-configuration
  quirk (``exp(contention_sigma * N(0,1))``), both keyed on the profile
  seed and the regime index.  Per-config quirks *reorder* the space — the
  pre-shift optimum may genuinely stop being optimal, so re-measurement
  (not just re-scaling) is required to recover.

The clock is ``ledger.total_s`` plus an explicit ``idle_s`` offset the
online tuner advances between monitoring probes (production time passes
even when no tuning budget is being spent).

Every factor is drawn through the same replayable keyed-hash discipline
faults use (the vectorizable splitmix64 helpers
:func:`~repro.simulator.hashing.keyed_uniform` /
:func:`~repro.simulator.hashing.keyed_normal` keyed on the profile
seed) — **never** from the context RNG — so:

* the same profile + seed replays the identical drift history, serial
  and batch paths agree bit for bit;
* attaching a profile never perturbs the measurement-noise stream, and
  the ``none`` profile (or ``drift=None``) is bit-identical to code that
  predates the drift dimension entirely — the zero-drift equivalence
  guarantee, enforced by ``tests/test_drift.py`` against the recorded
  ``tests/data/zero_fault_fixtures.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.simulator.hashing import (
    fold64,
    fold64_many,
    key64,
    keyed_normal,
    keyed_normal_many,
    keyed_uniform,
    pair_key_prefix64,
    part64,
    tuple_keys64,
)


@dataclass(frozen=True)
class DriftProfile:
    """Drift schedule of one (simulated) rig over campaign time.

    The all-default profile drifts nothing — attaching it is equivalent
    to attaching no profile at all.

    Attributes
    ----------
    seed:
        Drift-stream seed.  Independent of the context seed: the same
        campaign can be replayed under a different drift history (or the
        same drift under different measurement noise).
    onset_s:
        Simulated seconds of quiet machine before any drift begins; both
        components are exactly 1.0 before it.
    throttle_factor / ramp_s:
        Thermal throttling: the global slowdown ramps linearly from 1.0
        at ``onset_s`` to ``throttle_factor`` over ``ramp_s`` seconds,
        then holds (``ramp_s = 0`` is a step).  1.0 disables throttling.
    regime_duration_s:
        Length of one contention epoch; 0 disables contention regimes.
        Epoch 0 is the pre-onset quiet machine (factor exactly 1.0).
    contention_min / contention_max:
        Band of the per-regime global contention factor (drawn uniformly
        per regime from the keyed hash).
    contention_sigma:
        Sigma of the per-configuration log-normal regime quirk —
        contention hits different configurations differently, which is
        what makes a regime shift *reorder* the configuration space.
    """

    seed: int = 0
    onset_s: float = 0.0
    throttle_factor: float = 1.0
    ramp_s: float = 0.0
    regime_duration_s: float = 0.0
    contention_min: float = 1.0
    contention_max: float = 1.0
    contention_sigma: float = 0.0

    def __post_init__(self):
        if self.onset_s < 0 or self.ramp_s < 0 or self.regime_duration_s < 0:
            raise ValueError("drift schedule times must be >= 0")
        if self.throttle_factor <= 0:
            raise ValueError("throttle_factor must be positive")
        if self.contention_min <= 0:
            raise ValueError("contention_min must be positive")
        if self.contention_max < self.contention_min:
            raise ValueError("contention_max must be >= contention_min")
        if self.contention_sigma < 0:
            raise ValueError("contention_sigma must be >= 0")

    @property
    def any_drift(self) -> bool:
        """True when the schedule can ever produce a factor != 1.0."""
        throttling = self.throttle_factor != 1.0
        contention = self.regime_duration_s > 0 and (
            self.contention_min != 1.0
            or self.contention_max != 1.0
            or self.contention_sigma > 0.0
        )
        return throttling or contention


#: Named drift schedules for the CLI, the serve ``watch`` op and tests.
#: "thermal-throttle" is a ranking-preserving global slowdown (re-scaling
#: recovers); "noisy-neighbor" shifts contention regimes whose per-config
#: quirks reorder the space (re-measurement is required to recover).
DRIFT_PROFILES: Dict[str, DriftProfile] = {
    "none": DriftProfile(),
    "thermal-throttle": DriftProfile(
        onset_s=900.0,
        throttle_factor=1.35,
        ramp_s=600.0,
    ),
    "noisy-neighbor": DriftProfile(
        onset_s=600.0,
        regime_duration_s=1800.0,
        contention_min=1.15,
        contention_max=1.5,
        contention_sigma=0.04,
    ),
}


def get_drift_profile(spec: str) -> DriftProfile:
    """Resolve a CLI drift spec: ``<name>`` or ``<name>:field=value,...``.

    ``repro watch --drift thermal-throttle`` or
    ``--drift noisy-neighbor:seed=3,onset_s=450``.
    """
    name, _, overrides = spec.partition(":")
    name = name.strip()
    if name not in DRIFT_PROFILES:
        raise ValueError(
            f"unknown drift profile {name!r}; expected one of "
            f"{sorted(DRIFT_PROFILES)}"
        )
    profile = DRIFT_PROFILES[name]
    if not overrides:
        return profile
    known = {f.name: f.type for f in fields(DriftProfile)}
    kwargs = {}
    for item in overrides.split(","):
        item = item.strip()
        if not item:
            continue
        key, eq, raw = item.partition("=")
        key = key.strip()
        if not eq or key not in known:
            raise ValueError(
                f"bad drift override {item!r}; expected field=value with "
                f"field in {sorted(known)}"
            )
        kwargs[key] = int(raw) if key == "seed" else float(raw)
    return replace(profile, **kwargs)


class DriftModel:
    """Stateful drift clock + factor stream for one :class:`DriftProfile`.

    Holds the only mutable state drift needs: the ``idle_s`` offset (time
    the campaign spent *serving*, not tuning — advanced explicitly by the
    online tuner between monitoring probes) and observability counters.
    Factor values themselves are pure functions of ``(profile, time,
    configuration)``, so replaying a campaign replays its drift history.
    """

    def __init__(self, profile: DriftProfile):
        self.profile = profile
        # Keyed-hash surface roots: regime draws fold the epoch index into
        # these, quirk draws additionally fold the (kernel, config) hash,
        # so the scalar and batch paths share one key structure.
        self._regime_h = key64(profile.seed, "drift", "regime")
        self._quirk_h = key64(profile.seed, "drift", "quirk")
        #: Simulated seconds of non-ledger (idle/serving) time elapsed.
        self.idle_s = 0.0
        #: Regime index observed by the most recent factor query.
        self.last_regime = 0
        #: Regime transitions witnessed by factor queries (for tests and
        #: trace events — detection must come from measurements, not here).
        self.shifts_seen = 0
        #: Factor queries that returned a value != 1.0.
        self.applied = 0

    # -- clock -----------------------------------------------------------------

    def advance(self, dt_s: float) -> None:
        """Advance the idle clock: ``dt_s`` simulated seconds pass without
        any ledger spend (the campaign is serving, not measuring)."""
        if dt_s < 0:
            raise ValueError("dt_s must be >= 0")
        self.idle_s += dt_s

    def time_of(self, ledger) -> float:
        """The drift clock: ledger spend plus idle time."""
        return ledger.total_s + self.idle_s

    # -- schedule (pure) -------------------------------------------------------

    def regime_at(self, t_s: float) -> int:
        """Contention epoch index at ``t_s`` (0 = pre-onset quiet)."""
        p = self.profile
        if p.regime_duration_s <= 0 or t_s < p.onset_s:
            return 0
        return 1 + int((t_s - p.onset_s) // p.regime_duration_s)

    def throttle_at(self, t_s: float) -> float:
        """Thermal-ramp global factor at ``t_s`` (exactly 1.0 pre-onset)."""
        p = self.profile
        if p.throttle_factor == 1.0 or t_s < p.onset_s:
            return 1.0
        if p.ramp_s <= 0:
            return p.throttle_factor
        frac = min(1.0, (t_s - p.onset_s) / p.ramp_s)
        return 1.0 + (p.throttle_factor - 1.0) * frac

    def regime_global(self, regime: int) -> float:
        """Global contention level of one epoch (exactly 1.0 for epoch 0)."""
        p = self.profile
        if regime <= 0:
            return 1.0
        if p.contention_min == p.contention_max:
            return p.contention_min
        u = keyed_uniform(fold64(self._regime_h, regime))
        return p.contention_min + (p.contention_max - p.contention_min) * u

    def regime_quirk(
        self, regime: int, kernel_name: str, config_tuple: tuple
    ) -> float:
        """Per-configuration quirk of one epoch (1.0 for epoch 0 or at
        zero sigma) — the component that reorders the space."""
        p = self.profile
        if regime <= 0 or p.contention_sigma == 0.0:
            return 1.0
        z = keyed_normal(
            fold64(fold64(self._quirk_h, regime), part64((kernel_name, config_tuple)))
        )
        return float(np.exp(p.contention_sigma * z))

    # -- batch draws (bit-identical to the scalar path) ------------------------

    @staticmethod
    def quirk_key_hashes(kernel_name: str, int_matrix: np.ndarray) -> np.ndarray:
        """``part64((kernel_name, config_tuple))`` for every row of an
        integer configuration matrix, vectorized.  The same hashes feed
        :meth:`regime_quirks_many` for any number of regimes."""
        return tuple_keys64(pair_key_prefix64(kernel_name), int_matrix)

    def regime_quirks_many(self, regime: int, key_hashes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`regime_quirk` over precomputed config hashes
        (:meth:`quirk_key_hashes`); bit-identical to the scalar draws."""
        p = self.profile
        if regime <= 0 or p.contention_sigma == 0.0:
            return np.ones(len(key_hashes))
        z = keyed_normal_many(
            fold64_many(fold64(self._quirk_h, regime),
                        np.asarray(key_hashes, dtype=np.uint64))
        )
        return np.exp(p.contention_sigma * z)

    def factor_at(
        self, t_s: float, kernel_name: str, config_tuple: tuple
    ) -> float:
        """Pure factor query (no counters): the multiplier applied to one
        configuration's true time at drift-clock time ``t_s``."""
        regime = self.regime_at(t_s)
        return (
            self.throttle_at(t_s)
            * self.regime_global(regime)
            * self.regime_quirk(regime, kernel_name, config_tuple)
        )

    # -- the measurement-surface entry point ----------------------------------

    def factor(self, t_s: float, kernel_name: str, config_tuple: tuple) -> float:
        """:meth:`factor_at` plus counter upkeep — what the runtime and
        the measurer call when a launch actually happens."""
        regime = self.regime_at(t_s)
        if regime != self.last_regime:
            self.shifts_seen += 1
            self.last_regime = regime
        f = (
            self.throttle_at(t_s)
            * self.regime_global(regime)
            * self.regime_quirk(regime, kernel_name, config_tuple)
        )
        if f != 1.0:
            self.applied += 1
        return f

    def factors_at(
        self, t_s: float, kernel_name: str, config_tuples: Sequence[tuple]
    ) -> List[float]:
        """Pure batch query: drifted-over-base multipliers for many
        configurations at one instant (used by evaluation code to build
        post-shift oracle tables)."""
        regime = self.regime_at(t_s)
        base = self.throttle_at(t_s) * self.regime_global(regime)
        if regime <= 0 or self.profile.contention_sigma == 0.0:
            return [base] * len(config_tuples)
        return [
            base * self.regime_quirk(regime, kernel_name, ct)
            for ct in config_tuples
        ]


def make_drift(
    drift: "DriftProfile | DriftModel | str | None",
) -> Optional[DriftModel]:
    """Coerce the ``drift=`` argument accepted by ``Context``: a profile,
    a ready model, a named spec string, or None.  Profiles that can never
    drift (``none`` included) coerce to None, which is what makes the
    zero-drift path *provably* identical — it is the same code."""
    if drift is None:
        return None
    if isinstance(drift, DriftModel):
        return drift
    if isinstance(drift, str):
        drift = get_drift_profile(drift)
    if not isinstance(drift, DriftProfile):
        raise TypeError(f"cannot build a DriftModel from {drift!r}")
    if not drift.any_drift:
        return None
    return DriftModel(drift)
