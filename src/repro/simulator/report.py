"""Human-readable breakdowns of simulated launches.

``explain`` answers the question a tuner user actually has about a
configuration: *where does the time go, and what limits it* — compute or
memory, which memory space, how much is overhead, what bounded occupancy.
"""

from __future__ import annotations

from repro.simulator.device import DeviceSpec
from repro.simulator.executor import ExecutionBreakdown, execute
from repro.simulator.workload import WorkloadProfile


def _pct(part: float, whole: float) -> str:
    if whole <= 0:
        return "0%"
    return f"{100.0 * part / whole:.0f}%"


def describe_breakdown(b: ExecutionBreakdown) -> str:
    """Render one :class:`ExecutionBreakdown` as an indented report."""
    total = b.total_time
    busy = max(b.compute_time, b.memory.total)
    bound = "compute-bound" if b.compute_time >= b.memory.total else "memory-bound"
    m = b.memory
    lines = [
        f"total            : {total * 1e3:.3f} ms ({bound})",
        f"  compute        : {b.compute_time * 1e3:.3f} ms ({_pct(b.compute_time, busy)} of the busy path)",
        f"  memory         : {m.total * 1e3:.3f} ms",
    ]
    for name, part in (
        ("global", m.global_time),
        ("image", m.image_time),
        ("local", m.local_time),
        ("constant", m.constant_time),
        ("spill", m.spill_time),
    ):
        if part > 0:
            lines.append(f"    {name:12s} : {part * 1e3:.3f} ms ({_pct(part, m.total)})")
    lines.append(
        f"  overlap        : {b.overlap:.2f} "
        f"(occupancy {b.occupancy.occupancy:.2f}, limited by {b.occupancy.limiter})"
    )
    lines.append(f"  wave penalty   : {b.wave_quantization:.2f}x")
    lines.append(f"  overheads      : {b.overhead_time * 1e3:.3f} ms")
    if b.jitter != 1.0:
        lines.append(f"  config quirk   : {b.jitter:.3f}x")
    return "\n".join(lines)


def explain(
    spec, config, device: DeviceSpec, with_jitter: bool = True
) -> str:
    """Simulate one configuration of a kernel and explain its time.

    Parameters
    ----------
    spec:
        A :class:`~repro.kernels.base.KernelSpec`.
    config:
        Configuration mapping (must be valid on ``device``).
    with_jitter:
        Include the configuration-specific quirk factor (True matches what
        a measurement would see; False isolates the structural model).
    """
    profile: WorkloadProfile = spec.workload(config, device)
    key = (spec.name, spec.config_tuple(config)) if with_jitter else ()
    b = execute(profile, device, jitter_key=key)
    head = (
        f"{spec.name} on {device.name}\n"
        f"launch           : {profile.global_size[0]}x{profile.global_size[1]} threads, "
        f"work-groups of {profile.workgroup[0]}x{profile.workgroup[1]}"
    )
    return head + "\n" + describe_breakdown(b)
