"""Beyond the paper's testbed: a novel-architecture device model (§8).

The paper's future work includes "evaluating the model on novel hardware
architectures, beyond just CPUs and GPUs".  The natural 2015 candidate is
the Intel Xeon Phi (Knights Corner): a many-core with CPU-style cores and
GPU-style width — 60 in-order cores x 4 hardware threads, 512-bit (16-lane)
SIMD, high-bandwidth GDDR5, but CPU-style emulated image/local memory and
a CPU-style OpenCL runtime.  The model slots straight into the existing
executor: the device is "a CPU with GPU-scale parallelism", which is
exactly what made it interesting to auto-tune.
"""

from __future__ import annotations

from repro.simulator.device import CPU, DeviceSpec

#: Intel Xeon Phi 5110P (Knights Corner).  60 cores / 240 threads; the
#: Intel OpenCL runtime exposed the threads as compute units.  In-order
#: cores hide less latency than a Core i7; the 512-bit vector unit only
#: pays off for contiguous access; images and local memory are emulated.
XEON_PHI_5110P = DeviceSpec(
    name="Intel Xeon Phi 5110P",
    vendor="Intel",
    device_type=CPU,
    compute_units=236,          # 59 cores x 4 threads exposed (1 reserved)
    simd_width=16,              # 512-bit float32
    clock_ghz=1.053,
    flops_per_lane_per_cycle=0.5,
    global_bandwidth_gbs=160.0, # practical GDDR5 stream bandwidth
    global_latency_us=0.15,
    cache_kb=30720.0,           # 512 KB L2 per core, ring-shared
    cache_bandwidth_factor=4.0,
    local_mem_per_cu_kb=32.0,
    local_bandwidth_factor=2.0,
    local_is_emulated=True,
    texture_rate_gtexels=1.6,   # software image path, like the host CPU
    texture_cache_factor=1.5,
    image_is_emulated=True,
    constant_bandwidth_factor=4.0,
    max_workgroup_size=8192,
    max_threads_per_cu=8192,
    max_workgroups_per_cu=64,
    registers_per_cu=1 << 30,
    max_registers_per_thread=1 << 30,
    wg_launch_overhead_us=0.8,
    kernel_launch_overhead_us=60.0,  # PCIe offload launch cost
    driver_unroll_reliability=0.85,
    compile_time_base_s=0.6,
    compile_time_per_unroll_s=0.03,
    timing_noise_sigma=0.02,
    jitter_sigma=0.09,          # in-order cores: scheduling quirks between
    jitter_idio_sigma=0.04,     # the CPU's and the GPUs' unpredictability
)
