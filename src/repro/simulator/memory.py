"""Memory-hierarchy cost model: seconds spent moving data, per launch.

Each logical OpenCL memory space gets its own service model:

* **global** — DRAM bandwidth degraded by uncoalesced access, improved by
  last-level cache hits (hit rate from spatial locality and footprint);
* **image** — dedicated texture samplers with a 2D-locality-friendly cache
  on GPUs; a slow emulation path on CPUs (the source of the paper's Fig. 8
  Intel cluster: image *without* local memory is disastrous on the CPU);
* **local** — on-chip scratchpad on GPUs (fast, more so than cache);
  plain cached memory on CPUs (no win, slight copy-in overhead);
* **constant** — broadcast-optimized path.

All functions return *seconds for the whole launch*, assuming perfect
spreading over the device; serialization effects (waves, occupancy) are the
executor's job.
"""

from __future__ import annotations

import math

from dataclasses import dataclass

import numpy as np

from repro.simulator.device import DeviceSpec
from repro.simulator.workload import WorkloadBatch, WorkloadProfile

#: Bytes per access for the float32/uchar4 codes in the benchmarks.
ACCESS_BYTES = 4.0

#: DRAM bandwidth fraction achieved by fully uncoalesced (strided) access:
#: each 4 B useful word drags a full 32 B transaction segment.
UNCOALESCED_EFFICIENCY = 0.125

#: Per-core L2 on the CPU (work-group = the runtime's cache-blocking unit).
CPU_L2_BYTES = 128.0 * 1024

#: CPU slowdown per doubling of work-group footprint beyond L2.
CPU_L2_OVERFLOW_PENALTY = 0.55


@dataclass(frozen=True)
class MemoryCost:
    """Breakdown of memory time for one launch (seconds)."""

    global_time: float
    image_time: float
    local_time: float
    constant_time: float
    spill_time: float

    @property
    def total(self) -> float:
        return (
            self.global_time
            + self.image_time
            + self.local_time
            + self.constant_time
            + self.spill_time
        )


def cache_hit_fraction(profile: WorkloadProfile, device: DeviceSpec) -> float:
    """Last-level-cache hit rate for global traffic.

    A footprint that fits in cache is mostly hits regardless of pattern; a
    larger footprint degrades towards a locality-driven floor: stencil-style
    neighbourhoods (high ``spatial_locality``) keep re-touching cached lines.
    """
    if profile.footprint_bytes <= 0:
        return min(0.97, profile.spatial_locality)
    cache_bytes = device.cache_kb * 1024.0
    fit = min(1.0, cache_bytes / profile.footprint_bytes)
    # Between "all fits" (hit ~ 0.95) and "streaming" (hit ~ locality * 0.8).
    resident = 0.95 * fit
    streaming = 0.8 * profile.spatial_locality * (1.0 - fit)
    return min(0.97, resident + streaming)


def global_memory_time(profile: WorkloadProfile, device: DeviceSpec) -> float:
    """Time to service all global reads+writes of the launch."""
    accesses = profile.threads * (profile.global_reads + profile.global_writes)
    if accesses <= 0:
        return 0.0
    bytes_moved = accesses * ACCESS_BYTES
    coal = profile.coalesced_fraction
    # CPUs do not coalesce per-lane, but contiguous access is what lets the
    # compiler vectorize loads and the prefetcher stream; same lever, gentler
    # penalty.
    waste = UNCOALESCED_EFFICIENCY if device.is_gpu else 0.45
    efficiency = coal + (1.0 - coal) * waste
    hit = cache_hit_fraction(profile, device)
    dram_bw = device.global_bandwidth_gbs * 1e9 * efficiency
    cache_bw = dram_bw * device.cache_bandwidth_factor
    # Misses at DRAM speed, hits at cache speed.
    t = bytes_moved * ((1.0 - hit) / dram_bw + hit / cache_bw)
    return t * cpu_l2_overflow_factor(profile, device)


def cpu_l2_overflow_factor(profile: WorkloadProfile, device: DeviceSpec) -> float:
    """Thrash factor for CPU work-group blocks overflowing per-core L2.

    The work-group is the CPU runtime's cache-blocking unit; each doubling
    of the block footprint past L2 costs another chunk of re-fetch traffic.
    Applies to *all* CPU memory paths — emulated local memory is ordinary
    cached memory, so an oversized "local" tile thrashes just the same.
    """
    if not device.is_cpu or profile.wg_footprint_bytes <= CPU_L2_BYTES:
        return 1.0
    overflow = math.log2(profile.wg_footprint_bytes / CPU_L2_BYTES)
    return 1.0 + CPU_L2_OVERFLOW_PENALTY * overflow


def image_memory_time(profile: WorkloadProfile, device: DeviceSpec) -> float:
    """Time to service image (texture) fetches.

    GPUs: dedicated samplers at ``texture_rate_gtexels``, sped up by the
    texture cache for 2D-local access.  CPUs: every fetch runs address
    arithmetic + filtering in software — a fixed, slow rate that does not
    benefit from locality much.
    """
    fetches = profile.threads * profile.image_reads
    if fetches <= 0:
        return 0.0
    rate = device.texture_rate_gtexels * 1e9
    if device.image_is_emulated:
        # Emulation cost dominates; locality only helps the underlying loads.
        effective = rate * (1.0 + 0.3 * profile.spatial_locality)
        return fetches / effective
    # Texture cache: 2D-local access re-touches cached texels and is served
    # at a multiple of the raw sampler rate — what makes image memory
    # competitive with manual tiling for stencils.
    hit = 0.5 + 0.45 * profile.spatial_locality
    return fetches * (
        (1.0 - hit) / rate + hit / (rate * device.texture_cache_factor)
    )


def local_memory_time(profile: WorkloadProfile, device: DeviceSpec) -> float:
    """Time to service local (scratchpad) traffic."""
    accesses = profile.threads * (profile.local_reads + profile.local_writes)
    if accesses <= 0:
        return 0.0
    bytes_moved = accesses * ACCESS_BYTES
    bw = device.global_bandwidth_gbs * 1e9 * device.local_bandwidth_factor
    return bytes_moved / bw * cpu_l2_overflow_factor(profile, device)


def constant_memory_time(profile: WorkloadProfile, device: DeviceSpec) -> float:
    """Time to service constant-memory broadcasts."""
    accesses = profile.threads * profile.constant_reads
    if accesses <= 0:
        return 0.0
    bytes_moved = accesses * ACCESS_BYTES
    bw = device.global_bandwidth_gbs * 1e9 * device.constant_bandwidth_factor
    return bytes_moved / bw


def spill_memory_time(profile: WorkloadProfile, device: DeviceSpec) -> float:
    """Extra traffic when register demand exceeds the per-thread ceiling.

    Every register beyond the ceiling costs roughly one cached read+write
    per loop iteration — the classic cliff that makes very large unroll
    factors backfire.
    """
    over = profile.registers_per_thread - device.max_registers_per_thread
    if over <= 0:
        return 0.0
    # Only a few *live* values spill-and-reload; and they reload per unit
    # of loop work (proxied by arithmetic volume), not per loop trip —
    # unrolling changes the trip count but not how often a spilled value
    # is touched.  Uncapped or trip-scaled, spills would absurdly dominate.
    live_spilled = min(float(over), 6.0)
    work_units = profile.flops_per_thread * 0.1
    accesses = profile.threads * live_spilled * work_units * 2.0
    bw = (
        device.global_bandwidth_gbs
        * 1e9
        * device.cache_bandwidth_factor
    )
    return accesses * ACCESS_BYTES / bw


def memory_time(profile: WorkloadProfile, device: DeviceSpec) -> MemoryCost:
    """Full memory-time breakdown for one launch."""
    return MemoryCost(
        global_time=global_memory_time(profile, device),
        image_time=image_memory_time(profile, device),
        local_time=local_memory_time(profile, device),
        constant_time=constant_memory_time(profile, device),
        spill_time=spill_memory_time(profile, device),
    )


# ---------------------------------------------------------------------------
# Batch (vectorized) versions.  Each mirrors its scalar counterpart operation
# for operation — same literals, same association order — so the results are
# bit-identical to running the scalar function per configuration.
# log2 goes through ``math.log2`` on the (few) unique inputs rather than
# ``np.log2``, whose last bit can differ from the C library's.
# ---------------------------------------------------------------------------


def _math_log2_unique(values: np.ndarray) -> np.ndarray:
    """``math.log2`` applied elementwise via a unique-value table."""
    uniq, inverse = np.unique(values, return_inverse=True)
    table = np.fromiter(
        (math.log2(float(u)) for u in uniq), np.float64, uniq.shape[0]
    )
    return table[inverse]


def cache_hit_fraction_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`cache_hit_fraction`."""
    loc = batch.spatial_locality
    no_fp = np.minimum(0.97, loc)
    cache_bytes = device.cache_kb * 1024.0
    fit = np.minimum(1.0, cache_bytes / np.where(batch.footprint_bytes > 0,
                                                 batch.footprint_bytes, 1.0))
    resident = 0.95 * fit
    streaming = 0.8 * loc * (1.0 - fit)
    with_fp = np.minimum(0.97, resident + streaming)
    return np.where(batch.footprint_bytes <= 0, no_fp, with_fp)


def cpu_l2_overflow_factor_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`cpu_l2_overflow_factor`."""
    ones = np.ones(len(batch))
    if not device.is_cpu:
        return ones
    fp = batch.wg_footprint_bytes
    over_mask = fp > CPU_L2_BYTES
    if not over_mask.any():
        return ones
    overflow = _math_log2_unique(fp[over_mask] / CPU_L2_BYTES)
    ones[over_mask] = 1.0 + CPU_L2_OVERFLOW_PENALTY * overflow
    return ones


def global_memory_time_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`global_memory_time`."""
    accesses = batch.threads * (batch.global_reads + batch.global_writes)
    bytes_moved = accesses * ACCESS_BYTES
    coal = batch.coalesced_fraction
    waste = UNCOALESCED_EFFICIENCY if device.is_gpu else 0.45
    efficiency = coal + (1.0 - coal) * waste
    hit = cache_hit_fraction_batch(batch, device)
    dram_bw = device.global_bandwidth_gbs * 1e9 * efficiency
    cache_bw = dram_bw * device.cache_bandwidth_factor
    t = bytes_moved * ((1.0 - hit) / dram_bw + hit / cache_bw)
    t = t * cpu_l2_overflow_factor_batch(batch, device)
    return np.where(accesses <= 0, 0.0, t)


def image_memory_time_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`image_memory_time`."""
    fetches = batch.threads * batch.image_reads
    rate = device.texture_rate_gtexels * 1e9
    if device.image_is_emulated:
        effective = rate * (1.0 + 0.3 * batch.spatial_locality)
        t = fetches / effective
    else:
        hit = 0.5 + 0.45 * batch.spatial_locality
        t = fetches * ((1.0 - hit) / rate + hit / (rate * device.texture_cache_factor))
    return np.where(fetches <= 0, 0.0, t)


def local_memory_time_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`local_memory_time`."""
    accesses = batch.threads * (batch.local_reads + batch.local_writes)
    bytes_moved = accesses * ACCESS_BYTES
    bw = device.global_bandwidth_gbs * 1e9 * device.local_bandwidth_factor
    t = bytes_moved / bw * cpu_l2_overflow_factor_batch(batch, device)
    return np.where(accesses <= 0, 0.0, t)


def constant_memory_time_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`constant_memory_time`."""
    accesses = batch.threads * batch.constant_reads
    bytes_moved = accesses * ACCESS_BYTES
    bw = device.global_bandwidth_gbs * 1e9 * device.constant_bandwidth_factor
    return np.where(accesses <= 0, 0.0, bytes_moved / bw)


def spill_memory_time_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`spill_memory_time`."""
    over = batch.registers_per_thread - device.max_registers_per_thread
    live_spilled = np.minimum(over.astype(np.float64), 6.0)
    work_units = batch.flops_per_thread * 0.1
    accesses = batch.threads * live_spilled * work_units * 2.0
    bw = device.global_bandwidth_gbs * 1e9 * device.cache_bandwidth_factor
    return np.where(over <= 0, 0.0, accesses * ACCESS_BYTES / bw)


def memory_time_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`memory_time`, returning the summed ``total``
    column (the executor only consumes the total)."""
    return (
        global_memory_time_batch(batch, device)
        + image_memory_time_batch(batch, device)
        + local_memory_time_batch(batch, device)
        + constant_memory_time_batch(batch, device)
        + spill_memory_time_batch(batch, device)
    )
