"""Catalog of the paper's devices.

Published architecture numbers (compute units, clocks, bandwidths, local
memory, work-group limits) are used directly; behavioural factors (texture
rates, overheads, jitter/noise magnitudes) are calibrated so the simulator
reproduces the paper's *shape* claims — see DESIGN.md §6.
"""

from __future__ import annotations

from repro.simulator.device import CPU, GPU, DeviceSpec


#: Intel i7 3770 (Ivy Bridge, 4C/8T, AVX): the paper's CPU.  The Intel OpenCL
#: CPU runtime exposes 8 logical cores as compute units, a huge max work-group
#: size, and emulates images and local memory in cached main memory — which is
#: why image-without-local configurations crater (the Fig. 8 cluster) and why
#: far fewer configurations are invalid on the CPU.
INTEL_I7_3770 = DeviceSpec(
    name="Intel i7 3770",
    vendor="Intel",
    device_type=CPU,
    compute_units=8,
    simd_width=8,               # AVX, 8 x float32
    clock_ghz=3.4,
    flops_per_lane_per_cycle=0.55,
    global_bandwidth_gbs=25.6,  # 2-channel DDR3-1600
    global_latency_us=0.06,
    cache_kb=8192.0,            # shared L3
    cache_bandwidth_factor=6.0,
    local_mem_per_cu_kb=256.0,  # generous: emulated in main memory
    local_bandwidth_factor=2.5, # just cached memory + copy overhead
    local_is_emulated=True,
    texture_rate_gtexels=0.9,
    texture_cache_factor=1.5,   # software-emulated image path
    image_is_emulated=True,
    constant_bandwidth_factor=5.0,
    max_workgroup_size=8192,
    max_threads_per_cu=8192,
    max_workgroups_per_cu=64,
    registers_per_cu=1 << 30,   # effectively unbounded: spills go to L1
    max_registers_per_thread=1 << 30,
    wg_launch_overhead_us=1.2,  # thread-pool task dispatch
    kernel_launch_overhead_us=25.0,
    driver_unroll_reliability=0.9,
    compile_time_base_s=0.35,
    compile_time_per_unroll_s=0.02,
    timing_noise_sigma=0.012,   # long-running kernels time reliably (§7)
    jitter_sigma=0.035,
    jitter_idio_sigma=0.02,
)

#: Nvidia K40 (Kepler GK110b): 15 SMX, 288 GB/s GDDR5, 48 KB shared/SM.
NVIDIA_K40 = DeviceSpec(
    name="Nvidia K40",
    vendor="Nvidia",
    device_type=GPU,
    compute_units=15,
    simd_width=32,              # warp
    clock_ghz=0.745,
    flops_per_lane_per_cycle=4.2,   # 192 cores/SMX over a 32-wide warp model
    global_bandwidth_gbs=288.0,
    global_latency_us=0.45,
    cache_kb=1536.0,            # L2
    cache_bandwidth_factor=3.2,
    local_mem_per_cu_kb=48.0,
    local_bandwidth_factor=5.0,
    local_is_emulated=False,
    texture_rate_gtexels=180.0,
    texture_cache_factor=6.0,
    image_is_emulated=False,
    constant_bandwidth_factor=9.0,
    max_workgroup_size=1024,
    max_threads_per_cu=2048,
    max_workgroups_per_cu=16,
    registers_per_cu=65536,
    max_registers_per_thread=255,
    wg_launch_overhead_us=0.25,
    kernel_launch_overhead_us=8.0,
    driver_unroll_reliability=0.75,
    compile_time_base_s=0.55,
    compile_time_per_unroll_s=0.05,
    timing_noise_sigma=0.03,
    jitter_sigma=0.11,
    jitter_idio_sigma=0.05,
)

#: AMD Radeon HD 7970 (GCN Tahiti): 32 CUs, 264 GB/s, 64 KB LDS/CU,
#: wavefront 64, max work-group 256.  The AMD OpenCL driver's pragma-based
#: loop unrolling is the least reliable of the three (§7), which hurts the
#: benchmarks that rely on it (convolution, stereo) but not raycasting
#: (manual macro unrolling).
AMD_HD7970 = DeviceSpec(
    name="AMD HD 7970",
    vendor="AMD",
    device_type=GPU,
    compute_units=32,
    simd_width=64,              # wavefront
    clock_ghz=0.925,
    flops_per_lane_per_cycle=1.0,
    global_bandwidth_gbs=264.0,
    global_latency_us=0.5,
    cache_kb=768.0,             # L2
    cache_bandwidth_factor=2.6,
    local_mem_per_cu_kb=64.0,
    local_bandwidth_factor=7.0,
    local_is_emulated=False,
    texture_rate_gtexels=80.0,
    texture_cache_factor=2.5,
    image_is_emulated=False,
    constant_bandwidth_factor=8.0,
    max_workgroup_size=256,
    max_threads_per_cu=2560,    # 40 wavefronts x 64
    max_workgroups_per_cu=40,   # GCN: full occupancy from wavefront-sized groups
    registers_per_cu=65536,
    max_registers_per_thread=256,
    wg_launch_overhead_us=0.3,
    kernel_launch_overhead_us=10.0,
    driver_unroll_reliability=0.35,
    compile_time_base_s=0.7,
    compile_time_per_unroll_s=0.06,
    timing_noise_sigma=0.035,
    jitter_sigma=0.12,
    jitter_idio_sigma=0.05,
)

#: Nvidia C2070 (Fermi GF100): 14 SM x 32 cores, 144 GB/s, 48 KB shared/SM.
NVIDIA_C2070 = DeviceSpec(
    name="Nvidia C2070",
    vendor="Nvidia",
    device_type=GPU,
    compute_units=14,
    simd_width=32,
    clock_ghz=1.15,
    flops_per_lane_per_cycle=1.0,
    global_bandwidth_gbs=144.0,
    global_latency_us=0.55,
    cache_kb=768.0,
    cache_bandwidth_factor=2.8,
    local_mem_per_cu_kb=48.0,
    local_bandwidth_factor=7.0,
    local_is_emulated=False,
    texture_rate_gtexels=49.0,
    texture_cache_factor=4.0,
    image_is_emulated=False,
    constant_bandwidth_factor=8.0,
    max_workgroup_size=1024,
    max_threads_per_cu=1536,
    max_workgroups_per_cu=8,
    registers_per_cu=32768,
    max_registers_per_thread=63,
    wg_launch_overhead_us=0.3,
    kernel_launch_overhead_us=9.0,
    driver_unroll_reliability=0.75,
    compile_time_base_s=0.5,
    compile_time_per_unroll_s=0.05,
    timing_noise_sigma=0.03,
    jitter_sigma=0.115,
    jitter_idio_sigma=0.05,
)

#: Nvidia GTX980 (Maxwell GM204): 16 SMM x 128 cores, 224 GB/s, 96 KB
#: shared/SM.  The paper finds slightly worse model accuracy here (Fig. 7),
#: consistent with a newer architecture whose scheduling heuristics the
#: tuning parameters explain a little less well — modelled as higher jitter.
NVIDIA_GTX980 = DeviceSpec(
    name="Nvidia GTX980",
    vendor="Nvidia",
    device_type=GPU,
    compute_units=16,
    simd_width=32,
    clock_ghz=1.126,
    flops_per_lane_per_cycle=3.0,
    global_bandwidth_gbs=224.0,
    global_latency_us=0.38,
    cache_kb=2048.0,
    cache_bandwidth_factor=3.4,
    local_mem_per_cu_kb=96.0,
    local_bandwidth_factor=8.5,
    local_is_emulated=False,
    texture_rate_gtexels=144.0,
    texture_cache_factor=6.5,
    image_is_emulated=False,
    constant_bandwidth_factor=9.0,
    max_workgroup_size=1024,
    max_threads_per_cu=2048,
    max_workgroups_per_cu=32,
    registers_per_cu=65536,
    max_registers_per_thread=255,
    wg_launch_overhead_us=0.2,
    kernel_launch_overhead_us=7.0,
    driver_unroll_reliability=0.8,
    compile_time_base_s=0.5,
    compile_time_per_unroll_s=0.04,
    timing_noise_sigma=0.03,
    jitter_sigma=0.15,
    jitter_idio_sigma=0.06,
)

#: All devices by a short key (used by CLIs and the experiment harness).
DEVICES = {
    "intel": INTEL_I7_3770,
    "nvidia": NVIDIA_K40,
    "amd": AMD_HD7970,
    "c2070": NVIDIA_C2070,
    "gtx980": NVIDIA_GTX980,
}

#: The three devices of the main evaluation (Figs. 4-6, 8-14).
MAIN_DEVICES = ("intel", "nvidia", "amd")


def get_device(key: str) -> DeviceSpec:
    """Look a device up by short key or full name (case-insensitive)."""
    k = key.strip().lower()
    if k in DEVICES:
        return DEVICES[k]
    for dev in DEVICES.values():
        if dev.name.lower() == k:
            return dev
    raise KeyError(f"unknown device {key!r}; known: {sorted(DEVICES)}")
