"""Invalid-configuration rules.

Some points of the tuning space cannot run at all (§5.2 of the paper):
the work-group exceeds the device limit, the local-memory tile does not fit,
or the register file cannot hold even one work-group.  The paper
distinguishes failures detectable *statically* (before compiling, when the
device is known) from those found only by *attempting to compile and run* —
our runtime mirrors that split: ``build``-stage failures raise
:class:`~repro.runtime.errors.BuildError`, ``launch``-stage failures raise
:class:`~repro.runtime.errors.LaunchError`, and both cost wall-clock time in
the tuner's budget accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulator.device import DeviceSpec
from repro.simulator.occupancy import compute_occupancy, compute_occupancy_batch
from repro.simulator.workload import WorkloadBatch, WorkloadProfile

#: Stage at which a failure surfaces.
STAGE_BUILD = "build"
STAGE_LAUNCH = "launch"

#: Integer stage codes used by :func:`validate_batch`.
STAGE_OK_CODE = 0
STAGE_BUILD_CODE = 1
STAGE_LAUNCH_CODE = 2


class InvalidConfig(Exception):
    """A configuration that cannot execute on the target device."""

    def __init__(self, stage: str, reason: str):
        super().__init__(f"[{stage}] {reason}")
        self.stage = stage
        self.reason = reason


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of checking one profile against one device."""

    valid: bool
    stage: str = ""
    reason: str = ""

    def __bool__(self) -> bool:
        return self.valid

    def raise_if_invalid(self) -> None:
        if not self.valid:
            raise InvalidConfig(self.stage, self.reason)


VALID = ValidationResult(True)


def validate(profile: WorkloadProfile, device: DeviceSpec) -> ValidationResult:
    """Check whether a launch can execute on ``device``.

    Build-stage failures (knowable from the kernel source + device caps):

    * work-group larger than ``max_workgroup_size``;
    * static local-memory allocation larger than the per-CU scratchpad.

    Launch-stage failures (depend on compiler register allocation):

    * not even one work-group's registers fit in the register file.
    """
    wg_threads = profile.workgroup_threads
    if wg_threads > device.max_workgroup_size:
        return ValidationResult(
            False,
            STAGE_BUILD,
            f"work-group {profile.workgroup[0]}x{profile.workgroup[1]} = "
            f"{wg_threads} exceeds device limit {device.max_workgroup_size}",
        )
    if profile.local_mem_per_wg_bytes > device.local_mem_per_cu_bytes:
        return ValidationResult(
            False,
            STAGE_BUILD,
            f"local memory {profile.local_mem_per_wg_bytes} B/work-group "
            f"exceeds device limit {device.local_mem_per_cu_bytes} B",
        )
    occ = compute_occupancy(profile, device)
    if occ.workgroups_per_cu < 1:
        return ValidationResult(
            False,
            STAGE_LAUNCH,
            f"register demand ({profile.registers_per_thread}/thread x "
            f"{wg_threads} threads) exceeds register file "
            f"({device.registers_per_cu}/CU); limiter={occ.limiter}",
        )
    return VALID


def validate_batch(batch: WorkloadBatch, device: DeviceSpec) -> np.ndarray:
    """Vectorized :func:`validate`: per-config integer stage codes.

    Returns an ``int8`` array with :data:`STAGE_OK_CODE` (0) for runnable
    configurations, :data:`STAGE_BUILD_CODE` (1) for build-stage failures
    (work-group or local-memory over device limits) and
    :data:`STAGE_LAUNCH_CODE` (2) for launch-stage failures (zero resident
    work-groups).  Build failures take precedence, mirroring the scalar
    check order.
    """
    wg_threads = batch.workgroup_threads
    build_bad = (wg_threads > device.max_workgroup_size) | (
        batch.local_mem_per_wg_bytes > device.local_mem_per_cu_bytes
    )
    occ = compute_occupancy_batch(batch, device)
    launch_bad = occ.workgroups_per_cu < 1
    return np.where(
        build_bad, STAGE_BUILD_CODE, np.where(launch_bad, STAGE_LAUNCH_CODE, STAGE_OK_CODE)
    ).astype(np.int8)
