"""Structural OpenCL device performance simulator.

This package stands in for the paper's physical testbed (Intel i7 3770,
Nvidia K40, AMD Radeon HD 7970, plus Nvidia C2070/GTX980).  The auto-tuner
only ever observes a black-box mapping ``configuration -> (time | invalid)``;
what the reproduction needs from that mapping is its *structure*, not its
absolute values:

* optima that differ across devices (so re-tuning matters, Fig. 1);
* multiplicative interactions between parameters (so one-at-a-time search
  fails and a learned model is needed);
* invalid subspaces from resource limits (work-group size, local memory,
  registers), with fewer invalid configurations on the CPU;
* CPU/GPU asymmetries: emulated image memory on the CPU, lock-step SIMD and
  occupancy-driven latency hiding on GPUs, unreliable driver loop unrolling
  on AMD;
* heteroscedastic measurement noise, smaller on the CPU.

The model is a roofline-with-occupancy executor (:mod:`.executor`) fed by a
per-kernel workload characterization (:class:`.workload.WorkloadProfile`):
compute time and memory time are computed per wave of work-groups, overlapped
according to achieved occupancy, plus launch/scheduling overheads.  A
deterministic per-configuration "micro-architectural jitter" term (a stable
hash, :mod:`.hashing`) makes the target function hard-but-learnable, giving
the ANN a realistic error floor.
"""

#: Version stamp of the timing model.  Bump whenever a change to the
#: simulator alters the ``configuration -> (time | invalid)`` mapping for
#: any device: persisted ground-truth tables (the experiments' oracle
#: store) are keyed on it and recomputed on mismatch instead of serving
#: stale times.
SIMULATOR_VERSION = 1

from repro.simulator.device import DeviceSpec
from repro.simulator.devices import (
    AMD_HD7970,
    DEVICES,
    INTEL_I7_3770,
    NVIDIA_C2070,
    NVIDIA_GTX980,
    NVIDIA_K40,
    get_device,
)
from repro.simulator.drift import (
    DRIFT_PROFILES,
    DriftModel,
    DriftProfile,
    get_drift_profile,
    make_drift,
)
from repro.simulator.faults import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    get_fault_profile,
)
from repro.simulator.executor import (
    BatchExecution,
    KernelExecutor,
    execute_batch,
    simulate_kernel_time,
)
from repro.simulator.noise import MeasurementModel
from repro.simulator.validity import (
    InvalidConfig,
    ValidationResult,
    validate,
    validate_batch,
)
from repro.simulator.workload import WorkloadBatch, WorkloadProfile

__all__ = [
    "SIMULATOR_VERSION",
    "FaultProfile",
    "FaultInjector",
    "FAULT_PROFILES",
    "get_fault_profile",
    "DriftProfile",
    "DriftModel",
    "DRIFT_PROFILES",
    "get_drift_profile",
    "make_drift",
    "DeviceSpec",
    "DEVICES",
    "INTEL_I7_3770",
    "NVIDIA_K40",
    "AMD_HD7970",
    "NVIDIA_C2070",
    "NVIDIA_GTX980",
    "get_device",
    "KernelExecutor",
    "simulate_kernel_time",
    "execute_batch",
    "BatchExecution",
    "MeasurementModel",
    "InvalidConfig",
    "ValidationResult",
    "validate",
    "validate_batch",
    "WorkloadProfile",
    "WorkloadBatch",
]
