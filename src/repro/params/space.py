"""Parameter spaces: the cartesian product of a benchmark's parameters.

The space is addressed through a mixed-radix bijection: the flat index of a
configuration is its digit vector (one digit per parameter, most significant
first) interpreted in the mixed radix given by the parameter cardinalities.
This keeps the 131K/655K/2.36M-point spaces of the paper addressable in O(1)
memory — crucial because stage one of the auto-tuner samples the space at
random and the prediction stage sweeps all of it in batches.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence

import numpy as np

from repro.params.parameter import Parameter


class Configuration(Mapping):
    """One point of a :class:`ParameterSpace`: an immutable name→value map.

    Behaves as a read-only mapping and hashes on its items, so configurations
    can key measurement caches.  ``config.index`` is its flat index in the
    owning space.
    """

    __slots__ = ("_space", "_index", "_values")

    def __init__(self, space: "ParameterSpace", index: int, values: Dict[str, object]):
        self._space = space
        self._index = int(index)
        self._values = values

    @property
    def space(self) -> "ParameterSpace":
        return self._space

    @property
    def index(self) -> int:
        """Flat index of this configuration in its space."""
        return self._index

    def as_tuple(self) -> tuple:
        """Values in parameter order (the paper's ``(0,1,2,0)`` notation)."""
        return tuple(self._values[p.name] for p in self._space.parameters)

    def __getitem__(self, name: str):
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        return hash((id(self._space), self._index))

    def __eq__(self, other) -> bool:
        if isinstance(other, Configuration):
            return self._space is other._space and self._index == other._index
        if isinstance(other, Mapping):
            return dict(self._values) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self._values.items())
        return f"Configuration(#{self._index}: {inner})"


class ParameterSpace:
    """Cartesian product of :class:`Parameter` objects with O(1) indexing.

    Parameters are significant left-to-right: the first parameter is the most
    significant digit of the flat index.
    """

    def __init__(self, parameters: Sequence[Parameter]):
        parameters = tuple(parameters)
        if not parameters:
            raise ValueError("parameter space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names: {names}")
        self._parameters = parameters
        self._by_name = {p.name: p for p in parameters}
        # Mixed-radix place values, most significant first.
        radices = [p.cardinality for p in parameters]
        place = 1
        places: List[int] = [0] * len(radices)
        for i in range(len(radices) - 1, -1, -1):
            places[i] = place
            place *= radices[i]
        self._places = tuple(places)
        self._size = place

    # -- introspection ----------------------------------------------------

    @property
    def parameters(self) -> tuple:
        return self._parameters

    @property
    def names(self) -> tuple:
        return tuple(p.name for p in self._parameters)

    @property
    def places(self) -> tuple:
        """Mixed-radix place values, aligned with :attr:`parameters`.

        ``flat_index = sum(digit[j] * places[j])`` — the contract search
        subspaces (``core.strategies``) use to slice pinned parameters
        arithmetically instead of enumerating the space.
        """
        return self._places

    def parameter(self, name: str) -> Parameter:
        """Look a parameter up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no parameter {name!r}; have {list(self._by_name)}"
            ) from None

    def __len__(self) -> int:
        return self._size

    @property
    def size(self) -> int:
        """Number of configurations (product of cardinalities)."""
        return self._size

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        dims = " x ".join(str(p.cardinality) for p in self._parameters)
        return f"ParameterSpace({len(self._parameters)} params, {dims} = {self._size})"

    # -- index <-> configuration bijection ---------------------------------

    def digits_of(self, index: int) -> tuple:
        """Mixed-radix digit vector of a flat index."""
        index = int(index)
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        digits = []
        for p, place in zip(self._parameters, self._places):
            d, index = divmod(index, place)
            digits.append(d)
        return tuple(digits)

    def index_of_digits(self, digits: Sequence[int]) -> int:
        """Flat index of a mixed-radix digit vector."""
        if len(digits) != len(self._parameters):
            raise ValueError(
                f"expected {len(self._parameters)} digits, got {len(digits)}"
            )
        index = 0
        for d, p, place in zip(digits, self._parameters, self._places):
            d = int(d)
            if not 0 <= d < p.cardinality:
                raise ValueError(
                    f"digit {d} out of range for parameter {p.name!r} "
                    f"(cardinality {p.cardinality})"
                )
            index += d * place
        return index

    def __getitem__(self, index: int) -> Configuration:
        digits = self.digits_of(index)
        values = {
            p.name: p.values[d] for p, d in zip(self._parameters, digits)
        }
        return Configuration(self, index, values)

    def config(self, **values) -> Configuration:
        """Build a configuration from explicit parameter values.

        All parameters must be given; values must be legal.
        """
        missing = set(self.names) - set(values)
        extra = set(values) - set(self.names)
        if missing or extra:
            raise ValueError(
                f"bad parameter names: missing={sorted(missing)}, "
                f"unknown={sorted(extra)}"
            )
        digits = [self._by_name[n].index_of(values[n]) for n in self.names]
        index = self.index_of_digits(digits)
        ordered = {n: values[n] for n in self.names}
        return Configuration(self, index, ordered)

    def index_of(self, values: Mapping) -> int:
        """Flat index of a name→value mapping."""
        if isinstance(values, Configuration) and values.space is self:
            return values.index
        return self.config(**dict(values)).index

    # -- iteration & sampling ----------------------------------------------

    def __iter__(self) -> Iterator[Configuration]:
        for i in range(self._size):
            yield self[i]

    def iter_indices(self) -> Iterator[int]:
        return iter(range(self._size))

    def sample_indices(
        self, n: int, rng: np.random.Generator, replace: bool = False
    ) -> np.ndarray:
        """Sample ``n`` flat indices uniformly at random.

        Sampling is without replacement by default (the paper trains on a
        random *subset* of the space).  For spaces much larger than ``n`` a
        rejection loop avoids materializing ``arange(size)``.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        if not replace and n > self._size:
            raise ValueError(
                f"cannot sample {n} without replacement from {self._size}"
            )
        if replace:
            return rng.integers(0, self._size, size=n)
        if self._size <= 4 * n or self._size <= 1 << 16:
            return rng.permutation(self._size)[:n]
        # Batched rejection: draw the shortfall each round and keep first
        # occurrences in draw order (np.unique's return_index, re-sorted),
        # which is exactly the acceptance rule of a sequential rejection
        # loop — uniform without replacement — minus the per-element
        # Python set churn.  With size > 4n a round keeps >= 3/4 of its
        # draws in expectation, so a couple of rounds suffice.
        out = np.empty(0, dtype=np.int64)
        while out.shape[0] < n:
            draw = rng.integers(0, self._size, size=n - out.shape[0])
            merged = np.concatenate([out, draw])
            _, first = np.unique(merged, return_index=True)
            out = merged[np.sort(first)]
        return out[:n]

    def sample(
        self, n: int, rng: np.random.Generator, replace: bool = False
    ) -> List[Configuration]:
        """Sample ``n`` random configurations."""
        return [self[int(i)] for i in self.sample_indices(n, rng, replace=replace)]

    def indices_with(self, **fixed) -> np.ndarray:
        """Flat indices of every configuration matching the pinned values.

        The free parameters sweep their full ranges; pinned ones are held
        at the given values.  Computed arithmetically (no enumeration of
        the full space), so slicing the 2.36M-point stereo space by one
        switch is instant.

        >>> space.indices_with(use_local=1).size == space.size // 2
        """
        if not fixed:
            return np.arange(self._size, dtype=np.int64)
        unknown = set(fixed) - set(self.names)
        if unknown:
            raise ValueError(f"unknown parameters: {sorted(unknown)}")
        out = np.zeros(1, dtype=np.int64)
        for p, place in zip(self._parameters, self._places):
            if p.name in fixed:
                digits = np.array([p.index_of(fixed[p.name])], dtype=np.int64)
            else:
                digits = np.arange(p.cardinality, dtype=np.int64)
            out = (out[:, None] + digits[None, :] * place).ravel()
        return out

    # -- vectorized views ---------------------------------------------------

    def digits_matrix(self, indices: Sequence[int]) -> np.ndarray:
        """Digit vectors of many indices as an ``(n, n_params)`` int array.

        Vectorized mixed-radix decomposition; used by the bulk feature
        encoder when predicting the whole space.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self._size):
            raise IndexError("index out of range")
        out = np.empty((idx.shape[0], len(self._parameters)), dtype=np.int64)
        rem = idx.copy()
        for j, place in enumerate(self._places):
            out[:, j], rem = np.divmod(rem, place)
        return out

    def values_matrix(self, indices: Sequence[int]) -> np.ndarray:
        """Parameter *values* of many indices as an ``(n, n_params)`` array.

        Only valid when every parameter has numeric values (true for all
        benchmarks in the paper).
        """
        digits = self.digits_matrix(indices)
        out = np.empty(digits.shape, dtype=np.float64)
        for j, p in enumerate(self._parameters):
            lut = np.asarray(p.values, dtype=np.float64)
            out[:, j] = lut[digits[:, j]]
        return out

    def int_values_matrix(self, indices: Sequence[int]) -> np.ndarray:
        """Parameter values of many indices as ``(n, n_params)`` int64.

        Only valid when every parameter's values are plain Python ints
        (pow2 and boolean parameters — all benchmarks in the paper).
        """
        for p in self._parameters:
            if not all(type(v) is int for v in p.values):
                raise TypeError(
                    f"parameter {p.name!r} has non-int values; "
                    "use values_matrix or per-config access"
                )
        digits = self.digits_matrix(indices)
        out = np.empty(digits.shape, dtype=np.int64)
        for j, p in enumerate(self._parameters):
            lut = np.asarray(p.values, dtype=np.int64)
            out[:, j] = lut[digits[:, j]]
        return out

    def tuples_of(self, indices: Sequence[int]) -> List[tuple]:
        """Config value-tuples (``Configuration.as_tuple``) of many indices.

        Returns plain Python ints so ``repr`` (and therefore the stable
        jitter hashes keyed on the tuples) matches the scalar path exactly.
        """
        return [tuple(row) for row in self.int_values_matrix(indices).tolist()]
