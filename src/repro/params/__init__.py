"""Tuning-parameter abstractions.

A benchmark exposes a set of named tuning parameters (work-group shape,
memory-space switches, unroll factors, ...).  The cartesian product of their
value lists forms the *parameter space*; every point in that space is a
*configuration*, i.e. one candidate implementation of the kernel.

The paper's auto-tuner treats the space purely combinatorially: it needs to
enumerate it, index into it, sample random subsets of it, and know its size.
:class:`ParameterSpace` provides exactly that, with a mixed-radix bijection
between flat indices and configurations so that even the 2.36M-point stereo
space can be addressed without materializing it.
"""

from repro.params.parameter import (
    Parameter,
    boolean,
    choice,
    pow2,
)
from repro.params.space import Configuration, ParameterSpace

__all__ = [
    "Parameter",
    "boolean",
    "choice",
    "pow2",
    "Configuration",
    "ParameterSpace",
]
