"""A single tuning parameter: a name plus an ordered list of legal values.

The paper's parameters (Table 2) come in three flavours, and the flavour
matters to the ML feature encoding (see :mod:`repro.core.encoding`):

* power-of-two ranges such as work-group sizes ``1..128`` and unroll factors
  ``1..16`` — encoded as ``log2(value)`` so the network sees a linear axis;
* booleans such as "use local memory" — encoded as 0/1;
* general categorical choices — one-hot encoded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


#: Encoding kinds understood by :mod:`repro.core.encoding`.
KIND_POW2 = "pow2"
KIND_BOOL = "bool"
KIND_CHOICE = "choice"

_VALID_KINDS = (KIND_POW2, KIND_BOOL, KIND_CHOICE)


@dataclass(frozen=True)
class Parameter:
    """An ordered, finite set of values for one tuning knob.

    Parameters
    ----------
    name:
        Identifier used in configurations, e.g. ``"wg_x"``.
    values:
        The legal values, in a stable order.  Order defines the digit
        meaning in the space's mixed-radix index.
    kind:
        One of ``"pow2"``, ``"bool"`` or ``"choice"``; drives feature
        encoding and pretty-printing.
    description:
        Human-readable description (Table 2 wording).
    """

    name: str
    values: tuple
    kind: str = KIND_CHOICE
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("parameter name must be non-empty")
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if len(self.values) == 0:
            raise ValueError(f"parameter {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"parameter {self.name!r} has duplicate values")
        if self.kind not in _VALID_KINDS:
            raise ValueError(
                f"parameter {self.name!r}: unknown kind {self.kind!r}, "
                f"expected one of {_VALID_KINDS}"
            )
        if self.kind == KIND_POW2:
            for v in self.values:
                if not isinstance(v, int) or v < 1 or (v & (v - 1)) != 0:
                    raise ValueError(
                        f"parameter {self.name!r}: pow2 values must be "
                        f"positive powers of two, got {v!r}"
                    )
        if self.kind == KIND_BOOL:
            if tuple(self.values) not in ((0, 1), (1, 0), (False, True), (True, False)):
                raise ValueError(
                    f"parameter {self.name!r}: bool values must be 0/1, "
                    f"got {self.values!r}"
                )

    @property
    def cardinality(self) -> int:
        """Number of legal values."""
        return len(self.values)

    def index_of(self, value) -> int:
        """Digit (position in :attr:`values`) of ``value``.

        Raises
        ------
        ValueError
            If ``value`` is not a legal value of this parameter.
        """
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(
                f"{value!r} is not a legal value of parameter {self.name!r} "
                f"(legal: {self.values})"
            ) from None

    def __len__(self) -> int:
        return len(self.values)


def pow2(name: str, lo: int, hi: int, description: str = "") -> Parameter:
    """Power-of-two parameter covering ``lo, 2*lo, ..., hi`` inclusive.

    >>> pow2("wg_x", 1, 128).values
    (1, 2, 4, 8, 16, 32, 64, 128)
    """
    if lo < 1 or (lo & (lo - 1)) != 0 or (hi & (hi - 1)) != 0 or hi < lo:
        raise ValueError(f"bad pow2 range [{lo}, {hi}]")
    values = []
    v = lo
    while v <= hi:
        values.append(v)
        v *= 2
    return Parameter(name, tuple(values), kind=KIND_POW2, description=description)


def boolean(name: str, description: str = "") -> Parameter:
    """On/off optimization switch, values ``(0, 1)``."""
    return Parameter(name, (0, 1), kind=KIND_BOOL, description=description)


def choice(name: str, values: Sequence, description: str = "") -> Parameter:
    """General categorical parameter with explicit values."""
    return Parameter(name, tuple(values), kind=KIND_CHOICE, description=description)
