"""Runtime error types, mirroring the two OpenCL failure surfaces.

``clBuildProgram`` failing (resource limits knowable from source + device
caps) maps to :class:`BuildError`; ``clEnqueueNDRangeKernel`` failing
(register allocation discovered by the compiler/driver) maps to
:class:`LaunchError`.  The auto-tuner treats both as "invalid configuration"
(§5.2: *"we deal with this issue by simply ignoring these configurations"*)
but they cost different amounts of wall-clock time in the tuning budget.
"""

from __future__ import annotations


class RuntimeAPIError(Exception):
    """Base class for simulated OpenCL runtime errors."""


class BuildError(RuntimeAPIError):
    """Kernel compilation failed (static resource violation)."""

    def __init__(self, reason: str):
        super().__init__(f"CL_BUILD_PROGRAM_FAILURE: {reason}")
        self.reason = reason


class LaunchError(RuntimeAPIError):
    """Kernel enqueue failed (dynamic resource violation)."""

    def __init__(self, reason: str):
        super().__init__(f"CL_OUT_OF_RESOURCES: {reason}")
        self.reason = reason
