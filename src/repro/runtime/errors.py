"""Runtime error types, mirroring the OpenCL failure surfaces.

Deterministic failures — properties of the *configuration*:

* ``clBuildProgram`` failing (resource limits knowable from source + device
  caps) maps to :class:`BuildError`;
* ``clEnqueueNDRangeKernel`` failing (register allocation discovered by the
  compiler/driver) maps to :class:`LaunchError`.

The auto-tuner treats both as "invalid configuration" (§5.2: *"we deal with
this issue by simply ignoring these configurations"*) but they cost
different amounts of wall-clock time in the tuning budget.

Transient failures — properties of the *run*, injected by a
:class:`~repro.simulator.faults.FaultInjector`:

* :class:`TransientError` — the driver hiccuped (spurious build or launch
  failure); the same configuration may well succeed on retry.
* :class:`DeviceResetError` — the device was lost and reset; compiled
  binaries are gone, so callers must also drop their compile caches.
* :class:`TimeoutError` — the kernel hung and a watchdog killed it; the
  wall-clock burned waiting is charged to the ledger.

The measurement pipeline (:class:`~repro.core.measure.Measurer`) retries
transient failures with backoff and quarantines configurations that keep
failing; deterministic failures are never retried.
"""

from __future__ import annotations


class RuntimeAPIError(Exception):
    """Base class for simulated OpenCL runtime errors."""


class BuildError(RuntimeAPIError):
    """Kernel compilation failed (static resource violation)."""

    def __init__(self, reason: str):
        super().__init__(f"CL_BUILD_PROGRAM_FAILURE: {reason}")
        self.reason = reason


class LaunchError(RuntimeAPIError):
    """Kernel enqueue failed (dynamic resource violation)."""

    def __init__(self, reason: str):
        super().__init__(f"CL_OUT_OF_RESOURCES: {reason}")
        self.reason = reason


class TransientError(RuntimeAPIError):
    """A run-specific driver failure; retrying the same configuration may
    succeed.  ``stage`` records the surface that failed ('build' or
    'launch')."""

    def __init__(self, reason: str, stage: str = "launch"):
        super().__init__(f"CL_TRANSIENT_FAILURE({stage}): {reason}")
        self.reason = reason
        self.stage = stage


class DeviceResetError(TransientError):
    """The device was lost and reset mid-operation.

    Compiled program binaries do not survive a reset, so a caller holding a
    compile cache must invalidate it before retrying.
    """

    def __init__(self, reason: str = "device lost and reset"):
        super().__init__(reason, stage="reset")


class TimeoutError(RuntimeAPIError):  # noqa: A001 - deliberate, scoped name
    """A kernel hung and the watchdog killed it after ``waited_s`` seconds
    of (simulated) wall clock.  Distinct from :class:`TransientError` so
    retry policies can budget hang time separately."""

    def __init__(self, reason: str, waited_s: float):
        super().__init__(f"CL_WATCHDOG_TIMEOUT: {reason} (after {waited_s:.3f}s)")
        self.reason = reason
        self.waited_s = waited_s
