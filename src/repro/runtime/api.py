"""OpenCL-flavoured host API over the performance simulator.

This is the layer a pyopencl-based tuner would talk to, with the same
life-cycle and the same failure modes:

    platform = Platform()
    device = platform.devices()[0]           # or Device(NVIDIA_K40)
    ctx = Context(device, seed=42)
    program = Program(ctx, kernel_spec, config)
    kernel = program.build()                  # may raise BuildError
    event = kernel.enqueue()                  # may raise LaunchError
    event.wait()
    print(event.duration_s)                   # noisy profiled time

Every build and run — including the *failed* ones for invalid
configurations — is charged to the context's :class:`CostLedger`, which is
how the §6 cost accounting ("gathering the data takes about 30 minutes")
is reproduced.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

import numpy as np

from repro.kernels.base import KernelSpec
from repro.obs import NULL_TRACER
from repro.runtime.errors import (
    BuildError,
    DeviceResetError,
    LaunchError,
    TimeoutError,
    TransientError,
)
from repro.simulator.device import DeviceSpec
from repro.simulator.drift import make_drift
from repro.simulator.faults import HANG, RESET, TRANSIENT, make_injector
from repro.simulator.devices import DEVICES
from repro.simulator.executor import ExecutionBreakdown, execute
from repro.simulator.noise import (
    FAILED_BUILD_COST_S,
    FAILED_LAUNCH_COST_S,
    CostLedger,
    MeasurementModel,
    compile_time,
)
from repro.simulator.validity import STAGE_BUILD, validate
from repro.simulator.workload import WorkloadProfile


class Device:
    """A device handle wrapping an architecture spec."""

    def __init__(self, spec: DeviceSpec):
        self.spec = spec

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:
        return f"Device({self.spec.name!r})"


class Platform:
    """The simulated platform: exposes the paper's device catalog."""

    name = "repro OpenCL performance-model platform"
    vendor = "repro"

    def devices(self) -> List[Device]:
        return [Device(spec) for spec in DEVICES.values()]

    def device(self, key: str) -> Device:
        from repro.simulator.devices import get_device

        return Device(get_device(key))


class Context:
    """Execution context: one device, a seeded noise source, a cost ledger,
    an (optional) tracer the pipeline components report into, and an
    (optional) fault injector modelling a flaky rig.

    ``faults`` accepts a :class:`~repro.simulator.faults.FaultProfile`, a
    ready :class:`~repro.simulator.faults.FaultInjector`, a named profile
    string (``"flaky-gpu"``), or None.  Fault decisions are drawn from
    their own keyed hash stream — never from this context's RNG — so a
    fault-free run is bit-identical with or without the argument.

    ``drift`` accepts a :class:`~repro.simulator.drift.DriftProfile`, a
    ready :class:`~repro.simulator.drift.DriftModel`, a named schedule
    string (``"thermal-throttle"``), or None.  Drift factors multiply
    true times at the launch surface and are likewise drawn from a keyed
    hash — a drift-free run (``None`` or ``"none"``) is bit-identical
    with or without the argument.
    """

    def __init__(
        self,
        device: Device | DeviceSpec,
        seed: Optional[int] = None,
        tracer=None,
        faults=None,
        drift=None,
    ):
        if isinstance(device, DeviceSpec):
            device = Device(device)
        self.device = device
        self.rng = np.random.default_rng(seed)
        self.measurement = MeasurementModel(device.spec, self.rng)
        self.ledger = CostLedger()
        self.faults = make_injector(faults)
        self.drift = make_drift(drift)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.ledger is None:
            # Spans record this context's cost deltas; an explicitly
            # pre-bound ledger (multi-context tracing) is left alone.
            self.tracer.bind_ledger(self.ledger)

    def __repr__(self) -> str:
        return f"Context({self.device.name!r})"


class Event:
    """Completed-launch handle carrying profiling information."""

    def __init__(self, duration_s: float, breakdown: ExecutionBreakdown):
        self._duration_s = duration_s
        self.breakdown = breakdown

    def wait(self) -> "Event":
        """No-op (launches complete synchronously in the simulator); kept
        for call-site parity with real event objects."""
        return self

    @property
    def duration_s(self) -> float:
        """Measured (noisy) kernel duration in seconds."""
        return self._duration_s

    @property
    def duration_ms(self) -> float:
        return self._duration_s * 1e3

    @property
    def true_duration_s(self) -> float:
        """The simulator's noise-free time (not observable on real
        hardware; exposed for evaluation code)."""
        return self.breakdown.total_time


class Kernel:
    """A built kernel, ready to enqueue."""

    def __init__(
        self,
        context: Context,
        spec: KernelSpec,
        config: Mapping,
        profile: WorkloadProfile,
    ):
        self.context = context
        self.spec = spec
        self.config = config
        self.profile = profile

    def _fault_key(self) -> tuple:
        return (self.spec.name, self.spec.config_tuple(self.config))

    def enqueue(self, timeout_s: Optional[float] = None) -> Event:
        """Launch once and return the profiled event.

        Parameters
        ----------
        timeout_s:
            Watchdog budget for this launch.  Only consulted when a fault
            injector hangs the kernel: the hang burns
            ``min(timeout_s, hang_duration_s)`` simulated seconds before
            :class:`TimeoutError` is raised.  None means the driver's own
            watchdog (the profile's full hang duration) applies.

        Raises
        ------
        LaunchError
            For dynamically invalid configurations (register pressure);
            the failure's wall-clock cost is charged to the ledger.
        TransientError / DeviceResetError / TimeoutError
            Injected run-specific failures (only with a fault profile
            attached); each charges its wall-clock cost to the ledger
            *before* any measurement-noise draw, so the noise stream is
            untouched by faults.
        """
        ctx = self.context
        device = ctx.device.spec
        check = validate(self.profile, device)
        if not check.valid:
            # Build-stage problems never reach here (Program.build raised),
            # so any failure at this point is a launch failure.
            ctx.ledger.failed_s += FAILED_LAUNCH_COST_S
            raise LaunchError(check.reason)
        if ctx.faults is not None:
            decision = ctx.faults.at_launch(self._fault_key())
            if decision == RESET:
                ctx.ledger.failed_s += ctx.faults.profile.reset_cost_s
                raise DeviceResetError()
            if decision == HANG:
                waited = ctx.faults.profile.hang_duration_s
                if timeout_s is not None:
                    waited = min(waited, timeout_s)
                ctx.ledger.failed_s += waited
                raise TimeoutError("kernel hung", waited)
            if decision == TRANSIENT:
                ctx.ledger.failed_s += FAILED_LAUNCH_COST_S
                raise TransientError("spurious launch failure", stage="launch")
        breakdown = execute(
            self.profile,
            device,
            jitter_key=(self.spec.name, self.spec.config_tuple(self.config)),
        )
        true_s = breakdown.total_time
        if ctx.drift is not None:
            # The machine as it is *right now*: the drift factor scales the
            # launch's true time at the current drift-clock instant.  The
            # event's breakdown keeps the undrifted base (evaluation code
            # needs the stable ground truth; drift is a property of when
            # you measured, not of the configuration).
            true_s *= ctx.drift.factor(
                ctx.drift.time_of(ctx.ledger),
                self.spec.name,
                self.spec.config_tuple(self.config),
            )
        measured = ctx.measurement.observe(true_s)
        ctx.ledger.run_s += measured
        return Event(measured, breakdown)

    def enqueue_many(self, repeats: int) -> List[Event]:
        """Launch ``repeats`` times (independent noise draws)."""
        return [self.enqueue() for _ in range(repeats)]


class Program:
    """One kernel variant: a (benchmark, configuration) pair to compile."""

    def __init__(self, context: Context, spec: KernelSpec, config: Mapping):
        self.context = context
        self.spec = spec
        self.config = config
        self._kernel: Optional[Kernel] = None

    def build(self) -> Kernel:
        """Compile the variant; returns the kernel or raises BuildError.

        Compile time (base + growth with unroll factor) is charged to the
        ledger, as is the error path for statically invalid configurations.
        """
        ctx = self.context
        device = ctx.device.spec
        profile = self.spec.workload(self.config, device)
        check = validate(profile, device)
        if not check.valid and check.stage == STAGE_BUILD:
            ctx.ledger.failed_s += FAILED_BUILD_COST_S
            raise BuildError(check.reason)
        if ctx.faults is not None:
            key = (self.spec.name, self.spec.config_tuple(self.config))
            if ctx.faults.at_build(key) == TRANSIENT:
                # A deterministic failure takes precedence (checked above);
                # this one is the driver hiccuping on a valid variant.
                ctx.ledger.failed_s += FAILED_BUILD_COST_S
                raise TransientError("spurious build failure", stage="build")
        ctx.ledger.compile_s += compile_time(device, self.spec.unroll_of(self.config))
        self._kernel = Kernel(ctx, self.spec, self.config, profile)
        return self._kernel

    @property
    def kernel(self) -> Kernel:
        if self._kernel is None:
            raise RuntimeError("program not built; call build() first")
        return self._kernel
