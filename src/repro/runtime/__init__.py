"""OpenCL-flavoured runtime facade over the performance simulator.

Stands in for pyopencl: same object life-cycle (platform → device → context
→ program → kernel → event), same failure surfaces (build vs. launch), and
wall-clock cost accounting for the tuning-budget analysis of §6.
"""

from repro.runtime.api import Context, Device, Event, Kernel, Platform, Program
from repro.runtime.errors import (
    BuildError,
    DeviceResetError,
    LaunchError,
    RuntimeAPIError,
    TimeoutError,
    TransientError,
)

__all__ = [
    "Platform",
    "Device",
    "Context",
    "Program",
    "Kernel",
    "Event",
    "BuildError",
    "LaunchError",
    "TransientError",
    "DeviceResetError",
    "TimeoutError",
    "RuntimeAPIError",
]
