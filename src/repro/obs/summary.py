"""Read JSONL traces back and render the per-stage time/cost breakdown.

The reader is the write path's mirror: :func:`load_trace` parses the
lines, :class:`TraceSummary` aggregates spans by name (wall-clock, cost,
and *self*-cost — cost minus children's cost, so rows partition the total
without double counting), and :func:`render_summary` prints the table the
``repro trace-summary`` subcommand shows.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence


def _as_float(value) -> float:
    """Undo the strict-JSON encoding of non-finite floats ('nan', 'inf')."""
    return float(value)


def load_trace(path) -> List[dict]:
    """Parse a JSONL trace file into its records (blank lines skipped)."""
    records = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


class SpanAggregate:
    """Totals of all spans sharing one name (within one worker stream)."""

    __slots__ = ("name", "count", "wall_s", "cost_s", "self_cost_s", "depth")

    def __init__(self, name: str, depth: int):
        self.name = name
        self.depth = depth
        self.count = 0
        self.wall_s = 0.0
        self.cost_s = 0.0
        self.self_cost_s = 0.0


class TraceSummary:
    """Aggregated view of one trace: manifest, spans, counters, gauges."""

    def __init__(self, records: Sequence[Mapping[str, Any]]):
        self.manifest: Optional[dict] = None
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, Any] = {}
        self.workers: List[str] = []
        self.spans: Dict[str, SpanAggregate] = {}
        self.total_cost_s = 0.0
        self.total_wall_s = 0.0
        # Span records arrive children-before-parents (emitted at exit), so
        # a parent's direct children are the unclaimed spans one level
        # deeper.  Track per worker stream: merged traces interleave cells.
        pending: Dict[tuple, Dict[int, List[dict]]] = {}
        for record in records:
            kind = record.get("type")
            if kind == "manifest" and self.manifest is None:
                self.manifest = dict(record)
            elif kind == "counters":
                for key, value in record.get("values", {}).items():
                    self.counters[key] = self.counters.get(key, 0) + value
            elif kind == "gauges":
                self.gauges.update(record.get("values", {}))
            elif kind == "span":
                worker = record.get("worker")
                if worker is not None and worker not in self.workers:
                    self.workers.append(worker)
                self._add_span(record, pending.setdefault((worker,), {}))

    def _add_span(self, record: Mapping[str, Any], pending: Dict[int, List[dict]]) -> None:
        depth = int(record.get("depth", 0))
        cost = _as_float(record.get("cost_s", 0.0))
        children = pending.pop(depth + 1, [])
        child_cost = sum(_as_float(c.get("cost_s", 0.0)) for c in children)
        agg = self.spans.get(record["name"])
        if agg is None:
            agg = self.spans[record["name"]] = SpanAggregate(record["name"], depth)
        agg.count += 1
        agg.wall_s += _as_float(record.get("dur_s", 0.0))
        agg.cost_s += cost
        agg.self_cost_s += cost - child_cost
        pending.setdefault(depth, []).append(dict(record))
        if depth == 0:
            self.total_cost_s += cost
            self.total_wall_s += _as_float(record.get("dur_s", 0.0))
            pending.clear()

    def stage_rows(self) -> List[SpanAggregate]:
        """Span aggregates, shallowest first then by cost share."""
        return sorted(
            self.spans.values(), key=lambda a: (a.depth, -a.self_cost_s, a.name)
        )


def summarize(path_or_records) -> TraceSummary:
    """Build a :class:`TraceSummary` from a path or parsed records."""
    if isinstance(path_or_records, (str, Path)):
        return TraceSummary(load_trace(path_or_records))
    return TraceSummary(path_or_records)


def render_summary(path_or_records) -> str:
    """Human-readable report: manifest, per-stage breakdown, counters."""
    from repro.experiments.reporting import kv_block, table

    s = summarize(path_or_records)
    blocks: List[str] = []
    if s.manifest is not None:
        shown = {
            k: v
            for k, v in s.manifest.items()
            if k not in ("type", "schema") and v is not None
        }
        if shown:
            blocks.append("run manifest\n" + kv_block(shown))
    if s.workers:
        blocks.append(f"workers merged: {len(s.workers)}")

    rows = []
    total_cost = s.total_cost_s
    for agg in s.stage_rows():
        share = agg.self_cost_s / total_cost if total_cost > 0 else 0.0
        rows.append(
            (
                "  " * agg.depth + agg.name,
                agg.count,
                f"{agg.wall_s:.3f}",
                f"{agg.cost_s:.2f}",
                f"{agg.self_cost_s:.2f}",
                f"{100.0 * share:.1f}%",
            )
        )
    if rows:
        blocks.append(
            "per-stage breakdown (cost = simulated seconds; self = minus "
            "children)\n"
            + table(
                rows,
                headers=("stage", "calls", "wall s", "cost s", "self s", "share"),
            )
        )
        blocks.append(
            f"total: {s.total_wall_s:.3f} s wall, "
            f"{s.total_cost_s:.2f} s simulated cost"
        )
    unit_rows = [
        agg for name, agg in s.spans.items() if name.startswith("unit:")
    ]
    if unit_rows:
        blocks.append(
            "per-unit breakdown (run_all scheduler)\n"
            + table(
                [
                    (
                        agg.name[len("unit:"):],
                        agg.count,
                        f"{agg.wall_s:.3f}",
                        f"{agg.cost_s:.2f}",
                    )
                    for agg in sorted(unit_rows, key=lambda a: -a.wall_s)
                ],
                headers=("unit", "calls", "wall s", "cost s"),
            )
        )

    exp_walls = {
        key[len("runall."):-len(".wall_s")]: _as_float(value)
        for key, value in s.gauges.items()
        if key.startswith("runall.")
        and key.endswith(".wall_s")
        and key != "runall.total_wall_s"
    }
    if exp_walls:
        rows = [
            (exp, f"{wall:.3f}")
            for exp, wall in sorted(exp_walls.items(), key=lambda kv: -kv[1])
        ]
        block = "per-experiment wall clock (run_all)\n" + table(
            rows, headers=("experiment", "wall s")
        )
        total = s.gauges.get("runall.total_wall_s")
        if total is not None:
            block += f"\nrun_all total: {_as_float(total):.3f} s wall"
        blocks.append(block)

    arms: Dict[str, Dict[str, Any]] = {}
    for key, value in s.gauges.items():
        if not key.startswith("strategy."):
            continue
        _, name, field = key.split(".", 2)
        arms.setdefault(name, {})[field] = value
    if arms:
        def _best(fields):
            try:
                best = _as_float(fields.get("best_ms", "nan"))
            except (TypeError, ValueError):
                return float("inf")
            return best if best == best else float("inf")

        rows = []
        for name in sorted(arms, key=lambda n: _best(arms[n])):
            fields = arms[name]
            best = _best(fields)
            rows.append(
                (
                    name,
                    "-" if best == float("inf") else f"{best:.3f}",
                    f"{fields.get('pulls', '-')}",
                    f"{fields.get('measured', '-')}",
                    f"{_as_float(fields.get('spend_s', 0.0)):.1f}",
                    f"{_as_float(fields.get('mean_reward', 0.0)):.6f}",
                )
            )
        blocks.append(
            "strategy leaderboard (best measured time per search strategy)\n"
            + table(
                rows,
                headers=(
                    "strategy", "best ms", "pulls", "measured", "spend s",
                    "reward/s",
                ),
            )
        )

    faults = {
        k[len("fault."):]: s.counters[k]
        for k in sorted(s.counters)
        if k.startswith("fault.")
    }
    if faults:
        degraded = s.counters.get("tuner.degraded")
        if degraded:
            faults["degraded runs"] = degraded
        blocks.append(
            "fault injection survived (resilient measurement path)\n"
            + kv_block(faults)
        )
    if s.counters:
        blocks.append(
            "counters\n"
            + kv_block({k: s.counters[k] for k in sorted(s.counters)})
        )
    if s.gauges:
        blocks.append(
            "gauges\n" + kv_block({k: s.gauges[k] for k in sorted(s.gauges)})
        )
    if not blocks:
        return "empty trace"
    return "\n\n".join(blocks)
