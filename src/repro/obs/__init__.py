"""Pipeline observability: spans, counters/gauges, JSONL traces.

Dependency-free (stdlib only, imports nothing from the rest of the
package), so every layer can instrument itself without cycles.  See
docs/observability.md for the event schema and the CLI workflow.
"""

from repro.obs.summary import (
    TraceSummary,
    load_trace,
    render_summary,
    summarize,
)
from repro.obs.trace import (
    NULL_TRACER,
    SCHEMA_VERSION,
    NullTracer,
    Span,
    Tracer,
    git_revision,
    run_manifest,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SCHEMA_VERSION",
    "git_revision",
    "run_manifest",
    "TraceSummary",
    "load_trace",
    "summarize",
    "render_summary",
]
