"""Spans, counters and JSONL traces for the tuning pipeline.

The paper's headline results are cost-vs-quality curves, so the repo needs
to answer "where did the simulated seconds (and the wall-clock) go?" per
*stage*, not just in aggregate.  This module provides the primitives:

* :class:`Tracer` — records nestable timed spans, typed counters/gauges
  and ad-hoc events, and streams them as JSON Lines to a file (or keeps
  them in memory when no path is bound).  A trace opens with a manifest
  record identifying the run (kernel, device, settings, seeds, git rev).
* :class:`NullTracer` / :data:`NULL_TRACER` — the disabled tracer every
  component uses by default.  All of its methods are no-ops, so
  instrumentation costs a handful of attribute lookups per *batch* (never
  per configuration); ``benchmarks/test_perf_obs_overhead.py`` gates that
  overhead at <3% of the 10K-config sweep.

Cost attribution: when a :class:`~repro.simulator.noise.CostLedger` is
bound (``Context`` binds its own automatically), every span records the
ledger delta across its lifetime as ``cost_s``.  Sibling spans therefore
partition their parent's cost exactly — the property the trace-summary
reporter and the acceptance tests rely on.

The module is dependency-free (stdlib + nothing from the rest of the
package), so any layer — ``ml``, ``core``, ``runtime`` — may import it
without cycles.
"""

from __future__ import annotations

import json
import math
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional

#: Version stamp of the JSONL event schema (see docs/observability.md).
SCHEMA_VERSION = 1


def git_revision(start: Optional[Path] = None) -> Optional[str]:
    """Best-effort commit hash of the repository containing ``start``.

    Reads ``.git`` directly (no subprocess): resolves ``HEAD`` through one
    level of symbolic ref, falling back to ``packed-refs``.  Returns None
    outside a git checkout or on any parsing surprise — a trace without a
    revision is better than a crash.
    """
    try:
        base = Path(start) if start is not None else Path(__file__).resolve()
        for root in [base] + list(base.parents):
            git = root / ".git"
            if not git.exists():
                continue
            if git.is_file():  # worktree/submodule: "gitdir: <path>"
                git = (root / git.read_text().partition(":")[2].strip()).resolve()
            head = (git / "HEAD").read_text().strip()
            if not head.startswith("ref:"):
                return head or None
            ref = head.partition(" ")[2].strip()
            ref_file = git / ref
            if ref_file.exists():
                return ref_file.read_text().strip() or None
            packed = git / "packed-refs"
            if packed.exists():
                for line in packed.read_text().splitlines():
                    if line.endswith(" " + ref):
                        return line.split()[0]
            return None
    except OSError:
        return None
    return None


def run_manifest(**fields) -> Dict[str, Any]:
    """Standard manifest payload: caller fields + environment provenance."""
    manifest: Dict[str, Any] = dict(fields)
    manifest.setdefault("git_rev", git_revision())
    manifest.setdefault("python", sys.version.split()[0])
    manifest.setdefault("created_unix_s", time.time())
    return manifest


def _jsonable(obj):
    """Recursive JSON coercion: numpy scalars/arrays, paths, non-finite
    floats (encoded as strings, keeping every line strict JSON)."""
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else repr(obj)
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, Mapping):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if hasattr(obj, "tolist"):  # numpy array
        return _jsonable(obj.tolist())
    if hasattr(obj, "item"):  # numpy scalar
        return _jsonable(obj.item())
    return str(obj)


class Span:
    """One timed region; created by :meth:`Tracer.span`, used as a context
    manager.  The record is emitted at exit (children before parents)."""

    __slots__ = ("tracer", "name", "attrs", "depth", "parent", "t0", "cost0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.parent: Optional[str] = None
        self.t0 = 0.0
        self.cost0: Optional[float] = None

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer._exit(self, failed=exc_type is not None)


class _NullSpan:
    """Shared do-nothing span handed out by the disabled tracer."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented code calls it unconditionally; code that would build an
    *expensive argument* (a loss curve, a big attrs dict) must guard on
    :attr:`enabled` first.
    """

    enabled = False
    ledger = None

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n=1) -> None:
        return None

    def gauge(self, name: str, value) -> None:
        return None

    def event(self, name: str, **attrs) -> None:
        return None

    def bind_ledger(self, ledger) -> None:
        return None

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: Process-wide disabled tracer; the default everywhere.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans/counters/gauges/events; streams JSONL when ``path``
    is bound, else accumulates records in :attr:`records`.

    Parameters
    ----------
    path:
        Destination JSONL file (created/truncated on first write).  None
        keeps records in memory — handy for tests and embedding.
    manifest:
        Run-identifying fields written as the first record (see
        :func:`run_manifest`).
    ledger:
        Cost ledger snapshotted around every span (``cost_s`` deltas).
        ``Context`` binds its own ledger on construction when the tracer
        has none yet.
    sink:
        Optional callable invoked with every emitted record (after JSON
        coercion).  The ``repro.serve`` daemon streams progress to a
        client by pointing a per-request tracer's sink at the client's
        event queue.  A sink-only tracer (no path) does *not* accumulate
        records in memory — a long-lived server must not grow without
        bound.

    Writes are serialized under an internal lock, so one tracer may be
    shared by concurrent threads without interleaving half-written lines;
    a span that exits on an exception path flushes and fsyncs the file
    immediately, so a crashed (or killed) run keeps the spans it paid for.
    """

    enabled = True

    def __init__(
        self,
        path=None,
        manifest: Optional[Mapping[str, Any]] = None,
        ledger=None,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        self.path = Path(path) if path is not None else None
        self.ledger = ledger
        self.sink = sink
        self.records: List[dict] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, Any] = {}
        self._fh = None
        self._lock = threading.Lock()
        self._stack: List[Span] = []
        self._t0 = time.perf_counter()
        self._closed = False
        self._closing = False
        if manifest is not None:
            self.emit(
                {"type": "manifest", "schema": SCHEMA_VERSION, **dict(manifest)}
            )

    # -- record sink -----------------------------------------------------------

    def emit(self, record: Mapping[str, Any]) -> None:
        """Append one record to the trace (file, sink and/or memory)."""
        record = _jsonable(record)
        with self._lock:
            if self._closed:
                raise RuntimeError("tracer already closed")
            if self.path is not None:
                if self._fh is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    self._fh = open(self.path, "w")
                self._fh.write(json.dumps(record, allow_nan=False) + "\n")
            elif self.sink is None:
                self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    def flush(self) -> None:
        """Push buffered records to durable storage (flush + fsync)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    # -- spans -----------------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _enter(self, span: Span) -> None:
        span.depth = len(self._stack)
        span.parent = self._stack[-1].name if self._stack else None
        self._stack.append(span)
        if self.ledger is not None:
            span.cost0 = self.ledger.total_s
        span.t0 = self._now()

    def _exit(self, span: Span, failed: bool = False) -> None:
        end = self._now()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        record: Dict[str, Any] = {
            "type": "span",
            "name": span.name,
            "t0_s": round(span.t0, 9),
            "dur_s": round(end - span.t0, 9),
            "depth": span.depth,
        }
        if span.parent is not None:
            record["parent"] = span.parent
        if span.cost0 is not None:
            record["cost_s"] = self.ledger.total_s - span.cost0
        if failed:
            record["failed"] = True
        if span.attrs:
            record["attrs"] = span.attrs
        self.emit(record)
        if failed:
            # Exception path: make the span durable *now* — the process
            # may be about to die, and buffered spans are the evidence.
            self.flush()

    # -- metrics ---------------------------------------------------------------

    def count(self, name: str, n=1) -> None:
        """Add ``n`` to a monotonically accumulating counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value) -> None:
        """Record a last-value-wins measurement."""
        with self._lock:
            self.gauges[name] = value

    def event(self, name: str, **attrs) -> None:
        """One point-in-time record (checkpoints, loss curves, notes)."""
        record: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "t_s": round(self._now(), 9),
        }
        if attrs:
            record["attrs"] = attrs
        self.emit(record)

    def bind_ledger(self, ledger) -> None:
        """Attach the cost ledger spans snapshot for ``cost_s`` deltas."""
        self.ledger = ledger

    # -- merging (campaign-grid workers) ---------------------------------------

    def merge_file(self, path, **extra) -> int:
        """Fold a worker's JSONL trace into this one; returns records merged.

        Every merged record is tagged with ``extra`` (e.g. ``worker=...``);
        a worker's manifest/counters/gauges records become ``worker_*``
        records (a trace has exactly one fleet-wide instance of each), and
        worker counters are summed into this tracer's so its closing
        counters record covers the whole fleet.
        """
        n = 0
        for line in Path(path).read_text().splitlines():
            if not line.strip():
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind in ("manifest", "counters", "gauges"):
                record["type"] = "worker_" + kind
                if kind == "counters":
                    for key, value in record.get("values", {}).items():
                        self.count(key, value)
            record.update(extra)
            self.emit(record)
            n += 1
        return n

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Flush aggregate counters/gauges and release the file handle."""
        with self._lock:
            if self._closed or self._closing:
                return
            self._closing = True
        while self._stack:  # abandoned spans (crash paths) still emit
            self._exit(self._stack[-1], failed=True)
        if self.counters:
            self.emit({"type": "counters", "values": dict(self.counters)})
        if self.gauges:
            self.emit({"type": "gauges", "values": dict(self.gauges)})
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._fh.close()
                self._fh = None
            self._closed = True

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
