"""Genetic search over digit vectors (OpenTuner-style evolutionary arm).

Generational GA: tournament selection on ``log(time)`` fitness, uniform
crossover, per-digit mutation, elitism.  Elites are *not* re-proposed —
their fitness carries over, so a generation's measurement bill is only
its children.  All randomness comes from the ``propose`` RNG.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

import numpy as np

from repro.core.measure import MeasurementSet, Measurer
from repro.core.strategies.base import SearchSettings, SearchStrategy


class GeneticStrategy(SearchStrategy):
    name = "genetic"

    def __init__(
        self,
        measurer: Measurer,
        settings: SearchSettings,
        population: int = 32,
        elite: int = 2,
        tournament: int = 3,
        mutation: float = 0.0,  # 0 -> 1/n_free per digit
    ):
        super().__init__(measurer, settings)
        if population < 2:
            raise ValueError("population must be >= 2")
        self.population = population
        self.elite = min(elite, population - 1)
        self.tournament = max(2, tournament)
        self.mutation = mutation
        self._pool: List[np.ndarray] = []     # digit rows, fitness-sorted
        self._fitness: List[float] = []
        self._pending: np.ndarray = np.empty((0, 0), dtype=np.int64)

    def _mutation_rate(self) -> float:
        if self.mutation > 0:
            return self.mutation
        return 1.0 / max(self.sub.n_free, 1)

    def _select(self, rng: np.random.Generator) -> np.ndarray:
        picks = rng.integers(0, len(self._pool), size=self.tournament)
        best = min(int(p) for p in picks)  # pool is fitness-sorted
        return self._pool[best]

    def propose(self, rng: np.random.Generator, budget: int) -> np.ndarray:
        k = self.sub.n_free
        if not self._pool:
            n = min(self.population, budget, max(self.sub.size, 1))
            self._pending = self.sub.random_digits(n, rng)
            return self.sub.flat_of_digits(self._pending)
        n_children = min(self.population - self.elite, budget)
        rate = self._mutation_rate()
        children = np.empty((n_children, k), dtype=np.int64)
        for c in range(n_children):
            mother = self._select(rng)
            father = self._select(rng)
            mask = rng.random(k) < 0.5
            child = np.where(mask, mother, father)
            mut = rng.random(k) < rate
            if mut.any() and k:
                draws = rng.integers(0, self.sub.cards, size=k)
                child = np.where(mut, draws, child)
            children[c] = child
        self._pending = children
        return self.sub.flat_of_digits(children)

    def observe(self, indices: np.ndarray, ms: MeasurementSet) -> None:
        times = {int(i): float(t) for i, t in zip(ms.indices, ms.times_s)}
        survivors = list(zip(self._fitness, self._pool))[: self.elite] if (
            self._pool
        ) else []
        for row, i in enumerate(indices):
            t = times.get(int(i))
            e = np.log(t) if t is not None and t > 0 else float("inf")
            survivors.append((e, self._pending[row].copy()))
        survivors.sort(key=lambda fe: fe[0])
        survivors = survivors[: self.population]
        self._fitness = [f for f, _ in survivors]
        self._pool = [d for _, d in survivors]

    def state(self) -> Dict[str, Any]:
        return {
            "pool": [d.tolist() for d in self._pool],
            "fitness": list(self._fitness),
            "pending": self._pending.tolist(),
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        self._pool = [
            np.asarray(d, dtype=np.int64) for d in state.get("pool", [])
        ]
        self._fitness = [float(f) for f in state.get("fitness", [])]
        pending = state.get("pending", [])
        self._pending = np.asarray(pending, dtype=np.int64)
