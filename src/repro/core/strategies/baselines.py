"""The paper's baselines, ported onto the strategy interface.

``random`` and ``coordinate`` are the two searchers the paper compares
its two-stage tuner against (§5.1); ``exhaustive`` is the ground-truth
sweep.  Run unpinned with ``batch == budget``, :class:`RandomStrategy`
makes exactly the draws of the legacy ``core.search.random_search`` —
the legacy functions are now thin wrappers over these classes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.core.measure import MeasurementSet, Measurer
from repro.core.strategies.base import SearchSettings, SearchStrategy


class RandomStrategy(SearchStrategy):
    """Uniform sampling without replacement across rounds."""

    name = "random"

    def __init__(self, measurer: Measurer, settings: SearchSettings):
        super().__init__(measurer, settings)
        self._seen: set = set()

    def exhausted(self) -> bool:
        return len(self._seen) >= self.sub.size

    def propose(self, rng: np.random.Generator, budget: int) -> np.ndarray:
        left = self.sub.size - len(self._seen)
        if left <= 0:
            return np.empty(0, dtype=np.int64)
        want = min(budget, left)
        if not self._seen:
            out = self.sub.sample_flat(want, rng)
        elif left <= 2 * want or self.sub.size <= 1 << 16:
            # Near exhaustion: materialize the remainder and pick exactly.
            remaining = np.setdiff1d(
                self.sub.indices(),
                np.fromiter(self._seen, dtype=np.int64, count=len(self._seen)),
            )
            out = remaining[rng.permutation(remaining.size)[:want]]
        else:
            # Rejection against the seen set, first occurrences kept in
            # draw order (uniform without replacement).
            picked: List[int] = []
            fresh: set = set()
            while len(picked) < want:
                draw = self.sub.sample_flat(want - len(picked), rng)
                for i in draw:
                    i = int(i)
                    if i not in self._seen and i not in fresh:
                        picked.append(i)
                        fresh.add(i)
            out = np.asarray(picked, dtype=np.int64)
        self._seen.update(int(i) for i in out)
        return out

    def state(self) -> Dict[str, Any]:
        return {"seen": sorted(self._seen)}

    def restore(self, state: Mapping[str, Any]) -> None:
        self._seen = set(int(i) for i in state.get("seen", ()))


class ExhaustiveStrategy(SearchStrategy):
    """Every subspace configuration once, in ascending index order."""

    name = "exhaustive"

    def __init__(self, measurer: Measurer, settings: SearchSettings):
        super().__init__(measurer, settings)
        self._pos = 0
        self._all: Optional[np.ndarray] = None

    def exhausted(self) -> bool:
        return self._pos >= self.sub.size

    def propose(self, rng: np.random.Generator, budget: int) -> np.ndarray:
        if self._all is None:
            self._all = self.sub.indices()
        out = self._all[self._pos : self._pos + budget]
        self._pos += out.size
        return out

    def state(self) -> Dict[str, Any]:
        return {"pos": self._pos}

    def restore(self, state: Mapping[str, Any]) -> None:
        self._pos = int(state.get("pos", 0))


class CoordinateDescentStrategy(SearchStrategy):
    """One-parameter-at-a-time greedy descent, batched per parameter.

    From a valid starting point (free ``is_valid`` scan, or a supplied
    ``start_index``), each proposal is every *untried* value of the
    current free parameter with the others held fixed; the best measured
    value wins the axis.  A full sweep without improvement converges.

    Already-measured trial indices are served from the run's own memo
    (the dedupe fix of the legacy baseline): a repeated digits tuple —
    the incumbent included — costs nothing and is not re-counted, so the
    reported measured count matches ledger spend.  ``n_probed`` counts
    the free validity checks of the start scan separately.
    """

    name = "coordinate"

    def __init__(
        self,
        measurer: Measurer,
        settings: SearchSettings,
        max_sweeps: int = 4,
        start_index: Optional[int] = None,
        scan_limit: int = 200,
    ):
        super().__init__(measurer, settings)
        self.max_sweeps = max_sweeps
        self.scan_limit = scan_limit
        self.start_index = start_index
        self.n_probed = 0
        self._phase = "start"  # start -> sweep -> done
        self._digits: Optional[List[int]] = None  # free digits of incumbent
        self._best_time = float("inf")
        self._tried: Dict[int, Optional[float]] = {}
        self._j = 0
        self._sweep = 0
        self._improved = False
        self._pending: Optional[np.ndarray] = None

    def exhausted(self) -> bool:
        return self._phase == "done"

    # -- sweep bookkeeping -----------------------------------------------------

    def _advance(self) -> None:
        self._j += 1
        if self._j >= self.sub.n_free:
            self._j = 0
            self._sweep += 1
            if not self._improved or self._sweep >= self.max_sweeps:
                self._phase = "done"
            self._improved = False

    def _trials_for_axis(self) -> np.ndarray:
        digits = np.asarray(self._digits, dtype=np.int64)
        card = int(self.sub.cards[self._j])
        rows = np.repeat(digits[None, :], card, axis=0)
        rows[:, self._j] = np.arange(card)
        keep = np.arange(card) != digits[self._j]
        flat = self.sub.flat_of_digits(rows[keep])
        fresh = np.fromiter(
            (i for i in flat if int(i) not in self._tried),
            dtype=np.int64,
        )
        return fresh

    def propose(self, rng: np.random.Generator, budget: int) -> np.ndarray:
        if self._phase == "done":
            return np.empty(0, dtype=np.int64)
        if self._phase == "start":
            if self.start_index is not None:
                self._pending = np.asarray([self.start_index], dtype=np.int64)
                return self._pending
            for i in self.sub.sample_flat(
                min(self.scan_limit, self.sub.size), rng
            ):
                self.n_probed += 1
                if self.measurer.is_valid(int(i)):
                    self._pending = np.asarray([int(i)], dtype=np.int64)
                    return self._pending
            self._phase = "done"
            return np.empty(0, dtype=np.int64)
        if self.sub.n_free == 0:
            self._phase = "done"
            return np.empty(0, dtype=np.int64)
        while self._phase == "sweep":
            trials = self._trials_for_axis()
            if trials.size:
                self._pending = trials[:budget]
                return self._pending
            self._advance()
        return np.empty(0, dtype=np.int64)

    def observe(self, indices: np.ndarray, ms: MeasurementSet) -> None:
        times = {int(i): float(t) for i, t in zip(ms.indices, ms.times_s)}
        for i in indices:
            self._tried[int(i)] = times.get(int(i))
        if self._phase == "start":
            start = int(indices[0])
            t = times.get(start)
            if t is None:
                self._phase = "done"  # invalid start: fail, don't crash
                return
            self._digits = [int(d) for d in self.sub.digits_of_flat([start])[0]]
            self._best_time = t
            self._phase = "sweep"
            self._sweep = 0
            self._j = 0
            self._improved = False
            if self.sub.n_free == 0:
                self._phase = "done"
            return
        # Axis sweep: the best measured trial wins the axis if it beats
        # the incumbent.
        best_d = self._digits[self._j]
        digit_of = {
            int(i): int(d)
            for i, d in zip(
                indices, self.sub.digits_of_flat(indices)[:, self._j]
            )
        }
        for i in indices:
            t = times.get(int(i))
            if t is not None and t < self._best_time:
                self._best_time = t
                best_d = digit_of[int(i)]
                self._improved = True
        self._digits[self._j] = best_d
        self._advance()

    @property
    def incumbent(self) -> int:
        """Flat index of the current best digits tuple (-1 before start)."""
        if self._digits is None:
            return -1
        return int(
            self.sub.flat_of_digits(
                np.asarray(self._digits, dtype=np.int64)
            )[0]
        )

    @property
    def incumbent_time_s(self) -> float:
        return self._best_time

    def state(self) -> Dict[str, Any]:
        return {
            "phase": self._phase,
            "digits": list(self._digits) if self._digits is not None else None,
            "best_time": self._best_time,
            "tried": {str(k): v for k, v in self._tried.items()},
            "j": self._j,
            "sweep": self._sweep,
            "improved": self._improved,
            "n_probed": self.n_probed,
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        self._phase = state.get("phase", "start")
        digits = state.get("digits")
        self._digits = None if digits is None else [int(d) for d in digits]
        self._best_time = float(state.get("best_time", float("inf")))
        self._tried = {
            int(k): (None if v is None else float(v))
            for k, v in state.get("tried", {}).items()
        }
        self._j = int(state.get("j", 0))
        self._sweep = int(state.get("sweep", 0))
        self._improved = bool(state.get("improved", False))
        self.n_probed = int(state.get("n_probed", 0))
