"""UCB bandit meta-tuner: allocate one budget across the strategy zoo.

Which searcher wins depends on the (kernel, device) pair — Cummins et
al.'s observation — so instead of picking one up front, the meta-tuner
treats each strategy as a bandit arm and pulls the arm with the best
upper confidence bound.  One pull = one strategy round (one
``measure_batch``).  The reward of a pull is the *improvement it bought
per ledger-second*: ``log(best_before / best_after) / spend_s``,
normalized by the best reward seen so far so UCB's exploration term is
scale-free.

All arms share one :class:`~repro.core.measure.Measurer` and one
:class:`~repro.core.results.MeasurementDB` (attached for the run if the
measurer has none), so a configuration measured by one strategy is free
for every other — the meta-tuner's incumbent is the best measurement
*anyone* made.  Per-arm spend, pulls, and best times are emitted as
``strategy.<name>.*`` gauges: the leaderboard ``repro trace-summary``
renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.measure import Measurer
from repro.core.results import MeasurementDB
from repro.core.strategies.base import (
    SearchOutcome,
    SearchSettings,
    SearchStrategy,
    _charged,
)

#: Default arm lineup.  ``exhaustive`` is deliberately absent — it only
#: makes sense on tiny (sub)spaces and would drown the bandit in cost.
DEFAULT_ARMS: Tuple[str, ...] = (
    "random",
    "annealing",
    "pso",
    "genetic",
    "coordinate",
)


@dataclass
class ArmStats:
    """Bookkeeping of one bandit arm."""

    name: str
    pulls: int = 0
    reward_sum: float = 0.0
    spend_s: float = 0.0
    n_proposed: int = 0
    n_measured: int = 0
    best_time_s: float = float("inf")
    exhausted: bool = False

    @property
    def mean_reward(self) -> float:
        return self.reward_sum / self.pulls if self.pulls else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.name,
            "pulls": self.pulls,
            "spend_s": round(self.spend_s, 6),
            "n_proposed": self.n_proposed,
            "n_measured": self.n_measured,
            "best_time_s": (
                float(self.best_time_s)
                if np.isfinite(self.best_time_s)
                else None
            ),
            "mean_reward": round(self.mean_reward, 9),
        }


@dataclass
class BanditOutcome(SearchOutcome):
    """A :class:`SearchOutcome` plus the strategy-vs-strategy leaderboard."""

    arms: List[ArmStats] = field(default_factory=list)

    def leaderboard(self) -> List[ArmStats]:
        """Arms sorted best-time-first (never-successful arms last)."""
        return sorted(
            self.arms,
            key=lambda a: (not np.isfinite(a.best_time_s), a.best_time_s),
        )

    def as_dict(self) -> Dict[str, Any]:
        out = super().as_dict()
        out["leaderboard"] = [a.as_dict() for a in self.leaderboard()]
        return out


class BanditMetaTuner:
    """Interleave strategy rounds under one budget via UCB1.

    Not a :class:`SearchStrategy` itself — it owns the measurement loop
    (it must attribute each pull's ledger delta to an arm) — but it
    honours the same stopping rules and emits the same telemetry, so a
    ``strategy="bandit"`` run drops into every place a single strategy
    does.
    """

    name = "bandit"

    def __init__(
        self,
        measurer: Measurer,
        settings: SearchSettings,
        arms: Optional[Sequence[str]] = None,
        explore: float = 1.0,
    ):
        from repro.core.strategies import make_strategy

        self.measurer = measurer
        self.settings = settings
        self.explore = explore
        names = tuple(arms) if arms else DEFAULT_ARMS
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate arms: {names}")
        self.strategies: Dict[str, SearchStrategy] = {
            name: make_strategy(name, measurer, settings) for name in names
        }
        self.arms: Dict[str, ArmStats] = {
            name: ArmStats(name) for name in names
        }

    def _pick(self, total_pulls: int) -> Optional[str]:
        """UCB1 with rewards normalized by the best mean seen so far.

        Unpulled arms go first, in lineup order; ties break by lineup
        order too — both keep the schedule deterministic.
        """
        live = [a for a in self.arms.values() if not a.exhausted]
        if not live:
            return None
        for arm in live:
            if arm.pulls == 0:
                return arm.name
        scale = max((a.mean_reward for a in live), default=0.0)
        scale = scale if scale > 0 else 1.0
        best_name, best_ucb = None, -np.inf
        for arm in live:
            ucb = arm.mean_reward / scale + self.explore * np.sqrt(
                2.0 * np.log(max(total_pulls, 1)) / arm.pulls
            )
            if ucb > best_ucb:
                best_name, best_ucb = arm.name, ucb
        return best_name

    def run(self, rng: np.random.Generator) -> BanditOutcome:
        measurer = self.measurer
        ledger = measurer.context.ledger
        tracer = measurer.context.tracer
        stats = measurer.stats
        settings = self.settings
        outcome = BanditOutcome(
            strategy=self.name,
            pins=settings.pins_dict(),
            arms=list(self.arms.values()),
        )
        best_time = float("inf")
        best_index = -1
        cost0 = ledger.total_s
        charged0 = _charged(stats)
        db_hits0 = stats.n_db_hits
        # One shared DB across arms: cross-strategy repeats are free.
        own_db = measurer.db is None
        prev_db = measurer.db
        if own_db:
            measurer.db = MeasurementDB()
        total_pulls = 0
        try:
            with tracer.span(
                "search.bandit",
                budget=settings.budget,
                arms=len(self.arms),
            ) as sp:
                while True:
                    remaining = settings.budget - outcome.n_proposed
                    if remaining <= 0:
                        outcome.stop_reason = "budget"
                        break
                    if (
                        settings.max_cost_s is not None
                        and ledger.total_s - cost0 >= settings.max_cost_s
                    ):
                        outcome.stop_reason = "cost"
                        break
                    name = self._pick(total_pulls)
                    if name is None:
                        outcome.stop_reason = "exhausted"
                        break
                    arm = self.arms[name]
                    strategy = self.strategies[name]
                    if strategy.exhausted():
                        arm.exhausted = True
                        continue
                    batch = np.asarray(
                        strategy.propose(
                            rng, min(settings.batch, remaining)
                        ),
                        dtype=np.int64,
                    ).ravel()
                    if batch.size == 0:
                        arm.exhausted = True
                        continue
                    batch = batch[:remaining]
                    spend0 = ledger.total_s
                    pull_charged0 = _charged(stats)
                    with tracer.span(
                        "search.pull", strategy=name, n=int(batch.size)
                    ):
                        ms = measurer.measure_batch(batch)
                    strategy.observe(batch, ms)
                    spend = ledger.total_s - spend0
                    prev_best = best_time
                    if ms.n_valid:
                        i, t = ms.best()
                        if t < arm.best_time_s:
                            arm.best_time_s = float(t)
                        if t < best_time:
                            best_time = float(t)
                            best_index = int(i)
                    outcome.n_invalid += ms.n_invalid
                    outcome.n_quarantined += ms.n_quarantined
                    if np.isfinite(prev_best):
                        improvement = max(
                            0.0, float(np.log(prev_best / best_time))
                        )
                    else:
                        # First valid measurement: one nat of credit.
                        improvement = 1.0 if np.isfinite(best_time) else 0.0
                    reward = improvement / max(spend, 1e-9)
                    arm.pulls += 1
                    arm.reward_sum += reward
                    arm.spend_s += spend
                    arm.n_proposed += int(batch.size)
                    arm.n_measured += _charged(stats) - pull_charged0
                    total_pulls += 1
                    outcome.rounds += 1
                    outcome.n_proposed += int(batch.size)
                outcome.best_index = best_index
                outcome.best_time_s = (
                    best_time if best_index >= 0 else float("nan")
                )
                outcome.n_measured = _charged(stats) - charged0
                outcome.n_free = stats.n_db_hits - db_hits0
                outcome.cost_s = ledger.total_s - cost0
                sp.set(
                    pulls=total_pulls,
                    proposed=outcome.n_proposed,
                    measured=outcome.n_measured,
                    best_index=outcome.best_index,
                    stop=outcome.stop_reason,
                )
        finally:
            measurer.db = prev_db
        self._emit_leaderboard(tracer, outcome)
        return outcome

    def _emit_leaderboard(self, tracer, outcome: BanditOutcome) -> None:
        if not tracer.enabled:
            return
        for arm in outcome.arms:
            best_ms = (
                arm.best_time_s * 1e3
                if np.isfinite(arm.best_time_s)
                else float("nan")
            )
            tracer.gauge(f"strategy.{arm.name}.best_ms", round(best_ms, 6))
            tracer.gauge(f"strategy.{arm.name}.spend_s", round(arm.spend_s, 6))
            tracer.gauge(f"strategy.{arm.name}.pulls", arm.pulls)
            tracer.gauge(f"strategy.{arm.name}.measured", arm.n_measured)
            tracer.gauge(
                f"strategy.{arm.name}.mean_reward",
                round(arm.mean_reward, 9),
            )
        best_ms = (
            outcome.best_time_s * 1e3 if outcome.best_index >= 0 else float("nan")
        )
        tracer.gauge("search.bandit.best_ms", round(best_ms, 6))
        tracer.gauge("search.bandit.spend_s", round(outcome.cost_s, 6))
        tracer.count("search.bandit.pulls", outcome.rounds)
        tracer.count("search.measured", outcome.n_measured)
