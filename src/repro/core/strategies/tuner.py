"""Adapter: run a zoo strategy (or the bandit) as a drop-in tuner.

``SearchTuner.tune(rng)`` follows the :class:`~repro.core.tuner.MLAutoTuner`
contract — same :class:`~repro.core.results.TuningResult` payload, same
engine-stats swap, same ledger accounting — so ``strategy=`` plugs into
the CLI ``tune`` path, campaign grids, and the serving daemon without
those layers knowing which searcher ran.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.measure import Measurer
from repro.core.results import TuningResult
from repro.core.strategies.base import (
    SearchOutcome,
    SearchSettings,
    run_search,
)
from repro.kernels.base import KernelSpec
from repro.runtime import Context


class SearchTuner:
    """Tune with one search strategy (or ``"bandit"``) instead of the ANN.

    ``model`` is always ``None`` — search strategies fit nothing, so the
    serving layer's model cache simply has nothing to store.
    """

    def __init__(
        self,
        context: Context,
        spec: KernelSpec,
        strategy: str = "bandit",
        settings: Optional[SearchSettings] = None,
        measurer: Optional[Measurer] = None,
    ):
        from repro.core.strategies import STRATEGY_CHOICES

        if strategy not in STRATEGY_CHOICES:
            raise ValueError(
                f"unknown strategy {strategy!r}; "
                f"expected one of {sorted(STRATEGY_CHOICES)}"
            )
        self.context = context
        self.spec = spec
        self.strategy = strategy
        self.settings = settings or SearchSettings()
        self.measurer = measurer or Measurer(
            context, spec, repeats=self.settings.repeats
        )
        self.model = None
        self.outcome: Optional[SearchOutcome] = None

    def tune(self, rng: np.random.Generator, model_seed=None) -> TuningResult:
        """Run the search; ``model_seed`` is accepted (and ignored) for
        call-site parity with the ML tuners."""
        from repro.core.strategies import make_strategy
        from repro.core.strategies.bandit import BanditMetaTuner

        measurer = self.measurer
        ledger = self.context.ledger
        cost0 = ledger.total_s
        stats0 = measurer.stats
        measurer.stats = type(stats0)()
        try:
            if self.strategy == "bandit":
                outcome = BanditMetaTuner(measurer, self.settings).run(rng)
            else:
                outcome = run_search(
                    measurer,
                    make_strategy(self.strategy, measurer, self.settings),
                    rng,
                    self.settings,
                )
            run_stats = measurer.stats
        finally:
            measurer.stats = stats0.merge(measurer.stats)
        self.outcome = outcome

        breakdown = dict(run_stats.failure_breakdown())
        degraded = outcome.n_quarantined > 0 and not outcome.failed
        reason = "quarantined configurations" if degraded else ""
        if degraded:
            breakdown["degraded"] = breakdown.get("degraded", 0) + 1
        return TuningResult(
            kernel=self.spec.name,
            device=self.context.device.name,
            best_index=outcome.best_index,
            best_time_s=outcome.best_time_s,
            n_trained=0,
            n_stage2=outcome.n_measured,
            stage2_invalid=outcome.n_invalid,
            evaluated_fraction=outcome.n_proposed / self.spec.space.size,
            total_cost_s=ledger.total_s - cost0,
            degraded=degraded,
            degraded_reason=reason,
            failure_breakdown=breakdown,
        )
