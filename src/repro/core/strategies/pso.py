"""Particle-swarm optimization over the digit lattice (CLTune's PSO).

Particles live in continuous digit coordinates; each round every
particle's position is rounded to the nearest lattice point and the
whole swarm is measured in one batch.  Fitness is ``log(time)``
(invalid = +inf, so personal/global bests only ever track valid
configurations).  Velocity updates draw their ``r1``/``r2`` uniforms in
``propose`` — the strategy's only RNG access point.

A converged swarm re-proposes the same lattice points forever; those
re-measures are served from the measurement cache almost for free, so a
ledger-capped run could spin for tens of thousands of rounds without
spending budget.  When the global best goes ``restart_after`` rounds
without improving, the swarm is re-seeded from the propose RNG (the
global best survives as the social attractor), keeping runs deterministic
while guaranteeing fresh proposals.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.core.measure import MeasurementSet, Measurer
from repro.core.strategies.base import SearchSettings, SearchStrategy


class PSOStrategy(SearchStrategy):
    name = "pso"

    def __init__(
        self,
        measurer: Measurer,
        settings: SearchSettings,
        particles: int = 24,
        inertia: float = 0.70,
        cognitive: float = 1.60,
        social: float = 1.60,
        restart_after: int = 12,
    ):
        super().__init__(measurer, settings)
        if particles < 1:
            raise ValueError("particles must be >= 1")
        if restart_after < 1:
            raise ValueError("restart_after must be >= 1")
        self.particles = particles
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social
        self.restart_after = restart_after
        self._stall = 0
        self._pos: Optional[np.ndarray] = None      # (P, k) float
        self._vel: Optional[np.ndarray] = None
        self._pbest: Optional[np.ndarray] = None    # (P, k) float
        self._pbest_e: Optional[np.ndarray] = None  # (P,)
        self._gbest: Optional[np.ndarray] = None    # (k,)
        self._gbest_e = float("inf")
        self._n_active = 0

    def _quantize(self, pos: np.ndarray) -> np.ndarray:
        hi = np.maximum(self.sub.cards - 1, 0).astype(np.float64)
        return np.rint(np.clip(pos, 0.0, hi)).astype(np.int64)

    def propose(self, rng: np.random.Generator, budget: int) -> np.ndarray:
        k = self.sub.n_free
        if self._pos is not None and self._stall >= self.restart_after:
            # Stagnated: scatter the swarm again.  The global best is kept
            # (it keeps pulling via the social term) but personal bests are
            # wiped so the fresh particles explore on their own merit.
            self._pos = None
            self._stall = 0
        if self._pos is None:
            n = min(self.particles, budget, max(self.sub.size, 1))
            self._pos = rng.uniform(0.0, 1.0, size=(n, k)) * np.maximum(
                self.sub.cards - 1, 0
            )
            self._vel = rng.uniform(-1.0, 1.0, size=(n, k)) * np.maximum(
                self.sub.cards - 1, 0
            ) * 0.25
            self._pbest = self._pos.copy()
            self._pbest_e = np.full(n, np.inf)
        else:
            r1 = rng.uniform(size=self._pos.shape)
            r2 = rng.uniform(size=self._pos.shape)
            gbest = self._gbest if self._gbest is not None else self._pos.mean(0)
            self._vel = (
                self.inertia * self._vel
                + self.cognitive * r1 * (self._pbest - self._pos)
                + self.social * r2 * (gbest[None, :] - self._pos)
            )
            hi = np.maximum(self.sub.cards - 1, 0).astype(np.float64)
            self._pos = np.clip(self._pos + self._vel, 0.0, hi)
        self._n_active = min(self._pos.shape[0], budget)
        digits = self._quantize(self._pos[: self._n_active])
        return self.sub.flat_of_digits(digits)

    def observe(self, indices: np.ndarray, ms: MeasurementSet) -> None:
        times = {int(i): float(t) for i, t in zip(ms.indices, ms.times_s)}
        n = min(self._n_active, len(indices))
        improved = False
        for p in range(n):
            t = times.get(int(indices[p]))
            e = np.log(t) if t is not None and t > 0 else float("inf")
            if e < self._pbest_e[p]:
                self._pbest_e[p] = e
                self._pbest[p] = self._pos[p]
            if e < self._gbest_e:
                self._gbest_e = e
                self._gbest = self._pos[p].copy()
                improved = True
        self._stall = 0 if improved else self._stall + 1

    def state(self) -> Dict[str, Any]:
        def arr(a):
            return None if a is None else np.asarray(a).tolist()

        return {
            "pos": arr(self._pos),
            "vel": arr(self._vel),
            "pbest": arr(self._pbest),
            "pbest_e": arr(self._pbest_e),
            "gbest": arr(self._gbest),
            "gbest_e": self._gbest_e,
            "n_active": self._n_active,
            "stall": self._stall,
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        def arr(v):
            return None if v is None else np.asarray(v, dtype=np.float64)

        self._pos = arr(state.get("pos"))
        self._vel = arr(state.get("vel"))
        self._pbest = arr(state.get("pbest"))
        self._pbest_e = arr(state.get("pbest_e"))
        self._gbest = arr(state.get("gbest"))
        self._gbest_e = float(state.get("gbest_e", float("inf")))
        self._n_active = int(state.get("n_active", 0))
        self._stall = int(state.get("stall", 0))
