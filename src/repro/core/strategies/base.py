"""Common interface of the search-strategy zoo.

Every strategy is a stateful proposer over a (possibly pinned) parameter
subspace: :func:`run_search` repeatedly asks it to ``propose(rng,
budget)`` a batch of flat configuration indices, measures them through
:meth:`~repro.core.measure.Measurer.measure_batch` (so every strategy
inherits the wave engine's fault/drift resilience for free), and feeds
the :class:`~repro.core.measure.MeasurementSet` back through
``observe``.  The loop owns the stopping rules — a proposal budget, an
optional :class:`~repro.simulator.noise.CostLedger` simulated-second cap
— and the trace spans, so strategies stay pure search logic.

Pinned parameters (``SearchSettings.pins``) follow the dbcsr autotuner
idiom: the user fixes a few parameters by value and the strategy sweeps
only the free ones.  :class:`Subspace` does the arithmetic — the same
mixed-radix slice as :meth:`~repro.params.space.ParameterSpace.indices_with`,
without materializing anything until a caller asks.

Determinism contract: a strategy draws randomness *only* from the
``rng`` handed to ``propose`` and keeps all other state in plain
attributes exposed through ``state()``/``restore()`` — so a run is
bit-reproducible from ``(seed, settings)`` and resumable mid-flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.measure import MeasurementSet, Measurer


def _normalize_pins(pins) -> Tuple[Tuple[str, Any], ...]:
    """Canonical, hashable form of a pin mapping (sorted name/value pairs)."""
    if not pins:
        return ()
    if isinstance(pins, Mapping):
        items = pins.items()
    else:
        items = tuple(pins)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class SearchSettings:
    """Budget and constraints shared by every strategy.

    Attributes
    ----------
    budget:
        Maximum *proposals* (measurement slots requested).  Charged
        measurements are reported separately — DB hits and quarantine
        skips are free, and :class:`SearchOutcome.n_measured` is what
        actually hit the ledger.
    max_cost_s:
        Optional cap on simulated ledger seconds; checked between rounds
        (like ``TunerSettings.max_cost_s``), so a run can overshoot by at
        most one batch.
    batch:
        Proposals per round.  Larger batches amortize the vectorized
        engine; smaller ones give the strategy faster feedback.
    pins:
        User-pinned parameters as a mapping or ``(name, value)`` pairs;
        stored canonicalized so settings stay hashable.
    repeats:
        Best-of-``repeats`` launches per measurement (mirrors
        ``TunerSettings.repeats``).
    """

    budget: int = 1000
    max_cost_s: Optional[float] = None
    batch: int = 64
    pins: Tuple[Tuple[str, Any], ...] = ()
    repeats: int = 3

    def __post_init__(self):
        object.__setattr__(self, "pins", _normalize_pins(self.pins))
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if self.max_cost_s is not None and self.max_cost_s <= 0:
            raise ValueError("max_cost_s must be positive")

    def pins_dict(self) -> Dict[str, Any]:
        return dict(self.pins)


class Subspace:
    """The slice of a parameter space left free by a set of pins.

    The flat-index arithmetic mirrors
    :meth:`~repro.params.space.ParameterSpace.indices_with`: every pinned
    parameter contributes a constant ``digit * place`` offset
    (``base_index``), and the free parameters form their own mixed-radix
    system of ``size`` points.  Nothing is enumerated until
    :meth:`indices` is called.
    """

    def __init__(self, space, pins: Optional[Mapping[str, Any]] = None):
        pins = dict(pins or {})
        unknown = set(pins) - set(space.names)
        if unknown:
            raise ValueError(f"unknown pinned parameters: {sorted(unknown)}")
        self.space = space
        self.pins = pins
        base = 0
        free_params = []
        free_places = []
        for p, place in zip(space.parameters, space.places):
            if p.name in pins:
                base += p.index_of(pins[p.name]) * place
            else:
                free_params.append(p)
                free_places.append(place)
        self.base_index = int(base)
        self.free_parameters = tuple(free_params)
        self._free_places = np.asarray(free_places, dtype=np.int64)
        self.cards = np.asarray(
            [p.cardinality for p in free_params], dtype=np.int64
        )
        # Places of the *sub*-index mixed-radix system (suffix products).
        sub_places = np.ones(len(free_params), dtype=np.int64)
        for i in range(len(free_params) - 2, -1, -1):
            sub_places[i] = sub_places[i + 1] * self.cards[i + 1]
        self._sub_places = sub_places
        self.size = int(self.cards.prod()) if len(free_params) else 1

    @property
    def n_free(self) -> int:
        return len(self.free_parameters)

    def flat_of_digits(self, digits: np.ndarray) -> np.ndarray:
        """Flat space indices of ``(n, n_free)`` free-digit rows."""
        digits = np.asarray(digits, dtype=np.int64)
        if digits.ndim == 1:
            digits = digits[None, :]
        return self.base_index + digits @ self._free_places

    def digits_of_flat(self, indices) -> np.ndarray:
        """Free-digit rows of flat space indices (pinned digits dropped)."""
        full = self.space.digits_matrix(np.asarray(indices, dtype=np.int64))
        keep = [
            j
            for j, p in enumerate(self.space.parameters)
            if p.name not in self.pins
        ]
        return full[:, keep]

    def digits_of_sub(self, sub: np.ndarray) -> np.ndarray:
        """Free-digit rows of ``(n,)`` sub-indices in ``[0, size)``."""
        sub = np.asarray(sub, dtype=np.int64)
        out = np.empty((sub.shape[0], self.n_free), dtype=np.int64)
        rem = sub.copy()
        for j, place in enumerate(self._sub_places):
            out[:, j], rem = np.divmod(rem, place)
        return out

    def sample_flat(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` uniform flat indices of the subspace, without replacement.

        Unpinned, this *is* ``space.sample_indices`` — same draws, same
        bits — so strategy runs with no pins stay exactly comparable to
        the legacy baselines.
        """
        if not self.pins:
            return self.space.sample_indices(n, rng)
        if n > self.size:
            raise ValueError(f"cannot sample {n} from subspace of {self.size}")
        if self.size <= 4 * n or self.size <= 1 << 16:
            sub = rng.permutation(self.size)[:n]
        else:
            sub = np.empty(0, dtype=np.int64)
            while sub.shape[0] < n:
                draw = rng.integers(0, self.size, size=n - sub.shape[0])
                merged = np.concatenate([sub, draw])
                _, first = np.unique(merged, return_index=True)
                sub = merged[np.sort(first)]
            sub = sub[:n]
        return self.flat_of_digits(self.digits_of_sub(sub))

    def random_digits(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``(n, n_free)`` uniform digit rows (with replacement)."""
        return rng.integers(0, self.cards, size=(n, self.n_free))

    def indices(self) -> np.ndarray:
        """Materialize every flat index of the subspace (ascending)."""
        return self.space.indices_with(**self.pins)


@dataclass
class SearchOutcome:
    """What one strategy run hands back.

    ``n_proposed`` counts measurement slots requested; ``n_measured``
    counts the ones that actually charged the ledger (simulator
    evaluations plus cached re-measures) and ``n_free`` the ones served
    from the attached :class:`~repro.core.results.MeasurementDB` at zero
    cost — the probed/measured split the accounting fixes in
    ``core.search`` report the same way.
    """

    strategy: str
    best_index: int = -1
    best_time_s: float = float("nan")
    n_proposed: int = 0
    n_measured: int = 0
    n_free: int = 0
    n_invalid: int = 0
    n_quarantined: int = 0
    rounds: int = 0
    cost_s: float = 0.0
    stop_reason: str = ""
    pins: Dict[str, Any] = field(default_factory=dict)
    measurements: Optional[MeasurementSet] = None

    @property
    def failed(self) -> bool:
        return self.best_index < 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "best_index": int(self.best_index),
            "best_time_s": float(self.best_time_s),
            "n_proposed": int(self.n_proposed),
            "n_measured": int(self.n_measured),
            "n_free": int(self.n_free),
            "n_invalid": int(self.n_invalid),
            "n_quarantined": int(self.n_quarantined),
            "rounds": int(self.rounds),
            "cost_s": float(self.cost_s),
            "stop_reason": self.stop_reason,
            "pins": dict(self.pins),
        }


class SearchStrategy:
    """Base class: a resumable proposer over a pinned subspace.

    Subclasses implement :meth:`propose` (and usually :meth:`observe`);
    they may consult ``self.measurer.is_valid`` — static validity is
    free — but must never call ``measure``/``measure_batch`` themselves:
    the run loop owns measurement so accounting and resilience stay in
    one place.
    """

    name = "base"

    def __init__(self, measurer: Measurer, settings: SearchSettings):
        self.measurer = measurer
        self.space = measurer.spec.space
        self.settings = settings
        self.sub = Subspace(self.space, settings.pins_dict())

    def propose(self, rng: np.random.Generator, budget: int) -> np.ndarray:
        """Next batch of flat indices to measure (at most ``budget``).

        An empty array means the strategy has nothing left to try; the
        run loop stops with ``stop_reason="exhausted"``.
        """
        raise NotImplementedError

    def observe(self, indices: np.ndarray, ms: MeasurementSet) -> None:
        """Feed back the measurements of the last proposal."""

    def exhausted(self) -> bool:
        return False

    # -- resume ----------------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """JSON-portable snapshot of the strategy's mutable state."""
        return {}

    def restore(self, state: Mapping[str, Any]) -> None:
        """Resume from a :meth:`state` snapshot."""


def _charged(stats) -> int:
    """Measurements that billed the ledger (everything but DB hits and
    quarantine skips)."""
    return stats.n_simulated + stats.n_cache_hits


def run_search(
    measurer: Measurer,
    strategy: SearchStrategy,
    rng: np.random.Generator,
    settings: Optional[SearchSettings] = None,
) -> SearchOutcome:
    """Drive one strategy to completion under the shared stopping rules.

    Emits one ``search.<name>`` span around the run and final
    ``strategy.<name>.*`` gauges (best time, ledger spend, rounds,
    charged measurements) — the rows the ``trace-summary`` leaderboard
    renders.
    """
    settings = settings or strategy.settings
    tracer = measurer.context.tracer
    ledger = measurer.context.ledger
    stats = measurer.stats
    cost0 = ledger.total_s
    charged0 = _charged(stats)
    db_hits0 = stats.n_db_hits
    outcome = SearchOutcome(strategy=strategy.name, pins=settings.pins_dict())
    merged: Optional[MeasurementSet] = None

    with tracer.span(
        f"search.{strategy.name}",
        budget=settings.budget,
        batch=settings.batch,
        pinned=len(settings.pins),
    ) as sp:
        while True:
            remaining = settings.budget - outcome.n_proposed
            if remaining <= 0:
                outcome.stop_reason = "budget"
                break
            if (
                settings.max_cost_s is not None
                and ledger.total_s - cost0 >= settings.max_cost_s
            ):
                outcome.stop_reason = "cost"
                break
            if strategy.exhausted():
                outcome.stop_reason = "exhausted"
                break
            batch = np.asarray(
                strategy.propose(rng, min(settings.batch, remaining)),
                dtype=np.int64,
            ).ravel()
            if batch.size == 0:
                outcome.stop_reason = "exhausted"
                break
            batch = batch[:remaining]
            ms = measurer.measure_batch(batch)
            strategy.observe(batch, ms)
            outcome.rounds += 1
            outcome.n_proposed += int(batch.size)
            merged = ms if merged is None else merged.merged_with(ms)
        outcome.n_measured = _charged(stats) - charged0
        outcome.n_free = stats.n_db_hits - db_hits0
        outcome.cost_s = ledger.total_s - cost0
        if merged is not None:
            outcome.measurements = merged
            outcome.n_invalid = merged.n_invalid
            outcome.n_quarantined = merged.n_quarantined
            if merged.n_valid:
                idx, t = merged.best()
                outcome.best_index = int(idx)
                outcome.best_time_s = float(t)
        sp.set(
            rounds=outcome.rounds,
            proposed=outcome.n_proposed,
            measured=outcome.n_measured,
            best_index=outcome.best_index,
            stop=outcome.stop_reason,
        )
    emit_strategy_gauges(tracer, strategy.name, outcome)
    return outcome


def emit_strategy_gauges(tracer, name: str, outcome: SearchOutcome) -> None:
    """Final per-strategy telemetry — the trace-summary leaderboard rows."""
    if not tracer.enabled:
        return
    best_ms = (
        outcome.best_time_s * 1e3 if outcome.best_index >= 0 else float("nan")
    )
    tracer.gauge(f"strategy.{name}.best_ms", round(best_ms, 6))
    tracer.gauge(f"strategy.{name}.spend_s", round(outcome.cost_s, 6))
    tracer.gauge(f"strategy.{name}.rounds", outcome.rounds)
    tracer.gauge(f"strategy.{name}.measured", outcome.n_measured)
    tracer.count("search.rounds", outcome.rounds)
    tracer.count("search.measured", outcome.n_measured)
