"""Simulated annealing over the digit lattice (CLTune-style).

A population of independent walkers anneals in parallel — one neighbour
per walker per round, so every round is one vectorized
``measure_batch`` call.  Energy is ``log(time)`` (scale-free Metropolis
acceptance); invalid configurations carry infinite energy and are never
accepted over a finite incumbent.  Acceptance uniforms are drawn at the
*next* ``propose`` (the only place the strategy sees an RNG), which
keeps the determinism contract of the zoo.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.core.measure import MeasurementSet, Measurer
from repro.core.strategies.base import SearchSettings, SearchStrategy


class AnnealingStrategy(SearchStrategy):
    name = "annealing"

    def __init__(
        self,
        measurer: Measurer,
        settings: SearchSettings,
        walkers: int = 16,
        t0: float = 0.35,
        cooling: float = 0.92,
        t_min: float = 0.01,
    ):
        super().__init__(measurer, settings)
        if walkers < 1:
            raise ValueError("walkers must be >= 1")
        self.walkers = walkers
        self.t0 = t0
        self.cooling = cooling
        self.t_min = t_min
        self.temp = t0
        self._pos: Optional[np.ndarray] = None       # (W, k) digits
        self._energy: Optional[np.ndarray] = None    # (W,) log-time
        self._cand: Optional[np.ndarray] = None      # (W', k) pending moves
        self._cand_energy: Optional[np.ndarray] = None
        self._active: Optional[np.ndarray] = None    # walker ids of _cand

    def _accept_pending(self, rng: np.random.Generator) -> None:
        """Metropolis-accept the last round's moves (uniforms drawn here,
        where the RNG lives)."""
        if self._cand is None or self._cand_energy is None:
            return
        u = rng.random(self._active.size)
        for row, (w, e_new) in enumerate(zip(self._active, self._cand_energy)):
            e_old = self._energy[w]
            if e_new <= e_old or (
                np.isfinite(e_new)
                and u[row] < np.exp((e_old - e_new) / max(self.temp, 1e-9))
            ):
                self._pos[w] = self._cand[row]
                self._energy[w] = e_new
        self._cand = self._cand_energy = self._active = None
        self.temp = max(self.temp * self.cooling, self.t_min)

    def propose(self, rng: np.random.Generator, budget: int) -> np.ndarray:
        self._accept_pending(rng)
        if self._pos is None:
            n = min(self.walkers, budget, self.sub.size)
            self._pos = self.sub.random_digits(n, rng)
            self._energy = np.full(n, np.inf)
            self._active = np.arange(n)
            self._cand = self._pos.copy()
            return self.sub.flat_of_digits(self._cand)
        n = min(self._pos.shape[0], budget)
        self._active = np.arange(n)
        cand = self._pos[:n].copy()
        if self.sub.n_free:
            axes = rng.integers(0, self.sub.n_free, size=n)
            for row, j in enumerate(axes):
                card = int(self.sub.cards[j])
                if card < 2:
                    continue
                step = int(rng.integers(1, card))
                cand[row, j] = (cand[row, j] + step) % card
        self._cand = cand
        return self.sub.flat_of_digits(cand)

    def observe(self, indices: np.ndarray, ms: MeasurementSet) -> None:
        times = {int(i): float(t) for i, t in zip(ms.indices, ms.times_s)}
        energy = np.full(len(indices), np.inf)
        for row, i in enumerate(indices):
            t = times.get(int(i))
            if t is not None and t > 0:
                energy[row] = np.log(t)
        # Truncate bookkeeping to what was actually measured (the run
        # loop may have clipped the batch to the remaining budget).
        self._cand = self._cand[: len(indices)]
        self._active = self._active[: len(indices)]
        self._cand_energy = energy

    def state(self) -> Dict[str, Any]:
        def arr(a):
            return None if a is None else np.asarray(a).tolist()

        return {
            "temp": self.temp,
            "pos": arr(self._pos),
            "energy": arr(self._energy),
            "cand": arr(self._cand),
            "cand_energy": arr(self._cand_energy),
            "active": arr(self._active),
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        def arr(v, dtype):
            return None if v is None else np.asarray(v, dtype=dtype)

        self.temp = float(state.get("temp", self.t0))
        self._pos = arr(state.get("pos"), np.int64)
        self._energy = arr(state.get("energy"), np.float64)
        self._cand = arr(state.get("cand"), np.int64)
        self._cand_energy = arr(state.get("cand_energy"), np.float64)
        self._active = arr(state.get("active"), np.int64)
