"""The search-strategy zoo (see docs/tuning_guide.md).

A common :class:`SearchStrategy` interface over the paper's baselines
(random, coordinate descent, exhaustive) plus the metaheuristics the
related work tunes OpenCL spaces with (simulated annealing and PSO from
CLTune, a genetic searcher à la OpenTuner), and a UCB bandit meta-tuner
that splits one measurement budget across all of them.  Every strategy
measures through :meth:`~repro.core.measure.Measurer.measure_batch`
(wave-engine resilience included) and supports user-pinned parameters.
"""

from repro.core.strategies.annealing import AnnealingStrategy
from repro.core.strategies.bandit import (
    ArmStats,
    BanditMetaTuner,
    BanditOutcome,
    DEFAULT_ARMS,
)
from repro.core.strategies.base import (
    SearchOutcome,
    SearchSettings,
    SearchStrategy,
    Subspace,
    run_search,
)
from repro.core.strategies.baselines import (
    CoordinateDescentStrategy,
    ExhaustiveStrategy,
    RandomStrategy,
)
from repro.core.strategies.genetic import GeneticStrategy
from repro.core.strategies.pso import PSOStrategy
from repro.core.strategies.tuner import SearchTuner

#: name -> class; ``bandit`` is separate (a meta-tuner over these).
STRATEGIES = {
    RandomStrategy.name: RandomStrategy,
    CoordinateDescentStrategy.name: CoordinateDescentStrategy,
    ExhaustiveStrategy.name: ExhaustiveStrategy,
    AnnealingStrategy.name: AnnealingStrategy,
    PSOStrategy.name: PSOStrategy,
    GeneticStrategy.name: GeneticStrategy,
}

#: Everything a ``strategy=`` option accepts (CLI, campaign, serve).
STRATEGY_CHOICES = tuple(sorted(STRATEGIES)) + ("bandit",)


def make_strategy(name, measurer, settings) -> SearchStrategy:
    """Instantiate a zoo strategy by name (not ``"bandit"`` — that is a
    meta-tuner, built via :class:`BanditMetaTuner`)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; expected one of {sorted(STRATEGIES)}"
        ) from None
    return cls(measurer, settings)


__all__ = [
    "AnnealingStrategy",
    "ArmStats",
    "BanditMetaTuner",
    "BanditOutcome",
    "CoordinateDescentStrategy",
    "DEFAULT_ARMS",
    "ExhaustiveStrategy",
    "GeneticStrategy",
    "PSOStrategy",
    "RandomStrategy",
    "STRATEGIES",
    "STRATEGY_CHOICES",
    "SearchOutcome",
    "SearchSettings",
    "SearchStrategy",
    "SearchTuner",
    "Subspace",
    "make_strategy",
    "run_search",
]
