"""Result records and a persistent measurement store."""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional


@dataclass(frozen=True)
class TuningResult:
    """What the auto-tuner hands back.

    Attributes
    ----------
    best_index / best_time_s:
        The winning configuration and its measured time; ``best_index`` is
        ``-1`` (and the time NaN) when *every* stage-two candidate was
        invalid — the paper's "the auto-tuner gives no prediction at all"
        failure mode (§7).
    n_trained / n_stage2:
        Valid training measurements (stage one) and stage-two candidates.
    stage2_invalid:
        Invalid configurations among the stage-two candidates.
    evaluated_fraction:
        Measured configurations / space size (the paper quotes 1.7%,
        0.5%, 0.1%).
    total_cost_s:
        Simulated wall-clock spent measuring (compiles + runs + failures
        + retry backoff).
    degraded / degraded_reason:
        True when the tuner had to fall back from its nominal pipeline to
        still produce a pick — every stage-two candidate failed (pick is
        the best *stage-one* measurement), or stage one had to replenish
        samples after invalids/transients starved the training set.  A
        degraded result is usable but earned less evidence than asked for.
    failure_breakdown:
        Fault counters of the measurement engine (transient / timeouts /
        retries / quarantined; see
        :meth:`~repro.core.measure.EngineStats.failure_breakdown`), plus
        degradation events.  Empty when the run saw no faults and no
        degradation — the fault-free result payload is unchanged.
    """

    kernel: str
    device: str
    best_index: int
    best_time_s: float
    n_trained: int
    n_stage2: int
    stage2_invalid: int
    evaluated_fraction: float
    total_cost_s: float
    degraded: bool = False
    degraded_reason: str = ""
    failure_breakdown: Mapping = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """True when no valid measurement exists at all (not even a
        degraded stage-one fallback)."""
        return self.best_index < 0

    def slowdown_vs(self, optimum_time_s: float) -> float:
        """Slowdown relative to a known optimum (Figs. 11-14 metric)."""
        if self.failed:
            return float("nan")
        if optimum_time_s <= 0:
            raise ValueError("optimum time must be positive")
        return self.best_time_s / optimum_time_s


def _encode_time(value: Optional[float]):
    """JSON-portable encoding of one stored measurement.

    ``json.dumps`` emits bare ``NaN``/``Infinity`` tokens that are not valid
    JSON and break any standard-compliant reader; non-finite floats are
    stored as strings instead (``None`` stays ``null`` — it means invalid).
    """
    if value is None:
        return None
    value = float(value)
    if math.isfinite(value):
        return value
    return repr(value)  # 'nan', 'inf', '-inf'


def _decode_time(raw) -> Optional[float]:
    if raw is None:
        return None
    if isinstance(raw, str):
        return float(raw)
    return float(raw)


class MeasurementDB:
    """JSON-backed store of per-(kernel, device) measurements.

    Maps configuration index -> measured seconds (or ``None`` for invalid),
    so expensive campaigns (exhaustive sweeps for ground truth) can be
    written once and reloaded by experiments, tests, and — via
    ``Measurer(db=...)`` — by resumed runs of the campaigns themselves.

    Persistence is crash-safe: :meth:`save` writes to a temporary file in
    the destination directory and atomically renames it over the target, so
    a kill mid-write leaves the previous on-disk state intact.  Values are
    round-tripped through strict JSON (non-finite floats encoded as
    strings), so files can be read by any JSON parser.
    """

    def __init__(self, path: Optional[Path] = None):
        self.path = Path(path) if path is not None else None
        self._data: Dict[str, Dict[int, Optional[float]]] = {}
        if self.path is not None and self.path.exists():
            self._load()

    @staticmethod
    def _key(kernel: str, device: str) -> str:
        return f"{kernel}@{device}"

    def _load(self) -> None:
        # json.loads still accepts legacy bare-NaN files written before
        # strict encoding; _decode_time normalizes both representations.
        raw = json.loads(self.path.read_text())
        self._data = {
            key: {int(i): _decode_time(t) for i, t in entries.items()}
            for key, entries in raw.items()
        }

    def save(self) -> None:
        if self.path is None:
            raise RuntimeError("no path bound to this MeasurementDB")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            key: {str(i): _encode_time(t) for i, t in entries.items()}
            for key, entries in self._data.items()
        }
        text = json.dumps(payload, allow_nan=False)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- access ----------------------------------------------------------------

    def put(self, kernel: str, device: str, index: int, time_s: Optional[float]) -> None:
        value = None if time_s is None else float(time_s)
        self._data.setdefault(self._key(kernel, device), {})[int(index)] = value

    def put_many(
        self,
        kernel: str,
        device: str,
        items: Mapping[int, Optional[float]],
    ) -> None:
        """Bulk insert of index -> time (or None-for-invalid) entries."""
        table = self._data.setdefault(self._key(kernel, device), {})
        for index, time_s in items.items():
            table[int(index)] = None if time_s is None else float(time_s)

    def get(self, kernel: str, device: str, index: int):
        return self._data.get(self._key(kernel, device), {}).get(int(index))

    def get_many(
        self, kernel: str, device: str, indices: Iterable[int]
    ) -> Dict[int, Optional[float]]:
        """Stored entries among ``indices``; unknown indices are omitted
        (``None`` values mean known-invalid, not missing)."""
        table = self._data.get(self._key(kernel, device), {})
        out: Dict[int, Optional[float]] = {}
        for i in indices:
            i = int(i)
            if i in table:
                out[i] = table[i]
        return out

    def has(self, kernel: str, device: str, index: int) -> bool:
        """True when the configuration has a stored outcome (even invalid)."""
        return int(index) in self._data.get(self._key(kernel, device), {})

    def known_indices(self, kernel: str, device: str) -> List[int]:
        """All stored configuration indices for one (kernel, device)."""
        return list(self._data.get(self._key(kernel, device), {}))

    def merge_from(self, other: "MeasurementDB") -> int:
        """Absorb every entry of ``other``; returns entries added/updated."""
        n = 0
        for key, entries in other._data.items():
            table = self._data.setdefault(key, {})
            for i, t in entries.items():
                table[i] = t
                n += 1
        return n

    def table(self, kernel: str, device: str) -> Dict[int, Optional[float]]:
        return dict(self._data.get(self._key(kernel, device), {}))

    def __len__(self) -> int:
        return sum(len(v) for v in self._data.values())

    def best(self, kernel: str, device: str) -> tuple:
        """(index, time) of the fastest stored valid measurement."""
        entries = self._data.get(self._key(kernel, device), {})
        valid = {i: t for i, t in entries.items() if t is not None}
        if not valid:
            raise ValueError(f"no valid entries for {kernel}@{device}")
        i = min(valid, key=valid.get)
        return i, valid[i]
