"""Result records and a persistent measurement store."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional


@dataclass(frozen=True)
class TuningResult:
    """What the auto-tuner hands back.

    Attributes
    ----------
    best_index / best_time_s:
        The winning configuration and its measured time; ``best_index`` is
        ``-1`` (and the time NaN) when *every* stage-two candidate was
        invalid — the paper's "the auto-tuner gives no prediction at all"
        failure mode (§7).
    n_trained / n_stage2:
        Valid training measurements (stage one) and stage-two candidates.
    stage2_invalid:
        Invalid configurations among the stage-two candidates.
    evaluated_fraction:
        Measured configurations / space size (the paper quotes 1.7%,
        0.5%, 0.1%).
    total_cost_s:
        Simulated wall-clock spent measuring (compiles + runs + failures).
    """

    kernel: str
    device: str
    best_index: int
    best_time_s: float
    n_trained: int
    n_stage2: int
    stage2_invalid: int
    evaluated_fraction: float
    total_cost_s: float

    @property
    def failed(self) -> bool:
        """True when stage two produced no valid candidate."""
        return self.best_index < 0

    def slowdown_vs(self, optimum_time_s: float) -> float:
        """Slowdown relative to a known optimum (Figs. 11-14 metric)."""
        if self.failed:
            return float("nan")
        if optimum_time_s <= 0:
            raise ValueError("optimum time must be positive")
        return self.best_time_s / optimum_time_s


class MeasurementDB:
    """JSON-backed store of per-(kernel, device) measurements.

    Maps configuration index -> measured seconds (or ``None`` for invalid),
    so expensive campaigns (exhaustive sweeps for ground truth) can be
    written once and reloaded by experiments and tests.
    """

    def __init__(self, path: Optional[Path] = None):
        self.path = Path(path) if path is not None else None
        self._data: Dict[str, Dict[int, Optional[float]]] = {}
        if self.path is not None and self.path.exists():
            self._load()

    @staticmethod
    def _key(kernel: str, device: str) -> str:
        return f"{kernel}@{device}"

    def _load(self) -> None:
        raw = json.loads(self.path.read_text())
        self._data = {
            key: {int(i): t for i, t in entries.items()}
            for key, entries in raw.items()
        }

    def save(self) -> None:
        if self.path is None:
            raise RuntimeError("no path bound to this MeasurementDB")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(self._data))

    # -- access ----------------------------------------------------------------

    def put(self, kernel: str, device: str, index: int, time_s: Optional[float]) -> None:
        self._data.setdefault(self._key(kernel, device), {})[int(index)] = time_s

    def get(self, kernel: str, device: str, index: int):
        return self._data.get(self._key(kernel, device), {}).get(int(index))

    def table(self, kernel: str, device: str) -> Dict[int, Optional[float]]:
        return dict(self._data.get(self._key(kernel, device), {}))

    def __len__(self) -> int:
        return sum(len(v) for v in self._data.values())

    def best(self, kernel: str, device: str) -> tuple:
        """(index, time) of the fastest stored valid measurement."""
        entries = self._data.get(self._key(kernel, device), {})
        valid = {i: t for i, t in entries.items() if t is not None}
        if not valid:
            raise ValueError(f"no valid entries for {kernel}@{device}")
        i = min(valid, key=valid.get)
        return i, valid[i]
