"""Streaming drift detection: CUSUM over standardized log-residuals.

The online tuner (:mod:`repro.core.online`) keeps serving the incumbent
configuration and keeps measuring it; the question is whether the stream
of measurements still looks like the fitted
:class:`~repro.core.model.PerformanceModel` said it would.  The detector
watches the *log-residual* of each incoming measurement,

    r = log(measured) - log(predicted),

which is stationary under the simulator's multiplicative log-normal
measurement noise and turns a multiplicative drift factor into an
additive mean shift — exactly the change a CUSUM is optimal for.

Two practical wrinkles, both handled by calibration:

* the model has a per-configuration *bias* (its prediction error on the
  incumbent is systematic, not zero-mean), so the residual mean is
  unknown a priori;
* the residual scale depends on the device's noise sigma *through* the
  best-of-``repeats`` minimum, so it is not the catalog sigma either.

The detector therefore spends its first ``calibration`` observations
estimating the residual mean and standard deviation of the quiet
machine, then arms a two-sided CUSUM on the standardized residual ``z``:

    S+ <- max(0, S+ + z - k)        S- <- max(0, S- - z - k)

alarming when either side exceeds ``h``.  ``z`` is clipped to ``max_z``
so one injected outlier spike (fault profiles with ``p_outlier``) moves
the statistic by a bounded amount instead of forcing an alarm.  With the
defaults (k = 1, h = 12, in sigma units) the false-positive rate on a
quiet machine is negligible over campaign-length streams — pinned by the
quiescence gate in ``tests/test_online.py`` (20 seeds x ``none`` drift +
``flaky-gpu`` faults, zero alarms) and the synthetic-noise bound in
``tests/test_drift.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.obs import NULL_TRACER


@dataclass(frozen=True)
class DetectorSettings:
    """Knobs of the CUSUM drift detector.

    Attributes
    ----------
    slack_k:
        CUSUM slack per observation, in (calibrated) sigma units: drifts
        smaller than ~k sigma per observation are treated as noise.
    threshold_h:
        Alarm threshold on the CUSUM statistic, in sigma units.  The
        classical trade-off: detection latency for a shift of size
        ``delta`` is roughly ``h / (delta - k)`` observations, while the
        in-control false-alarm rate shrinks exponentially in ``h``.
    calibration:
        Quiet observations used to estimate the residual mean/std before
        the detector arms (no alarms while calibrating).
    max_z:
        Standardized residuals are clipped to ``[-max_z, +max_z]`` so a
        single outlier spike cannot alarm on its own (it moves the
        statistic by at most ``max_z - slack_k``).
    min_std:
        Floor on the calibrated standard deviation — a pathologically
        quiet calibration window must not make the detector hair-trigger.
    """

    slack_k: float = 1.0
    threshold_h: float = 12.0
    calibration: int = 24
    max_z: float = 6.0
    min_std: float = 1e-4

    def __post_init__(self):
        if self.slack_k < 0:
            raise ValueError("slack_k must be >= 0")
        if self.threshold_h <= 0:
            raise ValueError("threshold_h must be positive")
        if self.calibration < 2:
            raise ValueError("calibration must be >= 2")
        if self.max_z <= self.slack_k:
            raise ValueError("max_z must exceed slack_k")
        if self.min_std <= 0:
            raise ValueError("min_std must be positive")


class CusumDetector:
    """Two-sided streaming CUSUM over standardized log-residuals.

    One detector monitors one measurement stream (the online tuner's
    incumbent configuration).  Feed it ``update(predicted_s, measured_s)``
    per observation; it returns True on alarm.  After the caller responds
    (re-tune, new incumbent), call :meth:`reset` — the detector
    recalibrates on the post-response stream, absorbing both the new
    incumbent's model bias and the new regime's scale.

    Counters (``n_obs``, ``n_alarms``) are cumulative across resets;
    trace counters/events go through the given tracer.
    """

    def __init__(self, settings: Optional[DetectorSettings] = None, tracer=None):
        self.settings = settings if settings is not None else DetectorSettings()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Lifetime observation / alarm counts (survive resets).
        self.n_obs = 0
        self.n_alarms = 0
        self._cal: List[float] = []
        self._mu = 0.0
        self._sd = 1.0
        self.s_hi = 0.0
        self.s_lo = 0.0
        self.armed = False

    @property
    def stat(self) -> float:
        """Current CUSUM statistic (max of the two one-sided sums)."""
        return max(self.s_hi, self.s_lo)

    def reset(self) -> None:
        """Forget the calibration and the sums; the next ``calibration``
        observations re-estimate the quiet baseline."""
        self._cal = []
        self._mu = 0.0
        self._sd = 1.0
        self.s_hi = 0.0
        self.s_lo = 0.0
        self.armed = False

    def update(self, predicted_s: float, measured_s: float) -> bool:
        """Consume one observation; True when the stream has shifted."""
        if predicted_s <= 0 or measured_s <= 0:
            raise ValueError("times must be positive")
        r = math.log(measured_s) - math.log(predicted_s)
        self.n_obs += 1
        self.tracer.count("drift.observations")
        cfg = self.settings
        if not self.armed:
            self._cal.append(r)
            if len(self._cal) >= cfg.calibration:
                n = len(self._cal)
                mu = sum(self._cal) / n
                var = sum((x - mu) ** 2 for x in self._cal) / (n - 1)
                self._mu = mu
                self._sd = max(math.sqrt(var), cfg.min_std)
                self.armed = True
                self.tracer.event(
                    "drift.armed", mu=self._mu, sd=self._sd, n=n
                )
            return False
        z = (r - self._mu) / self._sd
        z = max(-cfg.max_z, min(cfg.max_z, z))
        self.s_hi = max(0.0, self.s_hi + z - cfg.slack_k)
        self.s_lo = max(0.0, self.s_lo - z - cfg.slack_k)
        if self.stat > cfg.threshold_h:
            self.n_alarms += 1
            self.tracer.count("drift.alarms")
            self.tracer.event(
                "drift.alarm",
                stat=self.stat,
                z=z,
                residual=r,
                mu=self._mu,
                sd=self._sd,
                n_obs=self.n_obs,
            )
            return True
        return False

    def snapshot(self) -> dict:
        """Current detector state, for stats/trace payloads."""
        return {
            "armed": self.armed,
            "n_obs": self.n_obs,
            "n_alarms": self.n_alarms,
            "stat": self.stat,
            "mu": self._mu,
            "sd": self._sd,
        }
