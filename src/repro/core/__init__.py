"""The machine-learning auto-tuner (the paper's core contribution, §5).

Pipeline (Fig. 3 of the paper)::

    parameterized kernel
      -> pick N random configurations            (core.tuner / params)
      -> measure them on the device              (core.measure, runtime)
      -> train a bagged-ANN model on log(time)   (core.model, ml)
      -> predict the whole space                 (core.model, vectorized)
      -> measure the M best-predicted configs    (core.tuner)
      -> return the best measured one

plus the baselines the evaluation needs: exhaustive search (ground truth
for Figs. 11-13), random search of equal budget, and one-at-a-time
coordinate descent (which parameter interactions defeat).
"""

from repro.core.adaptive import choose_m
from repro.core.campaign import (
    CampaignResult,
    GridCell,
    GridReport,
    PortabilityCampaign,
    run_campaign_grid,
)
from repro.core.drift import CusumDetector, DetectorSettings
from repro.core.encoding import ConfigEncoder
from repro.core.input_aware import InputAwareModel
from repro.core.iterative import IterativeSettings, IterativeTuner
from repro.core.measure import EngineStats, MeasurementSet, Measurer
from repro.core.model import PerformanceModel
from repro.core.online import (
    OnlineReport,
    OnlineSettings,
    OnlineTuner,
    RetuneEvent,
)
from repro.core.results import MeasurementDB, TuningResult
from repro.core.sensitivity import interaction_strength, parameter_sensitivity
from repro.core.search import (
    CoordinateDescentResult,
    coordinate_descent,
    exhaustive_search,
    random_search,
)
from repro.core.strategies import (
    BanditMetaTuner,
    STRATEGIES,
    STRATEGY_CHOICES,
    SearchOutcome,
    SearchSettings,
    SearchStrategy,
    SearchTuner,
    Subspace,
    make_strategy,
    run_search,
)
from repro.core.tuner import MLAutoTuner, TunerSettings

__all__ = [
    "choose_m",
    "PortabilityCampaign",
    "CampaignResult",
    "GridCell",
    "GridReport",
    "run_campaign_grid",
    "CusumDetector",
    "DetectorSettings",
    "OnlineTuner",
    "OnlineSettings",
    "OnlineReport",
    "RetuneEvent",
    "EngineStats",
    "InputAwareModel",
    "IterativeTuner",
    "IterativeSettings",
    "parameter_sensitivity",
    "interaction_strength",
    "ConfigEncoder",
    "Measurer",
    "MeasurementSet",
    "PerformanceModel",
    "MLAutoTuner",
    "TunerSettings",
    "TuningResult",
    "MeasurementDB",
    "exhaustive_search",
    "random_search",
    "coordinate_descent",
    "CoordinateDescentResult",
    "BanditMetaTuner",
    "STRATEGIES",
    "STRATEGY_CHOICES",
    "SearchOutcome",
    "SearchSettings",
    "SearchStrategy",
    "SearchTuner",
    "Subspace",
    "make_strategy",
    "run_search",
]
