"""Configuration -> feature-vector encoding for the performance model.

The paper feeds "values of tuning parameters" directly to the network
(§3).  Getting the representation right matters for a 30-neuron model:

* power-of-two parameters (work-group sizes, pixels per thread, unroll
  factors) span two orders of magnitude; encoded as ``log2(value)`` the
  network sees the axis the hardware actually responds to (doubling);
* boolean switches are 0/1;
* any other categorical parameter is one-hot encoded.

Choice parameters whose values are all powers of two (the paper's unroll
factors ``1,2,4,8,16``) get the log2 treatment rather than one-hot.

Encoding is vectorized over flat indices (via the space's mixed-radix
``digits_matrix``) because stage two of the tuner encodes *entire* spaces
of up to 2.36M configurations.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

import numpy as np

from repro.params import ParameterSpace
from repro.params.parameter import KIND_BOOL, KIND_CHOICE, KIND_POW2


def _is_pow2_values(values: tuple) -> bool:
    return all(
        isinstance(v, (int, np.integer)) and v >= 1 and (v & (v - 1)) == 0
        for v in values
    )


class ConfigEncoder:
    """Feature encoder bound to one parameter space.

    Attributes
    ----------
    n_features:
        Width of the encoded vectors.
    feature_names:
        One name per output column (for introspection/tests).
    """

    def __init__(self, space: ParameterSpace):
        self.space = space
        self._columns: List[np.ndarray] = []  # per-parameter value LUTs
        self.feature_names: List[str] = []
        for p in space.parameters:
            if p.kind == KIND_POW2 or (
                p.kind == KIND_CHOICE and _is_pow2_values(p.values)
            ):
                lut = np.log2(np.asarray(p.values, dtype=np.float64))[:, None]
                names = [f"log2({p.name})"]
            elif p.kind == KIND_BOOL:
                lut = np.asarray(p.values, dtype=np.float64)[:, None]
                names = [p.name]
            else:
                lut = np.eye(p.cardinality, dtype=np.float64)
                names = [f"{p.name}=={v!r}" for v in p.values]
            self._columns.append(lut)
            self.feature_names.extend(names)
        self.n_features = sum(lut.shape[1] for lut in self._columns)

    def encode_indices(self, indices: Sequence[int]) -> np.ndarray:
        """Encode flat indices into an ``(n, n_features)`` matrix."""
        digits = self.space.digits_matrix(np.asarray(indices, dtype=np.int64))
        parts = [
            lut[digits[:, j]] for j, lut in enumerate(self._columns)
        ]
        return np.concatenate(parts, axis=1)

    def encode_config(self, config: Mapping) -> np.ndarray:
        """Encode one configuration (mapping or Configuration) to a vector."""
        index = self.space.index_of(config)
        return self.encode_indices([index])[0]

    def __repr__(self) -> str:
        return f"ConfigEncoder({self.n_features} features over {self.space!r})"
