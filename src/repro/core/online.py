"""Online dynamic re-tuning: keep the pick good while the machine drifts.

The paper tunes once per (kernel, device) and stops; a long-lived service
has to keep serving its pick while clocks throttle and co-tenants come
and go (:mod:`repro.simulator.drift`).  Re-running the whole two-stage
pipeline on every suspicion would burn the very budget the tuner exists
to save — CLTune-style full re-searches are exactly what this module
avoids.  Instead:

1. **tune once** — a normal :class:`~repro.core.tuner.MLAutoTuner` run
   produces the incumbent configuration and the fitted model;
2. **monitor** — each serving step re-measures the incumbent (charged to
   the ledger like any measurement) and feeds the residual against the
   model's prediction to a :class:`~repro.core.drift.CusumDetector`;
3. **respond on alarm** — *incremental* recovery at a fraction of a
   campaign, in two transfer-ranked rounds.  Round one re-measures the
   model's current top-``retune_window`` (mostly compile-cached, so the
   spend is launches — not builds), estimates the global shift ratio
   from the incumbent's residual, and refits the model on the
   ratio-rescaled stage-one data plus the fresh measurements (window
   invalids are remembered and excluded from later windows — never
   penalty-fitted, which would pollute the near-optimal neighborhood
   the response needs ranked accurately).  Round two re-ranks with the
   *refitted* model —
   which now knows the post-shift reordering round one revealed — and
   measures a second, disjoint window; the best measurement across both
   rounds becomes the new incumbent.  The detector recalibrates on the
   post-response stream.

Everything — monitoring probes, window re-measurement — is charged
through the context's :class:`~repro.simulator.noise.CostLedger`; the
recovery benchmark (``benchmarks/test_perf_drift.py``) gates the response
at <= 50% of a from-scratch tune's spend while landing within 5% of the
post-shift oracle optimum.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.drift import CusumDetector, DetectorSettings
from repro.core.measure import Measurer
from repro.core.results import TuningResult
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.kernels.base import KernelSpec
from repro.runtime import Context


@dataclass(frozen=True)
class OnlineSettings:
    """Knobs of the online monitoring / re-tuning loop.

    Attributes
    ----------
    steps:
        Monitoring steps after the initial tune.  Each step measures the
        incumbent once (best-of-``repeats``, ledger-charged) and feeds
        the detector.
    step_interval_s:
        Simulated seconds of *serving* time between monitoring probes —
        production time keeps passing even when no tuning budget is being
        spent, which is what advances the drift clock
        (:meth:`~repro.simulator.drift.DriftModel.advance`) between
        measurements.
    detector:
        :class:`~repro.core.drift.DetectorSettings` of the CUSUM monitor.
    retune_window:
        Transfer-ranked candidates (the model's current top-M) re-measured
        per response round; a response runs two rounds (pre- and
        post-refit ranking), so up to ``2 x retune_window`` fresh
        measurements per alarm.  Small by design: the ranking knowledge
        transfers across a drift shift far better than the absolute
        times do.
    max_retunes:
        Alarms answered before the loop stops responding (a machine that
        drifts every few steps needs an operator, not a bigger window);
        further alarms are still counted and traced.
    warm_start_refits:
        When True (the default), alarm-response refits re-train the
        existing ensemble weights in place instead of from random init
        — the post-shift surface is a rescaled version of the one the
        weights already encode, so recovery pays tens of epochs instead
        of thousands (wall-clock only; the simulated-cost ledger is
        unaffected).  False restores cold refits.
    """

    steps: int = 200
    step_interval_s: float = 30.0
    detector: DetectorSettings = field(default_factory=DetectorSettings)
    retune_window: int = 32
    max_retunes: int = 8
    warm_start_refits: bool = True

    def __post_init__(self):
        if self.steps < 0:
            raise ValueError("steps must be >= 0")
        if self.step_interval_s < 0:
            raise ValueError("step_interval_s must be >= 0")
        if self.retune_window < 1:
            raise ValueError("retune_window must be >= 1")
        if self.max_retunes < 0:
            raise ValueError("max_retunes must be >= 0")


@dataclass
class RetuneEvent:
    """One answered alarm: what the response did and what it cost."""

    step: int
    at_s: float          # drift-clock time of the alarm
    cost_s: float        # ledger spend of the response
    ratio: float         # estimated global shift (measured / predicted)
    old_index: int
    new_index: int
    new_time_s: float    # the new incumbent's window measurement
    fit_wall_s: float = 0.0  # real seconds spent refitting the model
    fit_epochs: int = 0      # training epochs across this response's refits

    def as_dict(self) -> Dict[str, Any]:
        # fit_wall_s stays off the payload on purpose: as_dict feeds the
        # trace stream and the deterministic-replay comparison, and real
        # wall time is the one nondeterministic field.  Read it from the
        # event object (or OnlineReport.retune_fit_wall_s) instead.
        return {
            "step": self.step,
            "at_s": self.at_s,
            "cost_s": self.cost_s,
            "ratio": self.ratio,
            "old_index": self.old_index,
            "new_index": self.new_index,
            "new_time_s": self.new_time_s,
            "fit_epochs": self.fit_epochs,
        }


@dataclass
class OnlineReport:
    """Outcome of one online campaign: initial tune + monitoring loop."""

    kernel: str
    device: str
    initial: TuningResult
    incumbent: int
    steps: int
    alarms: int
    skipped: int                      # monitoring steps with no measurement
    initial_cost_s: float
    monitor_cost_s: float
    retunes: List[RetuneEvent]
    trajectory: List[Dict[str, Any]]  # per-step monitoring record

    @property
    def retune_cost_s(self) -> float:
        return float(sum(e.cost_s for e in self.retunes))

    @property
    def retune_fit_wall_s(self) -> float:
        """Real seconds spent refitting the model across all responses."""
        return float(sum(e.fit_wall_s for e in self.retunes))

    @property
    def total_cost_s(self) -> float:
        return self.initial_cost_s + self.monitor_cost_s + self.retune_cost_s

    def as_dict(self, include_trajectory: bool = False) -> Dict[str, Any]:
        out = {
            "kernel": self.kernel,
            "device": self.device,
            "incumbent": self.incumbent,
            "steps": self.steps,
            "alarms": self.alarms,
            "skipped": self.skipped,
            "initial_cost_s": self.initial_cost_s,
            "monitor_cost_s": self.monitor_cost_s,
            "retune_cost_s": self.retune_cost_s,
            "total_cost_s": self.total_cost_s,
            "retunes": [e.as_dict() for e in self.retunes],
        }
        if include_trajectory:
            out["trajectory"] = self.trajectory
        return out


class OnlineTuner:
    """Tune once, then monitor-and-respond for one (kernel, device) pair.

    Usage::

        ctx = Context(NVIDIA_K40, seed=7, drift="thermal-throttle")
        online = OnlineTuner(ctx, ConvolutionKernel())
        report = online.run(np.random.default_rng(7), model_seed=7)

    Works identically with no drift attached (the detector simply never
    fires on a quiet machine — the false-positive gate of
    ``tests/test_online.py``) and composes with fault profiles: the
    measurer's retry/quarantine machinery handles faults under the loop.
    """

    def __init__(
        self,
        context: Context,
        spec: KernelSpec,
        settings: Optional[OnlineSettings] = None,
        tune_settings: Optional[TunerSettings] = None,
        measurer: Optional[Measurer] = None,
    ):
        self.context = context
        self.spec = spec
        self.settings = settings if settings is not None else OnlineSettings()
        tune_settings = (
            tune_settings if tune_settings is not None else TunerSettings()
        )
        if tune_settings.freeze_patience is None:
            # Member-wise freezing is a *campaign* optimization.  The
            # online loop's transfer-ranked windows consume the model's
            # ranking directly, and the freeze approximation measurably
            # degrades it (the drift benchmark's post-shift optimum falls
            # off the re-measure window).  Unless the caller explicitly
            # chose freeze thresholds, pin the whole online chain —
            # initial tune and refits — to the reference-quality loop
            # (``freeze_patience=inf`` is bit-identical to classic); warm
            # round-two refits provide the online-path speedup instead.
            tune_settings = replace(tune_settings, freeze_patience=math.inf)
        self.tune_settings = tune_settings
        self.measurer = measurer or Measurer(
            context, spec, repeats=self.tune_settings.repeats
        )
        self.detector = CusumDetector(
            self.settings.detector, tracer=context.tracer
        )
        self.model = None
        self._train_idx: Optional[np.ndarray] = None
        self._train_times: Optional[np.ndarray] = None
        self._scale = 1.0
        self._known_invalid: set = set()
        # Per-response refit accounting (real wall time + epochs), reset
        # by _respond and snapshotted into each RetuneEvent.
        self._fit_wall_s = 0.0
        self._fit_epochs = 0

    # -- the loop --------------------------------------------------------------

    def run(
        self,
        rng: np.random.Generator,
        model_seed: Optional[int] = None,
    ) -> OnlineReport:
        """Initial tune, then ``settings.steps`` of monitor-and-respond."""
        ctx = self.context
        tracer = ctx.tracer
        ledger = ctx.ledger
        cost0 = ledger.total_s
        with tracer.span(
            "online.campaign", kernel=self.spec.name, device=ctx.device.name
        ) as campaign_span:
            tuner = MLAutoTuner(
                ctx, self.spec, self.tune_settings, measurer=self.measurer
            )
            initial = tuner.tune(rng, model_seed=model_seed)
            initial_cost = ledger.total_s - cost0
            trajectory: List[Dict[str, Any]] = []
            retunes: List[RetuneEvent] = []
            skipped = 0
            incumbent = initial.best_index
            self.model = tuner.model
            if initial.failed or self.model is None:
                # Nothing to monitor: no pick, or no model to predict with
                # (budget death in stage one).  Report the degraded tune.
                campaign_span.set(degraded=True)
                return OnlineReport(
                    kernel=self.spec.name,
                    device=ctx.device.name,
                    initial=initial,
                    incumbent=incumbent,
                    steps=0,
                    alarms=0,
                    skipped=0,
                    initial_cost_s=initial_cost,
                    monitor_cost_s=0.0,
                    retunes=retunes,
                    trajectory=trajectory,
                )
            if tuner.training_set is not None:
                self._train_idx = tuner.training_set.indices.copy()
                self._train_times = tuner.training_set.times_s.copy()
                self._known_invalid.update(
                    int(i) for i in tuner.training_set.invalid_indices
                )
            self._scale = 1.0
            predicted = float(self.model.predict_indices([incumbent])[0])
            tracer.event(
                "online.monitoring",
                incumbent=incumbent,
                predicted_s=predicted,
                steps=self.settings.steps,
            )

            monitor_cost = 0.0
            for step in range(self.settings.steps):
                if ctx.drift is not None:
                    ctx.drift.advance(self.settings.step_interval_s)
                t_now = (
                    ctx.drift.time_of(ledger)
                    if ctx.drift is not None
                    else ledger.total_s
                )
                before = ledger.total_s
                value = self.measurer.measure(incumbent)
                monitor_cost += ledger.total_s - before
                tracer.count("online.steps")
                if value is None:
                    # Quarantined or reset-invalidated incumbent; no
                    # residual to score.  Rare, and self-healing: the next
                    # successful measure re-enters the stream.
                    skipped += 1
                    tracer.count("online.skipped")
                    trajectory.append(
                        {"step": step, "t_s": t_now, "index": incumbent,
                         "measured_s": None, "predicted_s": predicted,
                         "alarm": False}
                    )
                    continue
                alarm = self.detector.update(predicted, value)
                trajectory.append(
                    {"step": step, "t_s": t_now, "index": incumbent,
                     "measured_s": float(value), "predicted_s": predicted,
                     "alarm": bool(alarm)}
                )
                if alarm and len(retunes) < self.settings.max_retunes:
                    event = self._respond(step, t_now, incumbent)
                    if event is not None:
                        retunes.append(event)
                        incumbent = event.new_index
                        predicted = float(
                            self.model.predict_indices([incumbent])[0]
                        )

            campaign_span.set(
                incumbent=incumbent,
                alarms=self.detector.n_alarms,
                retunes=len(retunes),
            )
        return OnlineReport(
            kernel=self.spec.name,
            device=ctx.device.name,
            initial=initial,
            incumbent=incumbent,
            steps=self.settings.steps,
            alarms=self.detector.n_alarms,
            skipped=skipped,
            initial_cost_s=initial_cost,
            monitor_cost_s=monitor_cost,
            retunes=retunes,
            trajectory=trajectory,
        )

    # -- the alarm response ----------------------------------------------------

    def _pick_window(self, exclude: set) -> List[int]:
        """Top-``retune_window`` candidates by the current model, skipping
        ``exclude`` (known invalids, already-measured round-one configs).

        Over-requests by ``len(exclude)`` so exclusions cannot starve the
        window, then truncates back to the window size.
        """
        m = self.settings.retune_window
        pool = self.model.top_m(m + len(exclude)) if exclude else (
            self.model.top_m(m)
        )
        return [int(i) for i in pool if int(i) not in exclude][:m]

    def _refit(self, ms, post_alarm: bool = False) -> bool:
        """Refit on ratio-rescaled stage-one data + fresh measurements.

        ``post_alarm=True`` marks the first refit after a drift alarm:
        the regime just shifted, and both warm starts and member-wise
        freezing *anchor* the refit to the stale pre-shift landscape
        (measured on the drift benchmark: the post-shift optimum ranks
        ~100th under an anchored refit vs ~40th under a reference one —
        off the end of the re-measure window).  That refit therefore
        always runs cold with freezing disabled; the round-two refit is
        an incremental update within the *same* regime, where the warm
        fast path is safe and converges in tens of epochs.

        Window invalids are deliberately NOT folded in as penalty
        samples (the :meth:`PerformanceModel.fit_measurements` policy):
        invalid boundaries run straight through the near-optimal region,
        and penalty targets several times the slowest time bleed into
        exactly the neighborhood the response needs ranked accurately.
        They are remembered in ``_known_invalid`` and *excluded* from
        future windows instead — same budget saving, no fit pollution.
        """
        if self._train_idx is not None and self._train_idx.size:
            fit_idx = np.concatenate([self._train_idx, ms.indices])
            fit_times = np.concatenate(
                [self._train_times * self._scale, ms.times_s]
            )
        else:
            fit_idx, fit_times = ms.indices, ms.times_s
        if fit_idx.size < max(2, self.model.k):
            return False
        t0 = time.perf_counter()
        if post_alarm:
            saved = self.model.freeze_patience
            self.model.freeze_patience = math.inf
            try:
                self.model.fit(fit_idx, fit_times)
            finally:
                self.model.freeze_patience = saved
        else:
            self.model.fit(
                fit_idx, fit_times, warm_start=self.settings.warm_start_refits
            )
        self._fit_wall_s += time.perf_counter() - t0
        inner = self.model._model
        self._fit_epochs += len(getattr(inner, "loss_curve_", ()))
        return True

    def _respond(
        self, step: int, t_now: float, incumbent: int
    ) -> Optional[RetuneEvent]:
        """Incremental recovery: two-round window re-measure + model update.

        Returns None when round one yields no valid measurement (the
        incumbent stands, the detector keeps running un-reset — the next
        alarm retries).
        """
        ctx = self.context
        ledger = ctx.ledger
        tracer = ctx.tracer
        spent0 = ledger.total_s
        self._fit_wall_s = 0.0
        self._fit_epochs = 0
        with tracer.span("online.retune", step=step) as span:
            window = self._pick_window(self._known_invalid)
            if incumbent not in window:
                window.append(int(incumbent))
            ms = self.measurer.measure_batch(window)
            self._known_invalid.update(int(i) for i in ms.invalid_indices)
            if ms.n_valid == 0:
                span.set(failed=True)
                tracer.event("online.retune_failed", step=step)
                return None
            # Global shift estimate.  The incumbent is the one configuration
            # whose model bias we *know* (the detector calibrated it on the
            # quiet stream), so its residual minus that bias isolates the
            # shift.  The window-median fallback works too but folds in
            # top-M selection bias (the window is selected for the most
            # optimistic predictions, inflating measured/predicted).
            preds = self.model.predict_indices(ms.indices)
            inc_pos = np.nonzero(ms.indices == incumbent)[0]
            if inc_pos.size and self.detector.armed:
                pos = int(inc_pos[0])
                ratio = float(
                    ms.times_s[pos]
                    / preds[pos]
                    / math.exp(self.detector._mu)
                )
            else:
                ratio = float(np.median(ms.times_s / preds))
            ratio = max(ratio, 1e-9)
            self._scale *= ratio
            # Round one refit: stage-one knowledge survives as shape
            # (rescaled by the cumulative shift); the window contributes
            # the only post-shift absolute truth available.  This is the
            # quality-critical fit — it ranks the round-two window — so
            # it runs at reference quality (see _refit).
            refit = self._refit(ms, post_alarm=True)
            # Round two: the refitted model re-ranks the space with the
            # post-shift reordering round one revealed — configurations
            # the pre-shift ranking buried can now surface.  Measure a
            # disjoint second window and let the best of both rounds win.
            window2: List[int] = []
            if refit:
                seen = self._known_invalid.union(
                    int(i) for i in window
                ).union(int(i) for i in ms.quarantined_indices)
                window2 = self._pick_window(seen)
                if window2:
                    ms2 = self.measurer.measure_batch(window2)
                    self._known_invalid.update(
                        int(i) for i in ms2.invalid_indices
                    )
                    if ms2.n_valid:
                        ms = ms.merged_with(ms2)
                        self._refit(ms)
            new_index, new_time = ms.best()
            self.detector.reset()
            cost = ledger.total_s - spent0
            span.set(
                window=len(window),
                window2=len(window2),
                ratio=ratio,
                old_index=int(incumbent),
                new_index=int(new_index),
                refit=refit,
            )
        tracer.count("online.retunes")
        event = RetuneEvent(
            step=step,
            at_s=t_now,
            cost_s=cost,
            ratio=ratio,
            old_index=int(incumbent),
            new_index=int(new_index),
            new_time_s=float(new_time),
            fit_wall_s=self._fit_wall_s,
            fit_epochs=self._fit_epochs,
        )
        tracer.event("online.retune", **event.as_dict())
        return event
