"""Parameter-sensitivity analysis: opening the black box.

The paper concedes that its ANN is opaque: "the opaqueness of the
resulting model ... makes it difficult to interpret, and hard to gain
deeper insights into how the different parameters interact" (§5.2).  This
module extracts those insights anyway, from either the fitted model or
measured data:

* :func:`parameter_sensitivity` — for each tuning parameter, the average
  spread of log-time across its values with everything else held fixed
  (a one-at-a-time main effect, averaged over random base points);
* :func:`interaction_strength` — for a parameter pair, how far the joint
  effect deviates from the sum of the individual effects (the paper's
  §5.1 claim that "the parameters are not independent" made quantitative).

Both accept any ``predict(indices) -> seconds`` source, so they work on
the learned model (cheap) or the evaluation oracle (exact).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.params import ParameterSpace


def _predict_log(predict_fn, indices) -> np.ndarray:
    times = np.asarray(predict_fn(np.asarray(indices, dtype=np.int64)), dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.log(times)


def parameter_sensitivity(
    predict_fn: Callable[[Sequence[int]], np.ndarray],
    space: ParameterSpace,
    rng: np.random.Generator,
    n_base: int = 200,
) -> Dict[str, float]:
    """Main effect of each parameter, in log-time units.

    For each of ``n_base`` random configurations, sweep one parameter
    across all its values (others fixed), and record the spread
    (max - min of finite log-times).  The returned value per parameter is
    the mean spread — roughly "how many e-folds of runtime this knob
    controls on its own".  NaN predictions (invalid configurations, when
    the source is an oracle) are skipped within a sweep.
    """
    if n_base < 1:
        raise ValueError("n_base must be >= 1")
    base = space.sample_indices(min(n_base, space.size), rng, replace=False)
    out: Dict[str, float] = {}
    for j, p in enumerate(space.parameters):
        spreads = []
        for b in base:
            digits = list(space.digits_of(int(b)))
            sweep = []
            for d in range(p.cardinality):
                digits[j] = d
                sweep.append(space.index_of_digits(digits))
            logs = _predict_log(predict_fn, sweep)
            finite = logs[np.isfinite(logs)]
            if finite.size >= 2:
                spreads.append(float(finite.max() - finite.min()))
        out[p.name] = float(np.mean(spreads)) if spreads else float("nan")
    return out


def interaction_strength(
    predict_fn: Callable[[Sequence[int]], np.ndarray],
    space: ParameterSpace,
    name_a: str,
    name_b: str,
    rng: np.random.Generator,
    n_base: int = 100,
) -> float:
    """Mean absolute non-additivity of a parameter pair, in log-time units.

    For random base points and random value changes ``a -> a'``,
    ``b -> b'``: if effects were additive in log-time,
    ``f(a',b') - f(a,b) == [f(a',b) - f(a,b)] + [f(a,b') - f(a,b)]``.
    The returned value is the mean |deviation| — zero for independent
    parameters, large where the paper's "cannot vary one at a time"
    warning bites (e.g. ``use_local`` x ``ppt_y``: tile sizes).
    """
    ja = list(space.names).index(name_a)
    jb = list(space.names).index(name_b)
    pa, pb = space.parameters[ja], space.parameters[jb]
    if pa.cardinality < 2 or pb.cardinality < 2:
        raise ValueError("both parameters need at least two values")
    base = space.sample_indices(min(n_base, space.size), rng, replace=False)
    devs = []
    for b in base:
        digits = list(space.digits_of(int(b)))
        da = int(rng.integers(0, pa.cardinality - 1))
        db = int(rng.integers(0, pb.cardinality - 1))
        a0, a1 = digits[ja], (digits[ja] + 1 + da) % pa.cardinality
        b0, b1 = digits[jb], (digits[jb] + 1 + db) % pb.cardinality

        def at(av, bv):
            d = digits.copy()
            d[ja], d[jb] = av, bv
            return space.index_of_digits(d)

        logs = _predict_log(predict_fn, [at(a0, b0), at(a1, b0), at(a0, b1), at(a1, b1)])
        if not np.all(np.isfinite(logs)):
            continue
        f00, f10, f01, f11 = logs
        devs.append(abs((f11 - f00) - ((f10 - f00) + (f01 - f00))))
    return float(np.mean(devs)) if devs else float("nan")


def sensitivity_report(
    sensitivities: Dict[str, float], top: Optional[int] = None
) -> str:
    """Render a sensitivity dict as a sorted text bar list."""
    items = sorted(sensitivities.items(), key=lambda kv: -(kv[1] if kv[1] == kv[1] else -1))
    if top is not None:
        items = items[:top]
    finite = [v for _, v in items if v == v]
    vmax = max(finite) if finite else 1.0
    width = max(len(k) for k, _ in items)
    lines = []
    for name, v in items:
        if v != v:
            lines.append(f"{name.ljust(width)} | n/a")
        else:
            bars = "#" * int(round(24 * v / vmax)) if vmax > 0 else ""
            lines.append(f"{name.ljust(width)} | {bars} {v:.2f}")
    return "\n".join(lines)
