"""Multi-device tuning campaigns: the performance-portability workflow.

The paper's pitch is that re-tuning per device is cheap once it is
automatic.  A :class:`PortabilityCampaign` packages that workflow: tune one
kernel on a set of devices, persist every measurement in a
:class:`~repro.core.results.MeasurementDB`, and report the cross-device
matrix a deployment engineer actually wants — tuned time per device, plus
how badly each device's configuration would behave everywhere else
(the Fig. 1 story, computed for *your* kernel).

:func:`run_campaign_grid` scales the workflow out: every (kernel, device)
cell runs as an independent process with its own DB shard, shards are
merged into the campaign DB at the end, and the grid report carries the
engine's observability counters (throughput, cache-hit rate, simulated
cost) per cell.  Re-running a grid against a populated DB pre-seeds the
shards, so crashed or extended campaigns resume instead of re-measuring.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.measure import EngineStats, Measurer
from repro.core.results import MeasurementDB, TuningResult
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.kernels.base import KernelSpec
from repro.obs import NULL_TRACER, Tracer, run_manifest
from repro.runtime import Context
from repro.simulator.devices import get_device
from repro.simulator.noise import CostLedger


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one campaign.

    Attributes
    ----------
    results:
        Per-device :class:`TuningResult`.
    transplant_matrix:
        ``matrix[target][source]`` = measured time of source-device's tuned
        configuration on the target device (None where it cannot run, NaN
        where tuning failed on the source).
    """

    kernel: str
    results: Dict[str, TuningResult]
    transplant_matrix: Dict[str, Dict[str, Optional[float]]]

    def slowdown(self, target: str, source: str) -> float:
        """Transplant penalty: source's config on target vs target's own."""
        own = self.transplant_matrix[target][target]
        foreign = self.transplant_matrix[target][source]
        if own is None or foreign is None:
            return float("nan")
        return foreign / own

    def report(self) -> str:
        """Human-readable campaign summary."""
        lines = [f"portability campaign: {self.kernel}"]
        for device, r in self.results.items():
            if r.failed:
                lines.append(f"  {device}: tuning FAILED (no valid measurement)")
            else:
                note = f" [degraded: {r.degraded_reason}]" if r.degraded else ""
                lines.append(
                    f"  {device}: {r.best_time_s * 1e3:.3f} ms "
                    f"({r.evaluated_fraction:.2%} of space measured, "
                    f"{r.total_cost_s / 60:.0f} min simulated cost){note}"
                )
        lines.append("")
        devices = list(self.results)
        head = "transplant slowdowns (row: running on, column: tuned for)"
        lines.append(head)
        width = max(len(d) for d in devices) + 2
        lines.append(" " * width + "".join(d.ljust(width) for d in devices))
        for target in devices:
            row = [target.ljust(width)]
            for source in devices:
                s = self.slowdown(target, source)
                row.append(("n/a" if s != s else f"{s:.2f}x").ljust(width))
            lines.append("".join(row))
        return "\n".join(lines)


class PortabilityCampaign:
    """Tune one kernel everywhere; measure every transplant.

    Parameters
    ----------
    spec:
        The kernel to tune.
    devices:
        Device keys or names (``repro.simulator.devices.get_device``).
    settings:
        Tuner budget, shared across devices.
    db:
        Optional measurement store; every measurement of the campaign is
        recorded under (kernel, device).
    faults:
        Optional :class:`~repro.simulator.faults.FaultProfile` (or profile
        name) applied to every device's runtime — the campaign then
        exercises the resilient measurement path on all of them.
    """

    def __init__(
        self,
        spec: KernelSpec,
        devices: Sequence[str],
        settings: Optional[TunerSettings] = None,
        db: Optional[MeasurementDB] = None,
        faults=None,
    ):
        if not devices:
            raise ValueError("need at least one device")
        self.spec = spec
        self.devices = list(devices)
        self.settings = (
            settings
            if settings is not None
            else TunerSettings(n_train=800, m_candidates=80)
        )
        self.db = db
        self.faults = faults

    def run(self, seed: int = 0) -> CampaignResult:
        results: Dict[str, TuningResult] = {}
        measurers: Dict[str, Measurer] = {}
        for key in self.devices:
            device = get_device(key)
            ctx = Context(device, seed=seed, faults=self.faults)
            # The measurer writes straight through to the campaign DB, so
            # every stage-one/stage-two measurement is durable and a
            # re-run against the same DB serves them back without cost.
            measurer = Measurer(
                ctx, self.spec, repeats=self.settings.repeats, db=self.db
            )
            tuner = MLAutoTuner(ctx, self.spec, self.settings, measurer=measurer)
            results[key] = tuner.tune(np.random.default_rng(seed), model_seed=seed)
            measurers[key] = measurer

        matrix: Dict[str, Dict[str, Optional[float]]] = {}
        for target in self.devices:
            matrix[target] = {}
            for source in self.devices:
                r = results[source]
                if r.failed:
                    matrix[target][source] = float("nan")
                    continue
                t = measurers[target].measure(r.best_index)
                matrix[target][source] = t  # None when invalid on target

        if self.db is not None and self.db.path is not None:
            self.db.save()

        return CampaignResult(
            kernel=self.spec.name, results=results, transplant_matrix=matrix
        )


# -- parallel campaign grids ---------------------------------------------------


@dataclass(frozen=True)
class GridCell:
    """One tuned (kernel, device) pair with its engine telemetry."""

    kernel: str
    device: str
    result: TuningResult
    stats: EngineStats
    ledger: CostLedger


@dataclass(frozen=True)
class GridReport:
    """Outcome of :func:`run_campaign_grid`."""

    cells: Tuple[GridCell, ...]

    @property
    def total_stats(self) -> EngineStats:
        total = EngineStats()
        for cell in self.cells:
            total = total.merge(cell.stats)
        return total

    @property
    def total_cost_s(self) -> float:
        """Simulated wall-clock spent across all cells."""
        return sum(cell.ledger.total_s for cell in self.cells)

    def result(self, kernel: str, device: str) -> TuningResult:
        for cell in self.cells:
            if cell.kernel == kernel and cell.device == device:
                return cell.result
        raise KeyError(f"no cell {kernel}@{device}")

    def report(self) -> str:
        """Human-readable grid summary with engine counters."""
        lines = [f"campaign grid: {len(self.cells)} (kernel, device) cells"]
        for cell in self.cells:
            r = cell.result
            outcome = (
                "tuning FAILED"
                if r.failed
                else f"{r.best_time_s * 1e3:.3f} ms"
            )
            if r.degraded:
                outcome += f" [degraded: {r.degraded_reason}]"
            lines.append(
                f"  {cell.kernel} @ {cell.device}: {outcome}  "
                f"[{cell.stats.n_requested} measurements, "
                f"{cell.stats.cache_hit_rate:.0%} cache hits, "
                f"{cell.stats.configs_per_sec:,.0f} configs/s, "
                f"{cell.ledger.total_s / 60:.0f} min simulated]"
            )
        total = self.total_stats
        lines.append(
            f"  total: {total.n_requested} measurements "
            f"({total.n_simulated} simulated, {total.n_cache_hits} cached, "
            f"{total.n_db_hits} from DB), cache hit rate "
            f"{total.cache_hit_rate:.0%}, "
            f"{total.configs_per_sec:,.0f} configs/s, "
            f"{self.total_cost_s / 60:.0f} min simulated cost"
        )
        if total.n_faults:
            parts = ", ".join(
                f"{k} {v}" for k, v in total.failure_breakdown().items()
            )
            lines.append(f"  faults survived: {parts}")
        return "\n".join(lines)


def _run_grid_cell(payload) -> tuple:
    """Worker for one grid cell; module-level so process pools can pickle it.

    Builds a fresh context + DB-shard-backed measurer, tunes, saves the
    shard, and returns (result, stats, ledger) — everything the parent
    needs, nothing process-bound.  When a trace path is given the worker
    writes its own JSONL trace there (processes cannot share a sink); the
    parent merges the per-worker files afterwards.
    """
    (spec, device_key, settings, seed, shard_path, trace_path, faults,
     strategy) = payload
    device = get_device(device_key)
    shard = MeasurementDB(Path(shard_path)) if shard_path else MeasurementDB()
    if trace_path:
        tracer = Tracer(
            trace_path,
            manifest=run_manifest(
                kernel=spec.name,
                device=device.name,
                settings=asdict(settings),
                seed=seed,
                strategy=strategy,
            ),
        )
    else:
        tracer = NULL_TRACER
    ctx = Context(device, seed=seed, tracer=tracer, faults=faults)
    measurer = Measurer(ctx, spec, repeats=settings.repeats, db=shard)
    if strategy != "ml":
        from repro.core.strategies import SearchSettings, SearchTuner

        search_settings = SearchSettings(
            budget=settings.n_train + settings.m_candidates,
            repeats=settings.repeats,
        )
        tuner = SearchTuner(ctx, spec, strategy, search_settings,
                            measurer=measurer)
    else:
        tuner = MLAutoTuner(ctx, spec, settings, measurer=measurer)
    try:
        result = tuner.tune(np.random.default_rng(seed), model_seed=seed)
    finally:
        tracer.close()
    if shard.path is not None:
        shard.save()
    return result, measurer.stats, ctx.ledger


def run_campaign_grid(
    specs: Sequence[KernelSpec],
    devices: Sequence[str],
    settings: Optional[TunerSettings] = None,
    db: Optional[MeasurementDB] = None,
    max_workers: Optional[int] = None,
    seed: int = 0,
    tracer=None,
    faults=None,
    strategy: str = "ml",
) -> GridReport:
    """Tune every kernel on every device, cells in parallel processes.

    Each (kernel, device) cell is independent, so the grid fans out over a
    process pool; every worker measures against its own on-disk
    :class:`MeasurementDB` shard (JSON writes are not concurrency-safe
    across processes), and the shards are merged into ``db`` afterwards.
    When ``db`` already holds measurements for a cell they pre-seed its
    shard, so an interrupted grid picks up where it stopped.

    ``max_workers <= 1`` runs the cells inline (deterministic debugging,
    no multiprocessing); ``None`` sizes the pool to the grid and machine.

    When an enabled ``tracer`` is given, every worker writes its own JSONL
    trace shard (a file sink cannot be shared across processes) and the
    shards are merged into ``tracer`` afterwards, each record tagged with
    its ``worker="kernel@device"`` cell.

    ``faults`` (a :class:`~repro.simulator.faults.FaultProfile` or profile
    name — picklable, so it crosses the process boundary) arms every
    worker's runtime with the same fault injector; cells then tune through
    the resilient path and their stats carry the fault counters.

    ``strategy`` swaps the per-cell tuner: ``"ml"`` (default) runs the
    paper's two-stage ANN tuner; any strategy-zoo name or ``"bandit"``
    runs a model-free :class:`~repro.core.strategies.SearchTuner` with
    the same measurement allowance (``n_train + m_candidates``).
    """
    specs = list(specs)
    devices = list(devices)
    if not specs or not devices:
        raise ValueError("need at least one kernel and one device")
    if settings is None:
        settings = TunerSettings(n_train=800, m_candidates=80)
    if strategy != "ml":
        from repro.core.strategies import STRATEGY_CHOICES

        if strategy not in STRATEGY_CHOICES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected 'ml' or one of "
                f"{sorted(STRATEGY_CHOICES)}"
            )
    if tracer is None:
        tracer = NULL_TRACER
    cells = [(spec, key) for spec in specs for key in devices]

    tmpdir = Path(tempfile.mkdtemp(prefix="repro-campaign-"))
    try:
        payloads: List[tuple] = []
        for spec, key in cells:
            shard_path = tmpdir / f"{spec.name}-{key}.json"
            if db is not None:
                known = db.table(spec.name, get_device(key).name)
                if known:
                    shard = MeasurementDB(shard_path)
                    shard.put_many(spec.name, get_device(key).name, known)
                    shard.save()
            trace_path = (
                str(tmpdir / f"{spec.name}-{key}.trace.jsonl")
                if tracer.enabled
                else None
            )
            payloads.append(
                (spec, key, settings, seed, str(shard_path), trace_path,
                 faults, strategy)
            )

        with tracer.span("campaign.grid", cells=len(cells)):
            if max_workers is not None and max_workers <= 1:
                outcomes = [_run_grid_cell(p) for p in payloads]
            else:
                workers = max_workers or min(len(payloads), os.cpu_count() or 1)
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(pool.map(_run_grid_cell, payloads))

        grid_cells = []
        for (spec, key), payload, outcome in zip(cells, payloads, outcomes):
            result, stats, ledger = outcome
            if db is not None:
                db.merge_from(MeasurementDB(Path(payload[4])))
            device_name = get_device(key).name
            if payload[5]:
                tracer.merge_file(payload[5], worker=f"{spec.name}@{device_name}")
            grid_cells.append(
                GridCell(
                    kernel=spec.name,
                    device=device_name,
                    result=result,
                    stats=stats,
                    ledger=ledger,
                )
            )
        if db is not None and db.path is not None:
            db.save()
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return GridReport(cells=tuple(grid_cells))
