"""Multi-device tuning campaigns: the performance-portability workflow.

The paper's pitch is that re-tuning per device is cheap once it is
automatic.  A :class:`PortabilityCampaign` packages that workflow: tune one
kernel on a set of devices, persist every measurement in a
:class:`~repro.core.results.MeasurementDB`, and report the cross-device
matrix a deployment engineer actually wants — tuned time per device, plus
how badly each device's configuration would behave everywhere else
(the Fig. 1 story, computed for *your* kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.measure import Measurer
from repro.core.results import MeasurementDB, TuningResult
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.kernels.base import KernelSpec
from repro.runtime import Context
from repro.simulator.devices import get_device


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one campaign.

    Attributes
    ----------
    results:
        Per-device :class:`TuningResult`.
    transplant_matrix:
        ``matrix[target][source]`` = measured time of source-device's tuned
        configuration on the target device (None where it cannot run, NaN
        where tuning failed on the source).
    """

    kernel: str
    results: Dict[str, TuningResult]
    transplant_matrix: Dict[str, Dict[str, Optional[float]]]

    def slowdown(self, target: str, source: str) -> float:
        """Transplant penalty: source's config on target vs target's own."""
        own = self.transplant_matrix[target][target]
        foreign = self.transplant_matrix[target][source]
        if own is None or foreign is None:
            return float("nan")
        return foreign / own

    def report(self) -> str:
        """Human-readable campaign summary."""
        lines = [f"portability campaign: {self.kernel}"]
        for device, r in self.results.items():
            if r.failed:
                lines.append(f"  {device}: tuning FAILED (all stage-2 invalid)")
            else:
                lines.append(
                    f"  {device}: {r.best_time_s * 1e3:.3f} ms "
                    f"({r.evaluated_fraction:.2%} of space measured, "
                    f"{r.total_cost_s / 60:.0f} min simulated cost)"
                )
        lines.append("")
        devices = list(self.results)
        head = "transplant slowdowns (row: running on, column: tuned for)"
        lines.append(head)
        width = max(len(d) for d in devices) + 2
        lines.append(" " * width + "".join(d.ljust(width) for d in devices))
        for target in devices:
            row = [target.ljust(width)]
            for source in devices:
                s = self.slowdown(target, source)
                row.append(("n/a" if s != s else f"{s:.2f}x").ljust(width))
            lines.append("".join(row))
        return "\n".join(lines)


class PortabilityCampaign:
    """Tune one kernel everywhere; measure every transplant.

    Parameters
    ----------
    spec:
        The kernel to tune.
    devices:
        Device keys or names (``repro.simulator.devices.get_device``).
    settings:
        Tuner budget, shared across devices.
    db:
        Optional measurement store; every measurement of the campaign is
        recorded under (kernel, device).
    """

    def __init__(
        self,
        spec: KernelSpec,
        devices: Sequence[str],
        settings: TunerSettings = TunerSettings(n_train=800, m_candidates=80),
        db: Optional[MeasurementDB] = None,
    ):
        if not devices:
            raise ValueError("need at least one device")
        self.spec = spec
        self.devices = list(devices)
        self.settings = settings
        self.db = db

    def _record(self, device_name: str, measurer: Measurer) -> None:
        if self.db is None:
            return
        for index, true_time in measurer._cache.items():
            self.db.put(self.spec.name, device_name, index, true_time)

    def run(self, seed: int = 0) -> CampaignResult:
        results: Dict[str, TuningResult] = {}
        measurers: Dict[str, Measurer] = {}
        for key in self.devices:
            device = get_device(key)
            ctx = Context(device, seed=seed)
            measurer = Measurer(ctx, self.spec, repeats=self.settings.repeats)
            tuner = MLAutoTuner(ctx, self.spec, self.settings, measurer=measurer)
            results[key] = tuner.tune(np.random.default_rng(seed), model_seed=seed)
            measurers[key] = measurer

        matrix: Dict[str, Dict[str, Optional[float]]] = {}
        for target in self.devices:
            matrix[target] = {}
            for source in self.devices:
                r = results[source]
                if r.failed:
                    matrix[target][source] = float("nan")
                    continue
                t = measurers[target].measure(r.best_index)
                matrix[target][source] = t  # None when invalid on target

        for key in self.devices:
            self._record(get_device(key).name, measurers[key])
        if self.db is not None and self.db.path is not None:
            self.db.save()

        return CampaignResult(
            kernel=self.spec.name, results=results, transplant_matrix=matrix
        )
