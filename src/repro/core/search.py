"""Search baselines: exhaustive, random, and one-at-a-time.

Exhaustive search provides the ground-truth optimum for Figs. 1 and 11-13
(feasible only for convolution's 131K space); random search is the
equal-budget control for the two-stage ablation; coordinate descent is the
strategy the paper argues *cannot* work ("since the parameters are not
independent, the best values cannot be found by varying the values of one
parameter at a time", §5.1).

``random_search`` and ``coordinate_descent`` are thin wrappers over the
strategy zoo (:mod:`repro.core.strategies`) — same draws, same
measurements, now with honest accounting: free ``is_valid()`` probes are
reported as ``n_probed`` instead of inflating ``n_measured``, and a
digits tuple already measured in this run (the incumbent included) is
served from the run's memo instead of billing the ledger again.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

import numpy as np

from repro.core.measure import MeasurementSet, Measurer
from repro.core.results import MeasurementDB


def exhaustive_search(
    measurer: Measurer,
    db: Optional[MeasurementDB] = None,
    indices: Optional[Sequence[int]] = None,
    chunk_size: int = 4096,
    checkpoint_every: int = 8,
) -> MeasurementSet:
    """Measure every configuration (or a given subset) once.

    Runs through the vectorized batch engine in ``chunk_size`` slices.
    When a :class:`MeasurementDB` is given (or already attached to the
    measurer) every measurement is recorded in it, already-stored indices
    are served from it without re-measuring, and — if the DB is bound to a
    path — a checkpoint is saved every ``checkpoint_every`` chunks.  Killing
    a sweep and re-running it against the same DB therefore resumes where
    the last checkpoint left off.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    space = measurer.spec.space
    if indices is None:
        indices = range(space.size)
    idx = np.fromiter((int(i) for i in indices), dtype=np.int64)
    if db is None:
        db = measurer.db
    prev_db, measurer.db = measurer.db, db
    durable = db is not None and db.path is not None
    result = MeasurementSet(
        indices=np.empty(0, dtype=np.int64),
        times_s=np.empty(0, dtype=np.float64),
        invalid_indices=np.empty(0, dtype=np.int64),
    )
    tracer = measurer.context.tracer
    try:
        with tracer.span(
            "search.exhaustive", n=int(idx.size), chunk_size=chunk_size
        ) as sp:
            n_checkpoints = 0
            final_chunk_saved = False
            for k, start in enumerate(range(0, idx.size, chunk_size), start=1):
                result = result.merged_with(
                    measurer.measure_batch(idx[start : start + chunk_size])
                )
                final_chunk_saved = False
                if durable and checkpoint_every and k % checkpoint_every == 0:
                    db.save()
                    n_checkpoints += 1
                    final_chunk_saved = True
                    if tracer.enabled:
                        tracer.event(
                            "search.checkpoint",
                            chunk=k,
                            measured=result.n_valid + result.n_invalid,
                        )
            if durable and not final_chunk_saved:
                # The final chunk may have just checkpointed (``k`` on a
                # boundary); saving again would double-count and re-write
                # an identical snapshot.
                db.save()
                n_checkpoints += 1
            sp.set(checkpoints=n_checkpoints)
            tracer.count("search.checkpoints", n_checkpoints)
    finally:
        measurer.db = prev_db
    return result


def random_search(
    measurer: Measurer, budget: int, rng: np.random.Generator
) -> MeasurementSet:
    """Measure ``budget`` uniform random configurations (the Fig. 14
    comparison point: best of 50K random samples)."""
    from repro.core.strategies import RandomStrategy, SearchSettings, run_search

    if budget < 1:
        raise ValueError("budget must be >= 1")
    settings = SearchSettings(budget=budget, batch=budget)
    outcome = run_search(
        measurer, RandomStrategy(measurer, settings), rng, settings
    )
    return outcome.measurements


class CoordinateDescentResult(NamedTuple):
    """Return value of :func:`coordinate_descent`.

    ``n_measured`` counts ledger-charged measurements only;
    ``n_probed`` counts the free static-validity checks of the start
    scan (``is_valid()`` bills nothing since the PR-5 validity split, so
    it must not inflate the measurement count).
    """

    best_index: int
    best_time_s: float
    n_measured: int
    n_probed: int


def coordinate_descent(
    measurer: Measurer,
    rng: np.random.Generator,
    max_sweeps: int = 4,
    start_index: Optional[int] = None,
) -> CoordinateDescentResult:
    """One-parameter-at-a-time greedy search.

    From a random valid starting configuration, repeatedly sweep the
    parameters; for each, try every value with the others held fixed and
    keep the best.  Converges to a point no single-parameter change can
    improve — a local optimum that parameter interactions routinely trap
    far from the global one.

    Returns a :class:`CoordinateDescentResult`; ``best_index`` is ``-1``
    (time NaN) if no valid starting point was found — including a
    caller-supplied ``start_index`` that turns out to be invalid (its
    probe is a real measurement, so it *is* counted in ``n_measured``).

    Trial tuples already measured in this run — including the incumbent
    when a sweep revisits it — are served from the run's memo, so
    ``n_measured`` matches ledger spend.
    """
    from repro.core.strategies import (
        CoordinateDescentStrategy,
        SearchSettings,
        run_search,
    )

    settings = SearchSettings(budget=10**9, batch=4096)
    strategy = CoordinateDescentStrategy(
        measurer, settings, max_sweeps=max_sweeps, start_index=start_index
    )
    outcome = run_search(measurer, strategy, rng, settings)
    if strategy.incumbent < 0 or not np.isfinite(strategy.incumbent_time_s):
        return CoordinateDescentResult(
            -1, float("nan"), outcome.n_measured, strategy.n_probed
        )
    return CoordinateDescentResult(
        strategy.incumbent,
        float(strategy.incumbent_time_s),
        outcome.n_measured,
        strategy.n_probed,
    )
