"""Search baselines: exhaustive, random, and one-at-a-time.

Exhaustive search provides the ground-truth optimum for Figs. 1 and 11-13
(feasible only for convolution's 131K space); random search is the
equal-budget control for the two-stage ablation; coordinate descent is the
strategy the paper argues *cannot* work ("since the parameters are not
independent, the best values cannot be found by varying the values of one
parameter at a time", §5.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.measure import MeasurementSet, Measurer
from repro.core.results import MeasurementDB


def exhaustive_search(
    measurer: Measurer,
    db: Optional[MeasurementDB] = None,
    indices: Optional[Sequence[int]] = None,
) -> MeasurementSet:
    """Measure every configuration (or a given subset) once.

    Optionally records each measurement in a :class:`MeasurementDB` so the
    (expensive) ground truth is computed once per (kernel, device).
    """
    space = measurer.spec.space
    if indices is None:
        indices = range(space.size)
    ok, times, bad = [], [], []
    kernel = measurer.spec.name
    device = measurer.context.device.name
    for i in indices:
        t = measurer.measure(int(i))
        if db is not None:
            db.put(kernel, device, int(i), t)
        if t is None:
            bad.append(int(i))
        else:
            ok.append(int(i))
            times.append(t)
    return MeasurementSet(
        indices=np.asarray(ok, dtype=np.int64),
        times_s=np.asarray(times, dtype=np.float64),
        invalid_indices=np.asarray(bad, dtype=np.int64),
    )


def random_search(
    measurer: Measurer, budget: int, rng: np.random.Generator
) -> MeasurementSet:
    """Measure ``budget`` uniform random configurations (the Fig. 14
    comparison point: best of 50K random samples)."""
    if budget < 1:
        raise ValueError("budget must be >= 1")
    indices = measurer.spec.space.sample_indices(
        min(budget, measurer.spec.space.size), rng
    )
    return measurer.measure_batch(indices)


def coordinate_descent(
    measurer: Measurer,
    rng: np.random.Generator,
    max_sweeps: int = 4,
    start_index: Optional[int] = None,
) -> tuple:
    """One-parameter-at-a-time greedy search.

    From a random valid starting configuration, repeatedly sweep the
    parameters; for each, try every value with the others held fixed and
    keep the best.  Converges to a point no single-parameter change can
    improve — a local optimum that parameter interactions routinely trap
    far from the global one.

    Returns ``(best_index, best_time_s, n_measured)``; ``best_index`` is
    ``-1`` if no valid starting point was found.
    """
    space = measurer.spec.space
    n_measured = 0

    if start_index is None:
        start_index = -1
        for i in space.sample_indices(min(200, space.size), rng):
            n_measured += 1
            if measurer.is_valid(int(i)):
                start_index = int(i)
                break
        if start_index < 0:
            return -1, float("nan"), n_measured

    digits = list(space.digits_of(start_index))
    best_time = measurer.measure(start_index)
    n_measured += 1
    assert best_time is not None

    for _ in range(max_sweeps):
        improved = False
        for j, p in enumerate(space.parameters):
            best_d = digits[j]
            for d in range(p.cardinality):
                if d == digits[j]:
                    continue
                trial = digits.copy()
                trial[j] = d
                t = measurer.measure(space.index_of_digits(trial))
                n_measured += 1
                if t is not None and t < best_time:
                    best_time = t
                    best_d = d
                    improved = True
            digits[j] = best_d
        if not improved:
            break
    return space.index_of_digits(digits), float(best_time), n_measured
