"""Search baselines: exhaustive, random, and one-at-a-time.

Exhaustive search provides the ground-truth optimum for Figs. 1 and 11-13
(feasible only for convolution's 131K space); random search is the
equal-budget control for the two-stage ablation; coordinate descent is the
strategy the paper argues *cannot* work ("since the parameters are not
independent, the best values cannot be found by varying the values of one
parameter at a time", §5.1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.measure import MeasurementSet, Measurer
from repro.core.results import MeasurementDB


def exhaustive_search(
    measurer: Measurer,
    db: Optional[MeasurementDB] = None,
    indices: Optional[Sequence[int]] = None,
    chunk_size: int = 4096,
    checkpoint_every: int = 8,
) -> MeasurementSet:
    """Measure every configuration (or a given subset) once.

    Runs through the vectorized batch engine in ``chunk_size`` slices.
    When a :class:`MeasurementDB` is given (or already attached to the
    measurer) every measurement is recorded in it, already-stored indices
    are served from it without re-measuring, and — if the DB is bound to a
    path — a checkpoint is saved every ``checkpoint_every`` chunks.  Killing
    a sweep and re-running it against the same DB therefore resumes where
    the last checkpoint left off.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    space = measurer.spec.space
    if indices is None:
        indices = range(space.size)
    idx = np.fromiter((int(i) for i in indices), dtype=np.int64)
    if db is None:
        db = measurer.db
    prev_db, measurer.db = measurer.db, db
    durable = db is not None and db.path is not None
    result = MeasurementSet(
        indices=np.empty(0, dtype=np.int64),
        times_s=np.empty(0, dtype=np.float64),
        invalid_indices=np.empty(0, dtype=np.int64),
    )
    tracer = measurer.context.tracer
    try:
        with tracer.span(
            "search.exhaustive", n=int(idx.size), chunk_size=chunk_size
        ) as sp:
            n_checkpoints = 0
            for k, start in enumerate(range(0, idx.size, chunk_size), start=1):
                result = result.merged_with(
                    measurer.measure_batch(idx[start : start + chunk_size])
                )
                if durable and checkpoint_every and k % checkpoint_every == 0:
                    db.save()
                    n_checkpoints += 1
                    if tracer.enabled:
                        tracer.event(
                            "search.checkpoint",
                            chunk=k,
                            measured=result.n_valid + result.n_invalid,
                        )
            if durable:
                db.save()
                n_checkpoints += 1
            sp.set(checkpoints=n_checkpoints)
            tracer.count("search.checkpoints", n_checkpoints)
    finally:
        measurer.db = prev_db
    return result


def random_search(
    measurer: Measurer, budget: int, rng: np.random.Generator
) -> MeasurementSet:
    """Measure ``budget`` uniform random configurations (the Fig. 14
    comparison point: best of 50K random samples)."""
    if budget < 1:
        raise ValueError("budget must be >= 1")
    indices = measurer.spec.space.sample_indices(
        min(budget, measurer.spec.space.size), rng
    )
    return measurer.measure_batch(indices)


def coordinate_descent(
    measurer: Measurer,
    rng: np.random.Generator,
    max_sweeps: int = 4,
    start_index: Optional[int] = None,
) -> tuple:
    """One-parameter-at-a-time greedy search.

    From a random valid starting configuration, repeatedly sweep the
    parameters; for each, try every value with the others held fixed and
    keep the best.  Converges to a point no single-parameter change can
    improve — a local optimum that parameter interactions routinely trap
    far from the global one.

    Returns ``(best_index, best_time_s, n_measured)``; ``best_index`` is
    ``-1`` (time NaN) if no valid starting point was found — including a
    caller-supplied ``start_index`` that turns out to be invalid.
    """
    space = measurer.spec.space
    n_measured = 0

    if start_index is None:
        start_index = -1
        for i in space.sample_indices(min(200, space.size), rng):
            n_measured += 1
            if measurer.is_valid(int(i)):
                start_index = int(i)
                break
        if start_index < 0:
            return -1, float("nan"), n_measured

    digits = list(space.digits_of(start_index))
    best_time = measurer.measure(start_index)
    n_measured += 1
    if best_time is None:
        # A caller-supplied start_index may be invalid on this device;
        # treat it like the no-valid-start path (the probe above is still
        # counted — it burned a measurement).
        return -1, float("nan"), n_measured

    for _ in range(max_sweeps):
        improved = False
        for j, p in enumerate(space.parameters):
            best_d = digits[j]
            for d in range(p.cardinality):
                if d == digits[j]:
                    continue
                trial = digits.copy()
                trial[j] = d
                t = measurer.measure(space.index_of_digits(trial))
                n_measured += 1
                if t is not None and t < best_time:
                    best_time = t
                    best_d = d
                    improved = True
            digits[j] = best_d
        if not improved:
            break
    return space.index_of_digits(digits), float(best_time), n_measured
