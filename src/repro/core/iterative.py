"""Iterative refinement: spend the measurement budget in rounds.

An extension beyond the paper's one-shot pipeline: instead of measuring N
random configurations and then the model's top-M once, alternate —

    round 1: measure a random batch, train;
    round r: measure a mix of the current model's favourites
             (exploitation) and fresh random configurations (exploration),
             retrain on everything so far;
    finally: return the best configuration ever measured.

Each round's model has seen the previous rounds' most informative region
(near its own minimum), which is where ranking precision matters for the
final pick.  The ``exploration`` fraction guards against the §7 failure
mode: a model that funnels every slot into an invalid region gets fresh
random evidence about the rest of the space next round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.measure import MeasurementSet, Measurer
from repro.core.model import PerformanceModel
from repro.core.results import TuningResult
from repro.core.sweep import SweepSettings
from repro.kernels.base import KernelSpec
from repro.runtime import Context


@dataclass(frozen=True)
class IterativeSettings:
    """Budget layout for the iterative tuner.

    ``total_budget`` measurements are split into an initial random batch
    (``initial_fraction``) and ``rounds`` equal refinement rounds, each
    spending ``exploration`` of its slots on fresh random configurations.
    """

    total_budget: int = 1200
    rounds: int = 3
    initial_fraction: float = 0.4
    exploration: float = 0.2
    k_bag: int = 11
    #: Prediction-sweep engine knobs for every round's model.
    sweep: SweepSettings = field(default_factory=SweepSettings)
    #: Ensemble training engine for every round's model ("adaptive" or
    #: "classic" — see :class:`repro.ml.ensemble.EnsembleMLPRegressor`).
    fit_mode: str = "adaptive"

    def __post_init__(self):
        if self.fit_mode not in ("adaptive", "classic"):
            raise ValueError(
                f"fit_mode must be 'adaptive' or 'classic', got {self.fit_mode!r}"
            )
        if self.total_budget < 50:
            raise ValueError("total_budget must be >= 50")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0.0 < self.initial_fraction < 1.0:
            raise ValueError("initial_fraction must be in (0, 1)")
        if not 0.0 <= self.exploration < 1.0:
            raise ValueError("exploration must be in [0, 1)")

    @property
    def initial_batch(self) -> int:
        return int(self.total_budget * self.initial_fraction)

    @property
    def round_batch(self) -> int:
        return (self.total_budget - self.initial_batch) // self.rounds


class IterativeTuner:
    """Round-based auto-tuner sharing the one-shot tuner's components."""

    def __init__(
        self,
        context: Context,
        spec: KernelSpec,
        settings: IterativeSettings = IterativeSettings(),
        measurer: Optional[Measurer] = None,
    ):
        self.context = context
        self.spec = spec
        self.settings = settings
        self.measurer = measurer or Measurer(context, spec)
        self.history: List[MeasurementSet] = []
        self.model: Optional[PerformanceModel] = None

    def _all_measurements(self) -> MeasurementSet:
        merged = self.history[0]
        for ms in self.history[1:]:
            merged = merged.merged_with(ms)
        return merged

    def tune(self, rng: np.random.Generator, model_seed: Optional[int] = None) -> TuningResult:
        s = self.settings
        space = self.spec.space
        tracer = self.context.tracer
        # Per-run cost: the ledger is cumulative across the context's
        # lifetime, so report the delta (same contract as MLAutoTuner).
        cost0 = self.context.ledger.total_s
        stats0 = self.measurer.stats
        self.measurer.stats = type(stats0)()

        with tracer.span(
            "tune.iterative", kernel=self.spec.name, device=self.context.device.name
        ):
            with tracer.span("stage1.measure"):
                self.history = [
                    self.measurer.sample_and_measure(s.initial_batch, rng)
                ]

            for r in range(s.rounds):
                with tracer.span("round", number=r + 1):
                    data = self._all_measurements()
                    if data.n_valid < max(11, s.k_bag):
                        # Not enough signal yet: spend the round exploring.
                        self.history.append(
                            self.measurer.sample_and_measure(s.round_batch, rng)
                        )
                        continue
                    self.model = PerformanceModel(
                        space, k=s.k_bag, seed=model_seed, tracer=tracer,
                        sweep=s.sweep, fit_mode=s.fit_mode,
                    )
                    self.model.fit(data.indices, data.times_s)

                    n_explore = int(s.round_batch * s.exploration)
                    n_exploit = s.round_batch - n_explore
                    seen = set(int(i) for i in data.indices) | set(
                        int(i) for i in data.invalid_indices
                    )
                    # Exploit: the best-predicted configurations not yet
                    # measured.
                    proposals = self.model.top_m(n_exploit + len(seen))
                    fresh = [
                        int(i) for i in proposals if int(i) not in seen
                    ][:n_exploit]
                    batch = list(fresh)
                    if n_explore > 0:
                        batch.extend(
                            int(i) for i in space.sample_indices(n_explore, rng)
                        )
                    self.history.append(self.measurer.measure_batch(batch))

        final = self._all_measurements()
        degraded, reason = False, ""
        if final.n_valid == 0:
            best_index, best_time = -1, float("nan")
            degraded, reason = True, "no_valid_measurements"
        else:
            best_index, best_time = final.best()
        run_stats = self.measurer.stats
        self.measurer.stats = stats0.merge(run_stats)
        breakdown = run_stats.failure_breakdown()
        if degraded:
            tracer.count("tuner.degraded")
            tracer.event("tuner.degraded", reason=reason)
        measured = final.n_valid + final.n_invalid + final.n_quarantined
        return TuningResult(
            kernel=self.spec.name,
            device=self.context.device.name,
            best_index=best_index,
            best_time_s=best_time,
            n_trained=final.n_valid,
            n_stage2=measured - (
                self.history[0].n_valid
                + self.history[0].n_invalid
                + self.history[0].n_quarantined
            ),
            stage2_invalid=sum(ms.n_invalid for ms in self.history[1:]),
            evaluated_fraction=measured / space.size,
            total_cost_s=self.context.ledger.total_s - cost0,
            degraded=degraded,
            degraded_reason=reason,
            failure_breakdown=breakdown,
        )
