"""Input-aware performance modelling (§8 future work, implemented).

The paper's model is trained per problem size; its future work proposes
"integrating problem parameters into the performance model".  Here the
feature vector is extended with the numeric fields of the kernel's problem
dataclass (log2-scaled — image edges, volume edges, disparity ranges are
all scale parameters), and training samples may come from *several*
problem sizes.  The resulting model transfers: it can rank configurations
for a problem size it never measured, so re-tuning for a new input needs
only the cheap stage-two measurements.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.encoding import ConfigEncoder
from repro.kernels.base import KernelSpec
from repro.ml.ensemble import EnsembleMLPRegressor


def problem_features(problem) -> np.ndarray:
    """log2 of every numeric field of a problem dataclass."""
    if not dataclasses.is_dataclass(problem):
        raise TypeError(f"expected a problem dataclass, got {type(problem)!r}")
    values = []
    for f in dataclasses.fields(problem):
        v = getattr(problem, f.name)
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            continue
        if v <= 0:
            raise ValueError(f"problem field {f.name} must be positive, got {v}")
        values.append(math.log2(v))
    if not values:
        raise ValueError("problem has no numeric fields to featurize")
    return np.asarray(values, dtype=np.float64)


class InputAwareModel:
    """Performance model over (problem, configuration) pairs.

    Parameters
    ----------
    spec_factory:
        ``problem -> KernelSpec``; every produced spec must share the same
        parameter space structure (true for all the paper's benchmarks —
        the space depends on the kernel, not the input).
    k, seed:
        Ensemble size / reproducibility, as in
        :class:`~repro.core.model.PerformanceModel`.
    """

    def __init__(
        self,
        spec_factory: Callable[[object], KernelSpec],
        k: int = 11,
        seed: Optional[int] = None,
    ):
        self.spec_factory = spec_factory
        self.k = k
        self.seed = seed
        self._specs: Dict[tuple, KernelSpec] = {}
        self._encoder: Optional[ConfigEncoder] = None
        self._model: Optional[EnsembleMLPRegressor] = None

    def spec_for(self, problem) -> KernelSpec:
        key = dataclasses.astuple(problem)
        if key not in self._specs:
            spec = self.spec_factory(problem)
            if self._encoder is None:
                self._encoder = ConfigEncoder(spec.space)
            elif spec.space.names != self._encoder.space.names:
                raise ValueError("problem variants must share a parameter space")
            self._specs[key] = spec
        return self._specs[key]

    def _features(self, problem, indices: Sequence[int]) -> np.ndarray:
        spec = self.spec_for(problem)
        Xc = self._encoder.encode_indices(indices)
        Xp = np.tile(problem_features(problem), (Xc.shape[0], 1))
        return np.concatenate([Xc, Xp], axis=1)

    def fit(
        self, samples: Sequence[Tuple[object, int, float]]
    ) -> "InputAwareModel":
        """Train on (problem, configuration index, measured seconds) triples."""
        if len(samples) < max(2, self.k):
            raise ValueError(f"need at least {max(2, self.k)} samples")
        by_problem: Dict[tuple, List[Tuple[int, float]]] = {}
        problems: Dict[tuple, object] = {}
        for problem, index, t in samples:
            if t <= 0:
                raise ValueError("times must be positive")
            key = dataclasses.astuple(problem)
            by_problem.setdefault(key, []).append((int(index), float(t)))
            problems[key] = problem
        blocks = []
        targets = []
        for key, pairs in by_problem.items():
            idx = np.array([p[0] for p in pairs], dtype=np.int64)
            t = np.array([p[1] for p in pairs], dtype=np.float64)
            blocks.append(self._features(problems[key], idx))
            targets.append(np.log(t))
        X = np.concatenate(blocks, axis=0)
        y = np.concatenate(targets)
        self._model = EnsembleMLPRegressor(k=self.k, seed=self.seed)
        self._model.fit(X, y)
        return self

    def predict(self, problem, indices: Sequence[int]) -> np.ndarray:
        """Predicted seconds for configurations of a (possibly unseen)
        problem size."""
        if self._model is None:
            raise RuntimeError("predict() before fit()")
        return np.exp(self._model.predict(self._features(problem, indices)))

    def top_m(self, problem, m: int) -> np.ndarray:
        """The m lowest-predicted configuration indices for ``problem``."""
        if m < 1:
            raise ValueError("m must be >= 1")
        spec = self.spec_for(problem)
        indices = np.arange(spec.space.size, dtype=np.int64)
        chunk = 1 << 17
        best_idx: List[np.ndarray] = []
        best_pred: List[np.ndarray] = []
        for start in range(0, indices.shape[0], chunk):
            part = indices[start : start + chunk]
            pred = self.predict(problem, part)
            take = np.argpartition(pred, min(m, part.shape[0]) - 1)[:m]
            best_idx.append(part[take])
            best_pred.append(pred[take])
        idx = np.concatenate(best_idx)
        pred = np.concatenate(best_pred)
        order = np.argsort(pred, kind="stable")[:m]
        return idx[order]
