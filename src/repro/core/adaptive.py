"""Principled stage-two sizing (§5.3's proposed improvement, implemented).

The paper picks M ad hoc (10-300) and notes: "by making assumptions about
the distribution of the execution times, as well as the distribution of
prediction errors, this ad-hoc method could be replaced with a more
principled one where one could determine values for M so that the samples
in the second stage contains the optimal one with a given probability."

This module does exactly that.  The bagged ensemble provides, for each
candidate, both a mean prediction and a member-disagreement spread; with a
Gaussian error assumption in log space, Monte-Carlo sampling over plausible
"true" orderings yields the distribution of the rank (under the predicted
order) at which the actual best candidate sits.  ``choose_m`` returns the
smallest M whose top-M window captures the sampled best with the requested
probability.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.model import PerformanceModel


def rank_of_true_best_samples(
    mean_log: np.ndarray,
    std_log: np.ndarray,
    rng: np.random.Generator,
    n_samples: int = 256,
) -> np.ndarray:
    """Sampled ranks (0-based, in predicted order) of the true best.

    ``mean_log``/``std_log`` describe the model's posterior over each
    candidate's log-time; each Monte-Carlo draw perturbs every candidate
    and records where the draw's winner sits in the *predicted* ordering.
    """
    mean_log = np.asarray(mean_log, dtype=np.float64)
    std_log = np.asarray(std_log, dtype=np.float64)
    if mean_log.shape != std_log.shape or mean_log.ndim != 1:
        raise ValueError("mean_log and std_log must be equal-length vectors")
    if np.any(std_log < 0):
        raise ValueError("std_log must be non-negative")
    order = np.argsort(mean_log, kind="stable")
    rank_by_candidate = np.empty_like(order)
    rank_by_candidate[order] = np.arange(order.shape[0])
    draws = mean_log[None, :] + std_log[None, :] * rng.standard_normal(
        (n_samples, mean_log.shape[0])
    )
    winners = np.argmin(draws, axis=1)
    return rank_by_candidate[winners]


def choose_m(
    model: PerformanceModel,
    candidate_indices: Sequence[int],
    target_probability: float = 0.9,
    rng: Optional[np.random.Generator] = None,
    n_samples: int = 256,
    min_std_log: float = 0.02,
    m_cap: Optional[int] = None,
) -> int:
    """Smallest M such that the top-M predicted window contains the true
    best candidate with probability ``target_probability`` (under the
    ensemble's own uncertainty).

    Parameters
    ----------
    model:
        A fitted :class:`PerformanceModel` whose underlying ensemble
        exposes ``predict_std`` (the default bagged ANN does).
    candidate_indices:
        The pool to consider — typically the model's top-``m_cap`` window,
        since ranks beyond a few hundred never matter.
    min_std_log:
        Uncertainty floor: even where members agree perfectly, measurement
        noise and the idiosyncratic error floor remain.
    """
    if not 0.0 < target_probability < 1.0:
        raise ValueError("target_probability must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng()
    candidate_indices = np.asarray(candidate_indices, dtype=np.int64)
    if candidate_indices.size == 0:
        raise ValueError("empty candidate pool")

    X = model.encoder.encode_indices(candidate_indices)
    inner = model._model
    if hasattr(inner, "predict_mean_std"):
        # One forward pass for both moments (the default ensemble and
        # BaggedRegressor); predict + predict_std would run it twice.
        mean_log, std_log = inner.predict_mean_std(X)
        std_log = np.maximum(std_log, min_std_log)
    elif hasattr(inner, "predict_std"):
        mean_log = inner.predict(X)
        std_log = np.maximum(inner.predict_std(X), min_std_log)
    else:
        raise TypeError("model's regressor does not expose predict_std")
    if not model.log_transform:
        # Work in log space regardless: convert multiplicative spread.
        std_log = std_log / np.maximum(mean_log, 1e-12)
        mean_log = np.log(np.maximum(mean_log, 1e-300))

    ranks = rank_of_true_best_samples(mean_log, std_log, rng, n_samples=n_samples)
    m = int(np.quantile(ranks, target_probability)) + 1
    if m_cap is not None:
        m = min(m, int(m_cap))
    return max(1, m)
