"""The performance model: features -> predicted execution time.

Wraps the paper's learning recipe (§5.2):

* encode tuning-parameter values (:class:`~repro.core.encoding.ConfigEncoder`);
* regress ``log(time)`` — minimizing squared error of the log equals
  minimizing *relative* error of the time, which is what matters when
  kernel times span orders of magnitude;
* bagging: k = 11 networks on leave-one-fold-out splits, mean prediction;
* invalid configurations are simply not in the training set ("we deal with
  this issue by simply ignoring these configurations").

Whole-space sweeps route through the fused
:class:`~repro.core.sweep.PredictionSweeper` engine whenever the default
bagged-ANN ensemble is fitted (custom model families fall back to the
chunked reference path, kept as :meth:`predict_indices_reference` and as
the benchmark gate's baseline).
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.encoding import ConfigEncoder
from repro.core.measure import MeasurementSet
from repro.core.sweep import PredictionSweeper, SweepSettings, select_top_m
from repro.ml.bagging import BaggedRegressor
from repro.ml.ensemble import EnsembleMLPRegressor
from repro.ml.metrics import mean_relative_error
from repro.ml.mlp import MLPRegressor
from repro.obs import NULL_TRACER
from repro.params import ParameterSpace

#: Chunk size for whole-space prediction sweeps (reference path).
PREDICT_CHUNK = 1 << 17


def default_ann_factory(seed: Optional[int] = None) -> Callable[[], MLPRegressor]:
    """Factory producing the paper's network (30 sigmoid hidden units),
    varying the weight-init seed per bagging member."""
    counter = [0 if seed is None else seed]

    def make() -> MLPRegressor:
        counter[0] += 1
        return MLPRegressor(hidden=(30,), activation="sigmoid", seed=counter[0])

    return make


class PerformanceModel:
    """Bagged-ANN regressor from configuration indices to seconds.

    Parameters
    ----------
    space:
        The kernel's parameter space (defines the encoding).
    k:
        Bagging folds (11 in the paper).  ``k=1`` trains a single network
        on all data (the bagging ablation's baseline).
    base_factory:
        Override the member-model factory (used by the model-family
        ablation to swap in trees/kNN/linear models).
    seed:
        Controls fold assignment and member weight initialization.
    sweep:
        :class:`~repro.core.sweep.SweepSettings` for whole-space
        prediction sweeps (chunking, float32 lane, process sharding;
        ``enabled=False`` forces the chunked reference path).
    fit_mode:
        Training engine for the default ensemble: ``"adaptive"``
        (member-wise convergence freezing, the default) or
        ``"classic"`` (the original global-stop loop).  Ignored for
        custom model families.
    freeze_patience / freeze_tol:
        Optional overrides for the adaptive engine's per-member freeze
        thresholds (``None`` keeps the ensemble defaults;
        ``freeze_patience=math.inf`` disables freezing entirely, which
        is bit-identical to ``"classic"``).
    """

    def __init__(
        self,
        space: ParameterSpace,
        k: int = 11,
        base_factory: Optional[Callable[[], object]] = None,
        seed: Optional[int] = None,
        log_transform: bool = True,
        tracer=None,
        sweep: Optional[SweepSettings] = None,
        fit_mode: str = "adaptive",
        freeze_patience: Optional[float] = None,
        freeze_tol: Optional[float] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if fit_mode not in ("adaptive", "classic"):
            raise ValueError(
                f"fit_mode must be 'adaptive' or 'classic', got {fit_mode!r}"
            )
        self.space = space
        self.encoder = ConfigEncoder(space)
        self.k = k
        self.seed = seed
        self.log_transform = log_transform
        self.sweep = sweep if sweep is not None else SweepSettings()
        self.fit_mode = fit_mode
        self.freeze_patience = freeze_patience
        self.freeze_tol = freeze_tol
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._custom_factory = base_factory is not None
        self._factory = base_factory or default_ann_factory(seed)
        self._model = None
        self._sweeper: Optional[PredictionSweeper] = None

    # -- training -----------------------------------------------------------

    def fit(
        self,
        indices: Sequence[int],
        times_s: Sequence[float],
        warm_start: bool = False,
    ) -> "PerformanceModel":
        """Train on measured (configuration index, seconds) pairs.

        ``warm_start=True`` re-trains the existing default-ensemble
        weights in place (drift refits: tens of epochs instead of
        thousands); it silently degrades to a cold fit when there is no
        compatible previous model (first fit, custom factory, or a
        changed ``k``) — the ensemble itself warns and re-initializes
        if the feature width moved underneath it.
        """
        indices = np.asarray(indices, dtype=np.int64)
        times = np.asarray(times_s, dtype=np.float64)
        if indices.shape[0] != times.shape[0]:
            raise ValueError("indices and times must align")
        if indices.shape[0] < max(2, self.k):
            raise ValueError(
                f"need at least {max(2, self.k)} samples, got {indices.shape[0]}"
            )
        if np.any(times <= 0):
            raise ValueError("times must be positive")
        X = self.encoder.encode_indices(indices)
        y = np.log(times) if self.log_transform else times
        if self._custom_factory:
            if self.k == 1:
                self._model = self._factory()
            else:
                self._model = BaggedRegressor(self._factory, k=self.k, seed=self.seed)
            self._model.fit(X, y)
        else:
            reuse = (
                warm_start
                and isinstance(self._model, EnsembleMLPRegressor)
                and self._model.k == self.k
            )
            if not reuse:
                # Default path: the vectorized ensemble trainer (identical
                # leave-one-fold-out semantics, one batched fit).
                self._model = EnsembleMLPRegressor(
                    k=self.k,
                    seed=self.seed,
                    fit_mode=self.fit_mode,
                    freeze_patience=self.freeze_patience,
                    freeze_tol=self.freeze_tol,
                )
                self._model.tracer = self.tracer
            self._model.fit_mode = self.fit_mode
            self._model.freeze_patience = self.freeze_patience
            self._model.freeze_tol = self.freeze_tol
            self._model.fit(X, y, warm_start=reuse)
        self._sweeper = None  # compiled against the previous weights
        return self

    def fit_measurements(
        self, ms: MeasurementSet, invalid_penalty: Optional[float] = None
    ) -> "PerformanceModel":
        """Train from a measurement batch.

        ``invalid_penalty=None`` is the paper's policy: invalid
        configurations are simply absent from the training set (§5.2) —
        with the §7 consequence that the model may extrapolate low times
        into invalid regions.  A float trains the alternative policy: each
        invalid configuration becomes a sample with target
        ``invalid_penalty x (slowest valid time)``, teaching the model that
        those regions are to be avoided.
        """
        if invalid_penalty is None or ms.n_invalid == 0:
            return self.fit(ms.indices, ms.times_s)
        if invalid_penalty <= 1.0:
            raise ValueError("invalid_penalty must exceed 1 (x slowest valid)")
        if ms.n_valid == 0:
            raise ValueError("cannot penalize invalids with no valid samples")
        penalty_time = float(ms.times_s.max()) * invalid_penalty
        indices = np.concatenate([ms.indices, ms.invalid_indices])
        times = np.concatenate(
            [ms.times_s, np.full(ms.n_invalid, penalty_time)]
        )
        return self.fit(indices, times)

    # -- prediction -----------------------------------------------------------

    def _get_sweeper(self) -> Optional[PredictionSweeper]:
        """The compiled sweep engine, or None when it does not apply
        (disabled, or a custom model family with no weights to fold)."""
        if not self.sweep.enabled or not isinstance(
            self._model, EnsembleMLPRegressor
        ):
            return None
        if self._sweeper is None:
            self._sweeper = PredictionSweeper(
                self.space,
                self.encoder,
                self._model,
                log_transform=self.log_transform,
                settings=self.sweep,
                tracer=self.tracer,
            )
        return self._sweeper

    def predict_indices(self, indices: Sequence[int]) -> np.ndarray:
        """Predicted seconds for configuration indices.

        Routes through the fused sweep engine for the default ensemble;
        falls back to :meth:`predict_indices_reference` otherwise."""
        if self._model is None:
            raise RuntimeError("predict before fit")
        sweeper = self._get_sweeper()
        if sweeper is None:
            return self.predict_indices_reference(indices)
        indices = np.asarray(indices, dtype=np.int64)
        with self.tracer.span(
            "model.predict", n=indices.shape[0], engine="sweep"
        ):
            out = sweeper.predict(indices)
        self.tracer.count("model.configs_predicted", int(indices.shape[0]))
        return out

    def predict_indices_reference(self, indices: Sequence[int]) -> np.ndarray:
        """The chunked float64 reference path (pre-sweeper semantics).

        Kept verbatim as the parity/performance baseline: the sweep
        engine's float64 lane is gated against it at <= 1e-9 relative
        (``benchmarks/test_perf_predict_sweep.py``)."""
        if self._model is None:
            raise RuntimeError("predict before fit")
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty(indices.shape[0], dtype=np.float64)
        with self.tracer.span(
            "model.predict", n=indices.shape[0], engine="reference"
        ):
            for start in range(0, indices.shape[0], PREDICT_CHUNK):
                chunk = indices[start : start + PREDICT_CHUNK]
                X = self.encoder.encode_indices(chunk)
                y = self._model.predict(X)
                out[start : start + chunk.shape[0]] = (
                    np.exp(y) if self.log_transform else y
                )
        self.tracer.count("model.configs_predicted", int(indices.shape[0]))
        return out

    def predict_all(self) -> np.ndarray:
        """Predicted seconds for the *entire* space (index-aligned)."""
        sweeper = self._get_sweeper() if self._model is not None else None
        if sweeper is None:
            return self.predict_indices(np.arange(self.space.size, dtype=np.int64))
        with self.tracer.span(
            "model.predict", n=self.space.size, engine="sweep"
        ):
            out = sweeper.predict(None)  # range work: no arange materialized
        self.tracer.count("model.configs_predicted", self.space.size)
        return out

    def top_m(self, m: int, candidate_indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Indices of the ``m`` lowest-predicted configurations.

        Sweeps the whole space by default (feasible because evaluating the
        model is orders of magnitude faster than running kernels, §5.3) —
        streamingly, so memory stays O(chunk + m) rather than O(space).
        Prediction ties are broken by smallest configuration index, making
        the result deterministic and identical across the streaming and
        reference paths, chunk sizes, and worker counts.
        """
        if m < 1:
            raise ValueError("m must be >= 1")
        if self._model is None:
            raise RuntimeError("predict before fit")
        sweeper = self._get_sweeper()
        if sweeper is not None:
            n = (
                self.space.size
                if candidate_indices is None
                else len(candidate_indices)
            )
            with self.tracer.span("model.top_m", m=m, n=n, engine="sweep"):
                out = sweeper.top_m(m, candidate_indices)
            self.tracer.count("model.configs_predicted", int(n))
            return out
        if candidate_indices is None:
            candidate_indices = np.arange(self.space.size, dtype=np.int64)
        else:
            candidate_indices = np.asarray(candidate_indices, dtype=np.int64)
        pred = self.predict_indices(candidate_indices)
        _, idx = select_top_m(pred, candidate_indices, min(m, pred.shape[0]))
        return idx

    # -- evaluation -------------------------------------------------------------

    def relative_error(self, indices: Sequence[int], actual_s: Sequence[float]) -> float:
        """Mean relative error on held-out measurements (the Figs. 4-7 metric)."""
        return mean_relative_error(self.predict_indices(indices), actual_s)

    # -- persistence -------------------------------------------------------------

    def save(self, path) -> None:
        """Persist a fitted default-ensemble model to an ``.npz`` file.

        Only the built-in bagged-ANN path is serializable (custom factory
        models bring their own persistence).  ``log_transform`` is written
        into the archive's meta block: a model trained on ``log(time)``
        loaded without the exp-back step (or vice versa) silently returns
        garbage, so :meth:`load` must be able to validate it.
        """
        if self._model is None:
            raise RuntimeError("save() before fit()")
        if self._custom_factory or not isinstance(self._model, EnsembleMLPRegressor):
            raise TypeError("only the default bagged-ANN model is serializable")
        self._model.save(path, log_transform=self.log_transform)

    @classmethod
    def load(
        cls,
        space: ParameterSpace,
        path,
        log_transform: Optional[bool] = None,
        sweep: Optional[SweepSettings] = None,
    ) -> "PerformanceModel":
        """Restore a model saved with :meth:`save`, bound to ``space``.

        The caller must supply the same parameter space the model was
        trained against (the weights encode its feature layout).

        ``log_transform=None`` (the default) trusts the archive's
        persisted flag.  Passing an explicit bool that *contradicts* a
        persisted flag raises — loading a ``log_transform=False`` model
        under ``True`` would silently exponentiate its predictions.
        Legacy archives without the flag fall back to the caller's value
        (default True) with a warning.
        """
        inner = EnsembleMLPRegressor.load(path)
        persisted = inner.saved_log_transform
        if persisted is None:
            if log_transform is None:
                warnings.warn(
                    f"{path}: archive predates log_transform persistence; "
                    "assuming log_transform=True (pass log_transform= "
                    "explicitly to silence)",
                    stacklevel=2,
                )
                log_transform = True
        else:
            if log_transform is not None and bool(log_transform) != persisted:
                raise ValueError(
                    f"{path}: archive was saved with log_transform="
                    f"{persisted} but caller requested {bool(log_transform)}; "
                    "predictions would be silently "
                    + ("exponentiated" if log_transform else "left in log space")
                )
            log_transform = persisted
        model = cls(space, log_transform=log_transform, sweep=sweep)
        expected = model.encoder.n_features
        got = inner.n_features
        if got != expected:
            raise ValueError(
                f"saved model expects {got} features but this space encodes "
                f"{expected}; wrong kernel?"
            )
        model._model = inner
        model.k = inner.k
        return model
