"""Fused, parallel, streaming whole-space prediction sweeps.

Stage two of the auto-tuner is "feasible because evaluating the model is
orders of magnitude faster than running kernels" (§5.3) — so the model
sweep over the 131K/655K/2.36M-point spaces must run as fast as the
hardware allows.  The reference path
(:meth:`~repro.core.model.PerformanceModel.predict_indices_reference`)
walks the space in float64 chunks, re-allocating a feature matrix, a
scaled copy, and half a dozen ``(k, n, hidden)`` temporaries per chunk.
This module replaces it with a *compiled* pipeline:

* **scaler folding** — the fitted ``StandardScaler``s disappear at
  compile time.  The float32 lane folds them into the ensemble weights
  (x-scaler into ``W1``/``b1``, y-scaler and the ensemble mean into
  ``W2``/``b2``); the exact float64 lane folds the x-scaler into the
  encoder's per-parameter value LUTs instead — algebraically the same
  fold, but it preserves the reference's float32 cast point bit-for-bit,
  which is what keeps the lane within 1e-9 of the chunked path;
* **fused buffers** — LUT columns are gathered straight into one reused
  ``(chunk, n_features)`` buffer (no ``np.concatenate``), the forward
  pass runs in-place through preallocated ``(k, chunk, hidden)``
  activations, and the sigmoid is applied as five in-place ufunc calls;
* **streaming top-M** — candidates are reduced per chunk with a bounded
  ``argpartition`` merge, so selecting the M best of a 2.36M-point space
  needs O(chunk + M) memory instead of a full-space prediction array,
  with an exact ``(prediction, index)`` tie-break that makes the result
  deterministic and independent of chunking or sharding;
* **process sharding** — the index range fans out over a
  ``ProcessPoolExecutor`` (the ``run_campaign_grid`` worker pattern:
  compiled state is pickled to each worker, per-shard JSONL traces are
  merged back with ``worker=`` tags), and per-shard spans/counters land
  in the parent tracer.

``benchmarks/test_perf_predict_sweep.py`` gates the engine at >= 4x over
the reference path on a >= 500K-configuration sweep with float64 parity
<= 1e-9 relative; see ``docs/performance.md`` for the folding math and
the float32 trade-offs.
"""

from __future__ import annotations

import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.activations import get_activation
from repro.obs import NULL_TRACER, Tracer, run_manifest

#: Default sweep chunk: large enough to keep BLAS busy, small enough that
#: the (k, chunk, hidden) activation buffer stays cache-resident
#: (11 x 16384 x 30 float32 ~ 21 MiB).
SWEEP_CHUNK = 1 << 14

#: Below this many configurations a process pool costs more than it buys.
MIN_CONFIGS_PER_WORKER = 1 << 15


@dataclass(frozen=True)
class SweepSettings:
    """Knobs of the prediction sweep engine.

    Attributes
    ----------
    chunk:
        Configurations per fused pipeline pass.
    dtype:
        ``"float64"`` is the exact lane (matches the reference chunked
        path to <= 1e-9 relative); ``"float32"`` is the opt-in fast lane
        (scalers folded into the weights, everything f32 end-to-end;
        top-M overlap with the exact lane is gated at >= 99%).
    workers:
        Process count for sharded sweeps; ``0``/``1`` run inline.  Only
        sweeps with at least ``MIN_CONFIGS_PER_WORKER`` configurations
        per worker actually fan out.
    enabled:
        ``False`` forces every caller back onto the reference chunked
        path (the benchmark gate's baseline, and a safety valve).
    """

    chunk: int = SWEEP_CHUNK
    dtype: str = "float64"
    workers: int = 0
    enabled: bool = True

    def __post_init__(self):
        if self.chunk < 256:
            raise ValueError("chunk must be >= 256")
        if self.dtype not in ("float64", "float32"):
            raise ValueError(f"dtype must be float64 or float32, got {self.dtype!r}")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")


def select_top_m(
    values: np.ndarray, indices: np.ndarray, m: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The ``m`` smallest ``(value, index)`` pairs, sorted, ties exact.

    Unlike a bare ``argpartition`` (whose boundary is arbitrary among
    tied values), ties at the m-th value are broken by smallest index —
    so the result is a pure function of the *set* of pairs, independent
    of input order, chunking, or shard boundaries.  That property is
    what makes the streaming/ sharded top-M equal to the reference
    selection element-for-element.
    """
    values = np.asarray(values)
    indices = np.asarray(indices)
    n = values.shape[0]
    if m < 0:
        raise ValueError("m must be >= 0")
    m = min(m, n)
    if m == 0:
        return values[:0].copy(), indices[:0].copy()
    if m == n:
        order = np.lexsort((indices, values))
        return values[order], indices[order]
    part = np.argpartition(values, m - 1)
    kth = values[part[m - 1]]
    smaller = np.flatnonzero(values < kth)
    ties = np.flatnonzero(values == kth)
    need = m - smaller.shape[0]
    if need < ties.shape[0]:
        ties = ties[np.argsort(indices[ties], kind="stable")[:need]]
    pick = np.concatenate([smaller, ties])
    order = np.lexsort((indices[pick], values[pick]))
    return values[pick][order], indices[pick][order]


class _TopMAccumulator:
    """Bounded streaming top-M: absorbs chunk-level prunes, merges when
    the pending pool exceeds ~2x its target, O(m + chunk) memory."""

    def __init__(self, m: int, chunk: int):
        self.m = m
        self._merge_at = 2 * max(m, chunk)
        self._values: List[np.ndarray] = []
        self._indices: List[np.ndarray] = []
        self._pending = 0

    def absorb(self, values: np.ndarray, indices: np.ndarray) -> None:
        v, i = select_top_m(values, indices, self.m)
        self._values.append(v)
        self._indices.append(i)
        self._pending += v.shape[0]
        if self._pending > self._merge_at:
            self._merge()

    def _merge(self) -> None:
        v, i = select_top_m(
            np.concatenate(self._values), np.concatenate(self._indices), self.m
        )
        self._values, self._indices = [v], [i]
        self._pending = v.shape[0]

    def result(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self._values:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        self._merge()
        return self._values[0], self._indices[0]


class _Buffers:
    """Preallocated per-process scratch for the fused pipeline."""

    __slots__ = ("X", "A1", "P", "dig", "rem", "pred")

    def __init__(self, chunk: int, d: int, k: int, h: int):
        self.X = np.empty((chunk, d), dtype=np.float32)
        self.A1 = np.empty((k, chunk, h), dtype=np.float32)
        self.P = np.empty((k, chunk, 1), dtype=np.float32)
        self.dig = np.empty(chunk, dtype=np.int64)
        self.rem = np.empty(chunk, dtype=np.int64)
        self.pred = np.empty(chunk, dtype=np.float64)


class CompiledSweep:
    """Picklable compiled state of one fitted ensemble over one space.

    Everything a worker process needs is plain ndarrays + scalars: the
    mixed-radix place values of the space, the (scaler-folded) encoder
    LUTs, the member weights, and the final affine/exp step.  Compile
    once, sweep many times, ship to process-pool shards by pickle (a few
    kilobytes).
    """

    def __init__(
        self,
        places: np.ndarray,
        luts: List[np.ndarray],
        col_slices: List[Tuple[int, int]],
        W1: np.ndarray,
        b1: np.ndarray,
        W2: np.ndarray,
        b2: np.ndarray,
        out_scale: float,
        out_shift: float,
        log_transform: bool,
        activation: str,
        dtype: str,
        space_size: int,
    ):
        self.places = places
        self.luts = luts
        self.col_slices = col_slices
        self.W1, self.b1, self.W2, self.b2 = W1, b1, W2, b2
        self.out_scale = out_scale
        self.out_shift = out_shift
        self.log_transform = log_transform
        self.activation = activation
        self.dtype = dtype
        self.space_size = space_size
        self.k, self.d, self.h = W1.shape

    # -- compilation -----------------------------------------------------------

    @classmethod
    def compile(
        cls, space, encoder, ensemble, log_transform: bool, dtype: str
    ) -> "CompiledSweep":
        """Fold scalers into weights/LUTs; freeze everything to arrays.

        ``dtype="float64"`` (exact lane): the x-scaler is applied to the
        LUT *entries* in float64 and the result rounded to float32 —
        bit-identical features to the reference's scale-then-cast, since
        each feature value exists only in the small per-parameter LUT.
        The y-scaler and the ensemble mean stay a float64 affine applied
        once per chunk (the reference also leaves float32 at that point).

        ``dtype="float32"``: the textbook fold.  With ``s = x_scale``,
        ``u = x_mean``:  ``W1' = diag(1/s) W1`` and ``b1' = b1 - (u/s) W1``
        make ``X W1' + b1' == ((X - u)/s) W1 + b1`` exactly; on the output
        side ``W2' = (y_scale/k) W2`` and a scalar
        ``b2' = y_scale * mean(b2) + y_mean`` absorb the member mean and
        the y-scaler, so the whole forward pass is two GEMMs, one
        activation, and one exp.
        """
        W1, b1, W2, b2 = ensemble._params
        x_mean = np.asarray(ensemble._x_scaler.mean_, dtype=np.float64)
        x_scale = np.asarray(ensemble._x_scaler.scale_, dtype=np.float64)
        y_mean = float(np.ravel(ensemble._y_scaler.mean_)[0])
        y_scale = float(np.ravel(ensemble._y_scaler.scale_)[0])
        k = int(W1.shape[0])

        col_slices: List[Tuple[int, int]] = []
        start = 0
        for lut in encoder._columns:
            col_slices.append((start, start + lut.shape[1]))
            start += lut.shape[1]

        places = np.asarray(space._places, dtype=np.int64)

        if dtype == "float64":
            # Exact lane: x-scaler folded into the LUT entries, weights
            # untouched, y affine + exp applied in float64 per chunk.
            luts = [
                ((lut - x_mean[c0:c1]) / x_scale[c0:c1]).astype(np.float32)
                for lut, (c0, c1) in zip(encoder._columns, col_slices)
            ]
            return cls(
                places, luts, col_slices,
                np.ascontiguousarray(W1, dtype=np.float32),
                np.ascontiguousarray(b1, dtype=np.float32),
                np.ascontiguousarray(W2, dtype=np.float32),
                np.ascontiguousarray(b2, dtype=np.float32),
                out_scale=y_scale, out_shift=y_mean,
                log_transform=log_transform,
                activation=ensemble.activation.name,
                dtype=dtype, space_size=space.size,
            )

        # float32 lane: scalers folded into the weights themselves.
        luts = [lut.astype(np.float32) for lut in encoder._columns]
        fW1 = (np.asarray(W1, dtype=np.float64) / x_scale[None, :, None]).astype(
            np.float32
        )
        fb1 = (
            np.asarray(b1, dtype=np.float64)
            - np.einsum("d,kdh->kh", x_mean / x_scale, np.asarray(W1, np.float64))
        ).astype(np.float32)
        fW2 = (np.asarray(W2, dtype=np.float64) * (y_scale / k)).astype(np.float32)
        shift = y_scale * float(np.mean(np.asarray(b2, dtype=np.float64))) + y_mean
        return cls(
            places, luts, col_slices,
            fW1, fb1, fW2,
            np.zeros(k, dtype=np.float32),  # b2 absorbed into out_shift
            out_scale=1.0, out_shift=shift,
            log_transform=log_transform,
            activation=ensemble.activation.name,
            dtype=dtype, space_size=space.size,
        )

    # -- the fused chunk kernel ------------------------------------------------

    def make_buffers(self, chunk: int) -> _Buffers:
        return _Buffers(chunk, self.d, self.k, self.h)

    def _forward_chunk(self, idx_chunk: np.ndarray, bufs: _Buffers) -> np.ndarray:
        """Fused encode -> forward -> mean -> exp for one chunk.

        Returns a float64 view ``bufs.pred[:c]`` — valid until the next
        call on the same buffers.
        """
        c = idx_chunk.shape[0]
        if c != bufs.X.shape[0]:
            # Partial (final) chunk: exact-size buffers keep every view
            # contiguous, so matmul hits the same BLAS path as a full
            # chunk (and as the reference) — one extra allocation per
            # sweep, never per chunk.
            bufs = _Buffers(c, self.d, self.k, self.h)
        Xv = bufs.X
        A1v = bufs.A1
        Pv = bufs.P
        rem, dig = bufs.rem, bufs.dig

        # Mixed-radix decompose + gather scaled LUT rows, no concatenate.
        np.copyto(rem, idx_chunk)
        for place, lut, (c0, c1) in zip(self.places, self.luts, self.col_slices):
            np.floor_divide(rem, place, out=dig)
            np.remainder(rem, place, out=rem)
            Xv[:, c0:c1] = lut[dig]

        np.matmul(Xv, self.W1, out=A1v)
        A1v += self.b1[:, None, :]
        if self.activation == "sigmoid":
            # In-place sigmoid: the exact ufunc sequence of
            # ml.activations.Sigmoid.value, minus the six temporaries.
            np.clip(A1v, -40.0, 40.0, out=A1v)
            np.negative(A1v, out=A1v)
            np.exp(A1v, out=A1v)
            A1v += 1.0
            np.reciprocal(A1v, out=A1v)
        else:
            A1v[...] = get_activation(self.activation).value(A1v)
        np.matmul(A1v, self.W2[:, :, None], out=Pv)

        out = bufs.pred[:c]
        if self.dtype == "float64":
            member = Pv[:, :, 0] + self.b2[:, None]  # float32 (k, c)
            np.mean(member, axis=0, dtype=np.float64, out=out)
            if self.out_scale != 1.0 or self.out_shift != 0.0:
                out *= self.out_scale
                out += self.out_shift
        else:
            np.sum(Pv[:, :, 0], axis=0, dtype=np.float32, out=bufs.X[:c, 0])
            s = bufs.X[:c, 0]
            s += np.float32(self.out_shift)
            out[:] = s  # upcast to the float64 output contract
        if self.log_transform:
            np.exp(out, out=out)
        return out

    # -- single-process sweeps -------------------------------------------------

    def _iter_chunks(self, work, chunk: int):
        """Yield index chunks for ('range', lo, hi) or ('array', arr) work."""
        kind = work[0]
        if kind == "range":
            _, lo, hi = work
            for s in range(lo, hi, chunk):
                yield np.arange(s, min(s + chunk, hi), dtype=np.int64)
        else:
            arr = work[1]
            for s in range(0, arr.shape[0], chunk):
                yield arr[s : s + chunk]

    def work_size(self, work) -> int:
        return work[2] - work[1] if work[0] == "range" else int(work[1].shape[0])

    def predict_work(
        self, work, chunk: int, bufs: Optional[_Buffers] = None
    ) -> np.ndarray:
        """Predicted seconds for one work unit (single process)."""
        n = self.work_size(work)
        out = np.empty(n, dtype=np.float64)
        if n == 0:
            return out
        bufs = bufs or self.make_buffers(chunk)
        pos = 0
        for idx_chunk in self._iter_chunks(work, chunk):
            c = idx_chunk.shape[0]
            out[pos : pos + c] = self._forward_chunk(idx_chunk, bufs)
            pos += c
        return out

    def top_m_work(
        self, work, m: int, chunk: int, bufs: Optional[_Buffers] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Streaming (values, indices) of the m best of one work unit."""
        n = self.work_size(work)
        if n == 0 or m == 0:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        if m >= n:
            # Full-order request: streaming buys nothing, select once.
            pred = self.predict_work(work, chunk, bufs)
            idx = (
                np.arange(work[1], work[2], dtype=np.int64)
                if work[0] == "range"
                else np.asarray(work[1], dtype=np.int64)
            )
            return select_top_m(pred, idx, m)
        bufs = bufs or self.make_buffers(chunk)
        acc = _TopMAccumulator(m, chunk)
        for idx_chunk in self._iter_chunks(work, chunk):
            acc.absorb(self._forward_chunk(idx_chunk, bufs), idx_chunk)
        return acc.result()


def _sweep_worker(payload) -> tuple:
    """One shard of a parallel sweep; module-level so pools can pickle it.

    Returns ``(result, n_configs, n_chunks)``; when a trace path is given
    the shard writes its own JSONL trace (processes cannot share a sink)
    for the parent to merge, tagged ``worker="sweep-shard-<i>"``.
    """
    compiled, op, work, m, chunk, trace_path, shard_id = payload
    if trace_path:
        tracer = Tracer(
            trace_path,
            manifest=run_manifest(op=op, shard=shard_id, dtype=compiled.dtype),
        )
    else:
        tracer = NULL_TRACER
    n = compiled.work_size(work)
    n_chunks = -(-n // chunk) if n else 0
    try:
        with tracer.span("sweep.shard", shard=shard_id, op=op, n=n):
            if op == "top_m":
                result = compiled.top_m_work(work, m, chunk)
            else:
                result = compiled.predict_work(work, chunk)
        tracer.count("sweep.configs", n)
        tracer.count("sweep.chunks", n_chunks)
    finally:
        tracer.close()
    return result, n, n_chunks


class PredictionSweeper:
    """The user-facing sweep engine bound to one fitted model.

    Parameters
    ----------
    space / encoder / ensemble:
        The parameter space, its feature encoder, and the fitted
        :class:`~repro.ml.ensemble.EnsembleMLPRegressor`.
    log_transform:
        Whether predictions are ``exp``-ed back to seconds.
    settings:
        Chunking / dtype / sharding knobs (:class:`SweepSettings`).
    tracer:
        Observability sink; spans ``sweep.compile``, ``sweep.predict``,
        ``sweep.top_m`` and (per shard) ``sweep.shard``, counters
        ``sweep.configs`` / ``sweep.chunks`` / ``sweep.shards``.
    """

    def __init__(
        self,
        space,
        encoder,
        ensemble,
        log_transform: bool = True,
        settings: Optional[SweepSettings] = None,
        tracer=None,
    ):
        self.settings = settings if settings is not None else SweepSettings()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.space = space
        with self.tracer.span(
            "sweep.compile", dtype=self.settings.dtype, k=ensemble.k
        ):
            self.compiled = CompiledSweep.compile(
                space, encoder, ensemble, log_transform, self.settings.dtype
            )
        self._bufs: Optional[_Buffers] = None

    # -- internals -------------------------------------------------------------

    def _buffers(self) -> _Buffers:
        if self._bufs is None:
            self._bufs = self.compiled.make_buffers(self.settings.chunk)
        return self._bufs

    def _as_work(self, indices: Optional[Sequence[int]]):
        if indices is None:
            return ("range", 0, self.space.size)
        idx = np.ascontiguousarray(indices, dtype=np.int64)
        if idx.ndim != 1:
            raise ValueError(f"indices must be 1-D, got shape {idx.shape}")
        if idx.size and (idx.min() < 0 or idx.max() >= self.space.size):
            raise IndexError("index out of range")
        return ("array", idx)

    def _n_shards(self, n: int) -> int:
        w = self.settings.workers
        if w <= 1:
            return 1
        return max(1, min(w, n // MIN_CONFIGS_PER_WORKER))

    def _split_work(self, work, shards: int):
        if work[0] == "range":
            _, lo, hi = work
            bounds = np.linspace(lo, hi, shards + 1).astype(np.int64)
            return [("range", int(a), int(b)) for a, b in zip(bounds, bounds[1:])]
        parts = np.array_split(work[1], shards)
        return [("array", p) for p in parts]

    def _run_sharded(self, op: str, work, m: int) -> list:
        """Fan one sweep out over a process pool; returns per-shard results."""
        shards = self._n_shards(self.compiled.work_size(work))
        chunk = self.settings.chunk
        if shards == 1:
            result, n, n_chunks = _sweep_worker(
                (self.compiled, op, work, m, chunk, None, 0)
            )
            self.tracer.count("sweep.configs", n)
            self.tracer.count("sweep.chunks", n_chunks)
            return [result]
        tmpdir = None
        trace_paths: List[Optional[str]] = [None] * shards
        if self.tracer.enabled:
            tmpdir = Path(tempfile.mkdtemp(prefix="repro-sweep-"))
            trace_paths = [str(tmpdir / f"shard-{i}.trace.jsonl") for i in range(shards)]
        try:
            payloads = [
                (self.compiled, op, shard_work, m, chunk, trace_paths[i], i)
                for i, shard_work in enumerate(self._split_work(work, shards))
            ]
            with ProcessPoolExecutor(max_workers=shards) as pool:
                outcomes = list(pool.map(_sweep_worker, payloads))
            self.tracer.count("sweep.shards", shards)
            for i, (_, n, n_chunks) in enumerate(outcomes):
                self.tracer.count("sweep.configs", n)
                self.tracer.count("sweep.chunks", n_chunks)
                if trace_paths[i]:
                    self.tracer.merge_file(trace_paths[i], worker=f"sweep-shard-{i}")
            return [result for result, _, _ in outcomes]
        finally:
            if tmpdir is not None:
                shutil.rmtree(tmpdir, ignore_errors=True)

    # -- public API ------------------------------------------------------------

    def predict(self, indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Predicted seconds for ``indices`` (None = the whole space)."""
        work = self._as_work(indices)
        n = self.compiled.work_size(work)
        with self.tracer.span(
            "sweep.predict", n=n, dtype=self.settings.dtype,
            workers=self._n_shards(n),
        ):
            if self._n_shards(n) == 1:
                # Inline fast path keeps the per-instance buffers warm.
                out = self.compiled.predict_work(
                    work, self.settings.chunk, self._buffers()
                )
                self.tracer.count("sweep.configs", n)
                self.tracer.count("sweep.chunks", -(-n // self.settings.chunk) if n else 0)
                return out
            return np.concatenate(self._run_sharded("predict", work, 0))

    def top_m(
        self, m: int, indices: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Indices of the ``m`` lowest predictions, best first.

        Ties are broken by smallest configuration index, so the result is
        identical across chunk sizes and worker counts.
        """
        if m < 0:
            raise ValueError("m must be >= 0")
        work = self._as_work(indices)
        n = self.compiled.work_size(work)
        m = min(m, n)
        with self.tracer.span(
            "sweep.top_m", n=n, m=m, dtype=self.settings.dtype,
            workers=self._n_shards(n),
        ):
            if self._n_shards(n) == 1:
                _, idx = self.compiled.top_m_work(
                    work, m, self.settings.chunk, self._buffers()
                )
                self.tracer.count("sweep.configs", n)
                self.tracer.count("sweep.chunks", -(-n // self.settings.chunk) if n else 0)
                return idx
            shard_results = self._run_sharded("top_m", work, m)
            values = np.concatenate([v for v, _ in shard_results])
            idxs = np.concatenate([i for _, i in shard_results])
            _, idx = select_top_m(values, idxs, m)
            return idx
