"""The two-stage ML auto-tuner (§5 / Fig. 3 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.measure import MeasurementSet, Measurer
from repro.core.model import PerformanceModel
from repro.core.results import TuningResult
from repro.core.sweep import SweepSettings
from repro.kernels.base import KernelSpec
from repro.runtime import Context


@dataclass(frozen=True)
class TunerSettings:
    """Knobs of the auto-tuner.

    Attributes
    ----------
    n_train:
        Stage-one random configurations to measure (the paper sweeps
        100..4000).
    m_candidates:
        Stage-two candidates: the M lowest-predicted configurations are
        measured for real (the paper uses 10..300).
    k_bag:
        Bagging folds of the ANN ensemble (11 in the paper).
    repeats:
        Launches per measurement (best-of).
    candidate_pool:
        When set, stage two predicts over a uniform random pool of this
        size instead of the whole space — an option for spaces too large
        even for cheap model sweeps.  ``None`` sweeps everything, as the
        paper does.
    filter_known_invalid:
        When True, stage two asks the device's *static* validity rules
        before proposing a candidate (the §7 "better scheme" extension;
        the paper's baseline behaviour is False: invalid candidates waste
        stage-two slots).
    replenish_rounds:
        Stage-one resilience: when invalid (or quarantined) draws leave
        fewer valid measurements than the model needs (``max(2, k_bag)``),
        up to this many extra batches of ``n_train`` random
        configurations are measured — bounded, and charged to the ledger
        like any measurement (§5.2 drops invalids but still trains on
        real samples).  A run that replenished is marked ``degraded``.
    sweep:
        Prediction-sweep engine knobs
        (:class:`~repro.core.sweep.SweepSettings`) passed through to the
        performance model — chunking, the float32 lane, process sharding.
    max_cost_s:
        Optional cap on the *simulated* seconds (ledger spend) this run
        may consume.  ``None`` (the default) reproduces the paper's
        uncapped pipeline.  A capped run never crashes: once the ledger
        delta crosses the cap, remaining stages are skipped and the best
        measurement gathered so far is returned as a ``degraded`` result
        (reason ``budget_exhausted``).  This is the mechanism the
        ``repro.serve`` daemon uses to enforce per-client budgets.
    fit_mode:
        Ensemble training engine: ``"adaptive"`` (member-wise
        convergence freezing, the default) or ``"classic"`` (the
        original global-stop loop, kept as the reference baseline —
        see ``benchmarks/test_perf_fit.py``).
    freeze_patience / freeze_tol:
        Optional adaptive-engine freeze-threshold overrides forwarded
        to the ensemble (``None`` keeps its defaults;
        ``freeze_patience=math.inf`` disables freezing, which is
        bit-identical to ``fit_mode="classic"``).
    """

    n_train: int = 2000
    m_candidates: int = 200
    k_bag: int = 11
    repeats: int = 3
    candidate_pool: Optional[int] = None
    filter_known_invalid: bool = False
    replenish_rounds: int = 4
    sweep: SweepSettings = field(default_factory=SweepSettings)
    max_cost_s: Optional[float] = None
    fit_mode: str = "adaptive"
    freeze_patience: Optional[float] = None
    freeze_tol: Optional[float] = None

    def __post_init__(self):
        if self.n_train < self.k_bag:
            raise ValueError("n_train must be >= k_bag")
        if self.m_candidates < 1:
            raise ValueError("m_candidates must be >= 1")
        if self.replenish_rounds < 0:
            raise ValueError("replenish_rounds must be >= 0")
        if self.max_cost_s is not None and self.max_cost_s <= 0:
            raise ValueError("max_cost_s must be positive (or None)")
        if self.fit_mode not in ("adaptive", "classic"):
            raise ValueError(
                f"fit_mode must be 'adaptive' or 'classic', got {self.fit_mode!r}"
            )


class MLAutoTuner:
    """Ties the pipeline together for one (kernel, device) pair.

    Usage::

        ctx = Context(NVIDIA_K40, seed=7)
        tuner = MLAutoTuner(ctx, ConvolutionKernel(), TunerSettings())
        result = tuner.tune(rng=np.random.default_rng(7))
    """

    def __init__(
        self,
        context: Context,
        spec: KernelSpec,
        settings: Optional[TunerSettings] = None,
        measurer: Optional[Measurer] = None,
    ):
        # A TunerSettings default argument would be instantiated once at
        # class-definition time and shared by every tuner; build per
        # instance instead.
        settings = settings if settings is not None else TunerSettings()
        self.context = context
        self.spec = spec
        self.settings = settings
        self.measurer = measurer or Measurer(context, spec, repeats=settings.repeats)
        self.model: Optional[PerformanceModel] = None
        self.training_set: Optional[MeasurementSet] = None
        self.stage2_set: Optional[MeasurementSet] = None
        #: Extra stage-one batches measured because invalids/quarantines
        #: left fewer than ``max(2, k_bag)`` valid samples (see tune()).
        self.replenish_rounds_used: int = 0

    # -- stages ------------------------------------------------------------

    def collect_training_data(
        self, rng: np.random.Generator, cost0: Optional[float] = None
    ) -> MeasurementSet:
        """Stage one: measure ``n_train`` uniform random configurations.

        When invalid or quarantined draws leave fewer valid measurements
        than the model can train on (``max(2, k_bag)``), replacement
        batches are sampled and measured — at most
        ``settings.replenish_rounds`` of them, every one charged to the
        ledger — before giving up.  Previously this starvation crashed
        ``train_model`` with "increase n_train".

        ``cost0`` is the ledger snapshot the run's budget
        (``settings.max_cost_s``) is measured against; replenish rounds
        stop once the budget is spent (the batch already measured stays —
        its cost is charged either way).
        """
        need = max(2, self.settings.k_bag)
        train = self.measurer.sample_and_measure(self.settings.n_train, rng)
        rounds = 0
        tracer = self.context.tracer
        while (
            train.n_valid < need
            and rounds < self.settings.replenish_rounds
            and not self._budget_spent(cost0)
        ):
            rounds += 1
            with tracer.span("stage1.replenish", round=rounds) as sp:
                extra = self.measurer.sample_and_measure(
                    self.settings.n_train, rng
                )
                sp.set(n_valid=extra.n_valid, n_invalid=extra.n_invalid)
            train = train.merged_with(extra)
        self.replenish_rounds_used = rounds
        self.training_set = train
        return train

    def _budget_spent(self, cost0: Optional[float]) -> bool:
        """True when this run's ledger spend has crossed ``max_cost_s``."""
        budget = self.settings.max_cost_s
        if budget is None or cost0 is None:
            return False
        return self.context.ledger.total_s - cost0 >= budget

    def train_model(self, seed: Optional[int] = None) -> PerformanceModel:
        """Fit the bagged-ANN performance model on the stage-one data."""
        if self.training_set is None:
            raise RuntimeError("collect_training_data() first")
        if self.training_set.n_valid < max(2, self.settings.k_bag):
            raise RuntimeError(
                f"only {self.training_set.n_valid} valid training samples "
                f"after {self.replenish_rounds_used} replenish rounds; "
                "increase n_train or replenish_rounds"
            )
        self.model = PerformanceModel(
            self.spec.space,
            k=self.settings.k_bag,
            seed=seed,
            tracer=self.context.tracer,
            sweep=self.settings.sweep,
            fit_mode=self.settings.fit_mode,
            freeze_patience=self.settings.freeze_patience,
            freeze_tol=self.settings.freeze_tol,
        )
        self.model.fit_measurements(self.training_set)
        return self.model

    def propose_candidates(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Stage two, part one: the M lowest-predicted configurations."""
        if self.model is None:
            raise RuntimeError("train_model() first")
        pool = None
        if self.settings.candidate_pool is not None:
            if rng is None:
                raise ValueError("candidate_pool sampling needs an rng")
            pool = self.spec.space.sample_indices(
                min(self.settings.candidate_pool, self.spec.space.size), rng
            )
        if not self.settings.filter_known_invalid:
            return self.model.top_m(self.settings.m_candidates, pool)
        # Extension (§7 future work): over-propose, keep the best M that
        # pass the device's validity check, escalating the window until M
        # valid candidates are found (a model that ranks a large invalid
        # region first would otherwise still starve stage two).  Each
        # escalation used to re-predict the entire space; now the sorted
        # order is computed at most twice (an optimistic 4M prefix, then —
        # only if the model really did rank a huge invalid region first —
        # the full order once), and each round merely widens the
        # validity-filter window over it.  Deterministic tie-breaking
        # makes the optimistic prefix an exact prefix of the full order.
        m = self.settings.m_candidates
        limit = self.spec.space.size if pool is None else len(pool)
        checked = min(m * 4, limit)
        order = self.model.top_m(checked, pool)
        keep = [int(i) for i in order if self.measurer.is_valid(int(i))]
        while len(keep) < m and checked < limit:
            if len(order) < limit:
                order = self.model.top_m(limit, pool)
            widened = min(checked * 4, limit)
            keep.extend(
                int(i)
                for i in order[checked:widened]
                if self.measurer.is_valid(int(i))
            )
            checked = widened
        return np.asarray(keep[:m], dtype=np.int64)

    def evaluate_candidates(self, candidates: np.ndarray) -> MeasurementSet:
        """Stage two, part two: measure the proposed configurations."""
        self.stage2_set = self.measurer.measure_batch(candidates)
        return self.stage2_set

    # -- the whole pipeline -----------------------------------------------------

    def tune(self, rng: np.random.Generator, model_seed: Optional[int] = None) -> TuningResult:
        """Run stages one and two; return the tuner's pick.

        The pipeline degrades instead of crashing or going silent:

        * stage one replenishes random samples when invalids (or
          quarantined flaky configurations) starve the training set;
        * when every stage-two candidate fails, the pick falls back to
          the best *stage-one* measurement (a real, measured
          configuration) instead of the paper's "no prediction at all"
          — ``best_index = -1`` only remains when not a single valid
          measurement exists anywhere.

        Either fallback marks the result ``degraded`` with a reason, and
        the fault counters of the measurement engine for *this run* are
        attached as ``failure_breakdown``.
        """
        tracer = self.context.tracer
        # The ledger is cumulative over the context's lifetime; snapshot it
        # so total_cost_s reports *this* run, not every run sharing the
        # context (a second tuner must not be billed for the first).  The
        # engine stats get the same treatment for failure_breakdown.
        cost0 = self.context.ledger.total_s
        stats0 = self.measurer.stats
        self.measurer.stats = type(stats0)()
        with tracer.span(
            "tune", kernel=self.spec.name, device=self.context.device.name
        ):
            with tracer.span("stage1.measure") as sp:
                train = self.collect_training_data(rng, cost0=cost0)
                sp.set(
                    n_valid=train.n_valid,
                    n_invalid=train.n_invalid,
                    replenish_rounds=self.replenish_rounds_used,
                )
            tracer.count("tuner.stage1_valid", train.n_valid)
            tracer.count("tuner.stage1_invalid", train.n_invalid)
            budget_spent = self._budget_spent(cost0)
            if budget_spent:
                # The budget died in stage one: stop measuring, return the
                # best sample already paid for.  Training a model whose
                # candidates we cannot afford to measure would be wasted
                # wall-clock — and a capped request must never crash.
                tracer.event("tuner.budget_exhausted", stage="stage1")
                candidates = np.empty(0, dtype=np.int64)
                stage2 = self.stage2_set = MeasurementSet(
                    indices=np.empty(0, dtype=np.int64),
                    times_s=np.empty(0, dtype=np.float64),
                    invalid_indices=np.empty(0, dtype=np.int64),
                )
            else:
                with tracer.span("stage2.train"):
                    self.train_model(model_seed)
                with tracer.span("stage2.propose") as sp:
                    candidates = self.propose_candidates(rng)
                    sp.set(m=len(candidates))
                with tracer.span("stage2.evaluate") as sp:
                    stage2 = self.evaluate_candidates(candidates)
                    sp.set(n_valid=stage2.n_valid, n_invalid=stage2.n_invalid)
            tracer.count("tuner.stage2_invalid", stage2.n_invalid)

            degraded, reason = False, ""
            if budget_spent:
                if train.n_valid > 0:
                    best_index, best_time = train.best()
                    degraded, reason = True, "budget_exhausted"
                else:
                    best_index, best_time = -1, float("nan")
                    degraded, reason = True, "no_valid_measurements"
            elif stage2.n_valid > 0:
                best_index, best_time = stage2.best()
            elif train.n_valid > 0:
                # Every stage-two candidate failed (invalid, or transient
                # beyond the retry budget).  The best stage-one sample is
                # a real measurement of this kernel on this device — a
                # degraded pick beats no pick (used to raise/return -1).
                best_index, best_time = train.best()
                degraded, reason = True, "stage2_exhausted"
            else:
                best_index, best_time = -1, float("nan")
                degraded, reason = True, "no_valid_measurements"
            if self.replenish_rounds_used and not degraded:
                degraded, reason = True, "stage1_replenished"

        run_stats = self.measurer.stats
        self.measurer.stats = stats0.merge(run_stats)
        breakdown = run_stats.failure_breakdown()
        if self.replenish_rounds_used:
            breakdown["stage1_replenish_rounds"] = self.replenish_rounds_used
        if reason == "stage2_exhausted":
            breakdown["stage2_fallback"] = 1
        if reason == "budget_exhausted":
            breakdown["budget_exhausted"] = 1

        measured = (
            train.n_valid + train.n_invalid + train.n_quarantined
            + stage2.n_valid + stage2.n_invalid + stage2.n_quarantined
        )
        total = stage2.n_valid + stage2.n_invalid
        if total:
            tracer.gauge("tuner.stage2_invalid_rate", stage2.n_invalid / total)
        if degraded:
            tracer.count("tuner.degraded")
            tracer.event("tuner.degraded", reason=reason)
        tracer.gauge("tuner.best_index", best_index)
        return TuningResult(
            kernel=self.spec.name,
            device=self.context.device.name,
            best_index=best_index,
            best_time_s=best_time,
            n_trained=train.n_valid,
            n_stage2=len(candidates),
            stage2_invalid=stage2.n_invalid,
            evaluated_fraction=measured / self.spec.space.size,
            total_cost_s=self.context.ledger.total_s - cost0,
            degraded=degraded,
            degraded_reason=reason,
            failure_breakdown=breakdown,
        )
