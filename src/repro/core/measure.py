"""Measurement loop: configurations in, (time | invalid) out.

The :class:`Measurer` drives the runtime facade exactly the way a
pyopencl-based harness drives real OpenCL — build, enqueue, wait, read the
profiled duration, catch build/launch failures — and memoizes per-
configuration state so re-measuring a configuration only redraws
measurement noise (a real harness would likewise cache compiled binaries).

Two layers sit on top of the single-config path:

* **a durable cache** — when a :class:`~repro.core.results.MeasurementDB`
  is attached, measured values are written through to it and known indices
  are served from it without touching the simulator, the RNG or the cost
  ledger (the real-world analogue: a persisted campaign result needs no
  re-run after a crash);
* **a vectorized batch engine** — :meth:`Measurer.measure_batch` classifies
  a whole index array, evaluates all not-yet-known configurations through
  the simulator's batch API, and draws every noise sample in one RNG call.
  It is bit-identical to looping :meth:`Measurer.measure` — same
  measurements, same ledger totals, same RNG stream consumption — just an
  order of magnitude faster.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.results import MeasurementDB
from repro.kernels.base import KernelSpec
from repro.runtime import (
    BuildError,
    Context,
    DeviceResetError,
    LaunchError,
    Program,
    TimeoutError,
    TransientError,
)
from repro.simulator.executor import execute_batch
from repro.simulator.noise import FAILED_BUILD_COST_S, FAILED_LAUNCH_COST_S
from repro.simulator.validity import STAGE_BUILD_CODE, STAGE_OK_CODE, validate


def _empty_idx() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass
class MeasurementSet:
    """Outcome of measuring a batch of configurations.

    ``indices``/``times_s`` hold the *valid* measurements (aligned);
    ``invalid_indices`` the configurations that failed to build or launch
    *deterministically* (resource limits — re-running cannot help);
    ``quarantined_indices`` the configurations given up on after repeated
    transient failures or hangs (no measurement, but not provably invalid
    — they are missing data, reported separately so the invalid-fraction
    statistics of §5.2 stay about the configuration space, not the rig).
    """

    indices: np.ndarray
    times_s: np.ndarray
    invalid_indices: np.ndarray
    quarantined_indices: np.ndarray = field(default_factory=_empty_idx)

    @property
    def n_valid(self) -> int:
        return int(self.indices.shape[0])

    @property
    def n_invalid(self) -> int:
        return int(self.invalid_indices.shape[0])

    @property
    def n_quarantined(self) -> int:
        return int(self.quarantined_indices.shape[0])

    @property
    def invalid_fraction(self) -> float:
        total = self.n_valid + self.n_invalid
        return self.n_invalid / total if total else 0.0

    def best(self) -> tuple:
        """(index, time) of the fastest valid measurement."""
        if self.n_valid == 0:
            raise ValueError("no valid measurements")
        j = int(np.argmin(self.times_s))
        return int(self.indices[j]), float(self.times_s[j])

    def merged_with(self, other: "MeasurementSet") -> "MeasurementSet":
        return MeasurementSet(
            indices=np.concatenate([self.indices, other.indices]),
            times_s=np.concatenate([self.times_s, other.times_s]),
            invalid_indices=np.concatenate(
                [self.invalid_indices, other.invalid_indices]
            ),
            quarantined_indices=np.concatenate(
                [self.quarantined_indices, other.quarantined_indices]
            ),
        )


@dataclass
class EngineStats:
    """Observability counters of one measurement engine.

    ``n_requested`` splits into simulator evaluations (``n_simulated``),
    in-memory cache hits (``n_cache_hits``) and durable-DB hits
    (``n_db_hits``); ``n_invalid`` counts returned invalids across all
    three.  ``elapsed_s`` is harness wall-clock (not simulated seconds).

    The failure-breakdown counters are only ever non-zero under a fault
    profile: ``n_transient`` transient build/launch failures (device
    resets included), ``n_timeouts`` watchdog-killed hangs, ``n_retries``
    backoff-then-retry cycles the policy spent recovering, and
    ``n_quarantined`` configurations given up on (failed every attempt)
    — reported separately from ``n_invalid``, which stays a statement
    about the configuration space.
    """

    n_requested: int = 0
    n_simulated: int = 0
    n_cache_hits: int = 0
    n_db_hits: int = 0
    n_invalid: int = 0
    n_transient: int = 0
    n_retries: int = 0
    n_timeouts: int = 0
    n_quarantined: int = 0
    elapsed_s: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests served without a simulator evaluation."""
        if self.n_requested == 0:
            return 0.0
        return (self.n_cache_hits + self.n_db_hits) / self.n_requested

    @property
    def configs_per_sec(self) -> float:
        """Measurement throughput in configurations per wall-clock second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.n_requested / self.elapsed_s

    @property
    def n_faults(self) -> int:
        """Total injected failures recovered from or given up on."""
        return self.n_transient + self.n_timeouts

    def failure_breakdown(self) -> dict:
        """The fault counters as a dict; empty when no faults were seen
        (so fault-free reports and results carry no breakdown at all)."""
        pairs = {
            "transient": self.n_transient,
            "timeouts": self.n_timeouts,
            "retries": self.n_retries,
            "quarantined": self.n_quarantined,
        }
        return {k: v for k, v in pairs.items() if v}

    def merge(self, other: "EngineStats") -> "EngineStats":
        return EngineStats(
            n_requested=self.n_requested + other.n_requested,
            n_simulated=self.n_simulated + other.n_simulated,
            n_cache_hits=self.n_cache_hits + other.n_cache_hits,
            n_db_hits=self.n_db_hits + other.n_db_hits,
            n_invalid=self.n_invalid + other.n_invalid,
            n_transient=self.n_transient + other.n_transient,
            n_retries=self.n_retries + other.n_retries,
            n_timeouts=self.n_timeouts + other.n_timeouts,
            n_quarantined=self.n_quarantined + other.n_quarantined,
            elapsed_s=self.elapsed_s + other.elapsed_s,
        )

    def as_dict(self) -> dict:
        return {
            "n_requested": self.n_requested,
            "n_simulated": self.n_simulated,
            "n_cache_hits": self.n_cache_hits,
            "n_db_hits": self.n_db_hits,
            "n_invalid": self.n_invalid,
            "n_transient": self.n_transient,
            "n_retries": self.n_retries,
            "n_timeouts": self.n_timeouts,
            "n_quarantined": self.n_quarantined,
            "elapsed_s": self.elapsed_s,
            "cache_hit_rate": self.cache_hit_rate,
            "configs_per_sec": self.configs_per_sec,
        }


def _sequential_sum(start: float, contributions: np.ndarray) -> float:
    """``start + c0 + c1 + ...`` accumulated strictly left to right.

    ``np.sum`` uses pairwise summation, whose rounding differs from the
    scalar path's sequential ``+=``; a running cumulative sum reproduces
    the scalar result bit for bit.
    """
    if contributions.size == 0:
        return start
    return float(np.cumsum(np.concatenate(([start], contributions)))[-1])


# Batch classification codes (internal to measure_batch).
_FRESH, _CACHED, _DB, _DUP = 0, 1, 2, 3


@dataclass(frozen=True)
class RetryPolicy:
    """How the measurer handles injected (transient) failures.

    Attributes
    ----------
    max_attempts:
        Probe attempts per configuration before giving up.  A
        configuration whose every attempt fails transiently (or hangs) is
        *quarantined*: it yields no measurement, is excluded from all
        future attempts, and is reported separately from statically
        invalid configurations.
    backoff_base_s / backoff_multiplier / backoff_max_s:
        Exponential backoff slept between attempts —
        ``min(base * multiplier**(attempt - 1), backoff_max_s)`` —
        charged to the cost ledger's ``retry_s`` bucket (waiting for a
        flaky driver is real tuning-budget time).  The cap matters:
        uncapped growth let a long transient streak charge one enormous
        sleep that blew the per-config budget in a single step.
    launch_timeout_s:
        Watchdog budget per launch, passed to ``Kernel.enqueue``; a hung
        kernel burns at most this much simulated time per attempt.
    config_budget_s:
        Total simulated seconds (failures + backoff + probes) one
        configuration may consume across attempts; exceeding it
        quarantines the configuration even with attempts left, so a
        pathological hang-always config cannot eat the campaign budget.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.1
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 5.0
    launch_timeout_s: float = 2.0
    config_budget_s: float = 30.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_multiplier < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        if self.launch_timeout_s <= 0 or self.config_budget_s <= 0:
            raise ValueError("timeout budgets must be positive")

    def backoff_s(self, attempt: int) -> float:
        """Backoff slept after failed attempt number ``attempt`` (1-based)."""
        return min(
            self.backoff_base_s * self.backoff_multiplier ** (attempt - 1),
            self.backoff_max_s,
        )


class Measurer:
    """Measures configurations of one kernel on one context.

    Parameters
    ----------
    context:
        Runtime context (device + seeded noise + cost ledger).
    spec:
        The benchmark to measure.
    repeats:
        Launches per measurement; the reported time is the minimum (usual
        kernel-benchmarking practice — interference only slows you down).
    db:
        Optional durable cache.  Known (kernel, device, index) entries are
        returned as-is — no simulation, no noise draws, no ledger charges —
        and new measurements are written through, which is what lets a
        killed campaign resume where it stopped.
    retry:
        :class:`RetryPolicy` applied when the context carries a fault
        injector (``Context(faults=...)``); defaults to ``RetryPolicy()``.
        Without an injector the policy is never consulted and the
        measurement path is byte-for-byte the fault-free one.
    batcher:
        Optional measurement broker (anything with a
        ``submit(measurer, indices) -> MeasurementSet`` method).  When
        set, :meth:`measure_batch` hands the whole batch to the broker
        instead of executing it inline — the hook the ``repro.serve``
        daemon uses to funnel batches from concurrent campaigns through
        one measurement pipeline.  The broker calls back into
        :meth:`measure_batch_direct`, and because batches against one
        measurer are bit-identical to the serial loop in submission
        order, brokered results equal inline ones by construction.
    """

    def __init__(
        self,
        context: Context,
        spec: KernelSpec,
        repeats: int = 3,
        db: Optional[MeasurementDB] = None,
        retry: Optional[RetryPolicy] = None,
        batcher=None,
    ):
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.context = context
        self.spec = spec
        self.repeats = repeats
        self.db = db
        self.retry = retry if retry is not None else RetryPolicy()
        self.batcher = batcher
        self.stats = EngineStats()
        # index -> true time (seconds), or None for invalid.
        self._cache: Dict[int, Optional[float]] = {}
        # index -> static validity (is_valid fast path; no ledger charges).
        self._valid_cache: Dict[int, bool] = {}
        #: Configurations given up on after repeated transient failures.
        self.quarantine: set = set()

    # -- single configuration ------------------------------------------------

    def true_time(
        self, index: int, timeout_s: Optional[float] = None
    ) -> Optional[float]:
        """Noise-free time of a configuration, or None if invalid.

        First call per configuration pays build cost in the ledger (and
        failure cost for invalid ones), as a compile-cache-equipped real
        harness would.  Deterministic failures are cached as None;
        injected transient failures (:class:`TransientError`,
        :class:`TimeoutError`) propagate *uncached* — a retry may succeed.
        ``timeout_s`` is the per-launch watchdog forwarded to the runtime.
        """
        index = int(index)
        if index in self._cache:
            return self._cache[index]
        config = self.spec.space[index]
        try:
            kernel = Program(self.context, self.spec, config).build()
            event = kernel.enqueue(timeout_s=timeout_s)
        except (BuildError, LaunchError):
            self._cache[index] = None
            return None
        self._cache[index] = event.true_duration_s
        return event.true_duration_s

    def measure(self, index: int) -> Optional[float]:
        """Best-of-``repeats`` noisy measurement, or None if invalid.

        Every measurement bills exactly ``repeats`` launches: a fresh
        configuration's first (probe) launch is charged by the runtime at
        its observed time, so only ``repeats - 1`` re-runs are added here;
        a cache-served re-measurement launches all ``repeats`` again.
        A DB hit is served stored — no launches, no charges.

        With a fault injector on the context, probes are wrapped in the
        :class:`RetryPolicy` (retry transients with backoff, watchdog
        hangs, quarantine configurations that never succeed); quarantined
        configurations return None like invalid ones — use
        :meth:`measure_outcome` or :attr:`quarantine` to tell them apart.
        """
        return self.measure_outcome(index)[0]

    def measure_outcome(self, index: int) -> tuple:
        """Like :meth:`measure` but returns ``(value, outcome)`` with
        outcome one of ``'ok' | 'invalid' | 'quarantined'``."""
        t0 = time.perf_counter()
        index = int(index)
        self.stats.n_requested += 1
        kernel = self.spec.name
        device = self.context.device.name
        if self.db is not None and self.db.has(kernel, device, index):
            value = self.db.get(kernel, device, index)
            self.stats.n_db_hits += 1
            if value is None:
                self.stats.n_invalid += 1
            self.stats.elapsed_s += time.perf_counter() - t0
            return value, ("invalid" if value is None else "ok")
        faults = self.context.faults
        if faults is not None and index in self.quarantine:
            # Already written off; do not burn budget on it again.
            self.stats.elapsed_s += time.perf_counter() - t0
            return None, "quarantined"
        fresh = index not in self._cache
        if faults is None or not fresh:
            # Fault-free path, or a cached re-measure (no probe launch, so
            # no fault surface beyond the outlier roll below).
            true = self.true_time(index)
        else:
            true = self._probe_with_retry(index)
            if isinstance(true, str):  # the _QUARANTINED sentinel
                self.stats.elapsed_s += time.perf_counter() - t0
                return None, "quarantined"
        if fresh:
            self.stats.n_simulated += 1
        else:
            self.stats.n_cache_hits += 1
        if true is None:
            self.stats.n_invalid += 1
            if self.db is not None:
                self.db.put(kernel, device, index, None)
            self.stats.elapsed_s += time.perf_counter() - t0
            return None, "invalid"
        drift = self.context.drift
        if drift is not None:
            # The cache keeps the *base* true time; the machine as it is
            # right now is base x drift factor at the current clock.  A
            # re-measure of a stale cache entry therefore sees the drifted
            # present, never the cached past.
            true = true * drift.factor(
                drift.time_of(self.context.ledger),
                kernel,
                self.spec.config_tuple(self.spec.space[index]),
            )
        self.context.ledger.run_s += true * (
            self.repeats - 1 if fresh else self.repeats
        )
        value = self.context.measurement.best_of(true, self.repeats)
        if faults is not None:
            value = faults.on_measurement((kernel, index), value)
        if self.db is not None:
            self.db.put(kernel, device, index, value)
        self.stats.elapsed_s += time.perf_counter() - t0
        return value, "ok"

    _QUARANTINED = "quarantined"

    def _probe_with_retry(self, index: int):
        """First probe of a configuration under fault injection.

        Returns the true time (float), None for a deterministic invalid,
        or the :data:`_QUARANTINED` sentinel when the retry policy gave
        up.  Transient failures are retried with exponential backoff
        (charged to ``ledger.retry_s``); a device reset additionally
        invalidates the compile cache (every cached binary is gone, as on
        a real rig).  A per-configuration simulated-seconds budget caps
        the total spend even when attempts remain.
        """
        policy = self.retry
        ledger = self.context.ledger
        stats = self.stats
        spent0 = ledger.total_s
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return self.true_time(index, timeout_s=policy.launch_timeout_s)
            except TimeoutError:
                stats.n_timeouts += 1
            except DeviceResetError:
                stats.n_transient += 1
                # Compiled binaries do not survive a reset: forget probed
                # true times so later re-measures rebuild (and re-bill).
                self._cache.clear()
            except TransientError:
                stats.n_transient += 1
            if ledger.total_s - spent0 > policy.config_budget_s:
                break
            if attempt < policy.max_attempts:
                ledger.retry_s += policy.backoff_s(attempt)
                stats.n_retries += 1
        self.quarantine.add(index)
        stats.n_quarantined += 1
        return self._QUARANTINED

    def is_valid(self, index: int) -> bool:
        """*Static* validity of a configuration — resource-limit rules
        only, no build, no launch, no ledger charges, no RNG draws.

        Candidate filtering (``TunerSettings.filter_known_invalid``) and
        search warm-starts call this in bulk; it used to route through
        :meth:`true_time`, billing a full build + probe launch per query —
        a validity check must never bill a launch.
        """
        index = int(index)
        if index in self._cache:
            return self._cache[index] is not None
        valid = self._valid_cache.get(index)
        if valid is None:
            device = self.context.device.spec
            profile = self.spec.workload(self.spec.space[index], device)
            valid = validate(profile, device).valid
            self._valid_cache[index] = valid
        return valid

    # -- batches ---------------------------------------------------------------

    def measure_batch(self, indices: Sequence[int]) -> MeasurementSet:
        """Measure many configurations in one vectorized pass.

        Bit-identical to looping :meth:`measure` over ``indices`` — same
        valid/invalid split, same measured values, same ledger totals, same
        RNG stream consumption, same cache/DB updates — but the simulator,
        noise and ledger arithmetic run over whole arrays:

        1. classify each position (DB hit / cached / first occurrence /
           intra-batch duplicate);
        2. evaluate all first-occurrence configs through the simulator's
           batch API (:func:`repro.simulator.executor.execute_batch`);
        3. draw every noise sample in a single RNG call and assemble probe
           observations and best-of-``repeats`` minima by gather;
        4. accumulate the ledger from per-position contribution arrays in
           input order.

        With a fault injector attached the vectorized fast path is
        bypassed: the batch degrades to the serial resilient loop (retry,
        backoff, quarantine per configuration), trading the order of
        magnitude of throughput for correctness under failure — and
        making ``measure_batch`` equal the serial loop *by construction*,
        fault profile or not.

        With a ``batcher`` attached the batch is submitted to it instead
        (see the constructor); the broker executes it through
        :meth:`measure_batch_direct` on its own schedule.
        """
        if self.batcher is not None:
            return self.batcher.submit(self, indices)
        return self.measure_batch_direct(indices)

    def measure_batch_direct(self, indices: Sequence[int]) -> MeasurementSet:
        """:meth:`measure_batch` without broker indirection — the entry
        point measurement brokers use to execute submitted batches.

        Faults *or drift* on the context degrade the batch to the serial
        resilient loop: drift factors depend on the ledger clock at each
        launch, which only the serial order reproduces — and serial-equals-
        batch then holds by construction."""
        if self.context.faults is not None or self.context.drift is not None:
            with self.context.tracer.span("measure.batch.resilient") as span:
                return self._measure_batch_resilient(indices, span)
        with self.context.tracer.span("measure.batch") as span:
            return self._measure_batch(indices, span)

    def _measure_batch_resilient(
        self, indices: Sequence[int], span
    ) -> MeasurementSet:
        stats0 = EngineStats(**{
            k: getattr(self.stats, k)
            for k in ("n_transient", "n_retries", "n_timeouts", "n_quarantined")
        })
        idx = [int(i) for i in indices]
        ok_idx: List[int] = []
        ok_times: List[float] = []
        bad_idx: List[int] = []
        quarantined_idx: List[int] = []
        for i in idx:
            value, outcome = self.measure_outcome(i)
            if outcome == "ok":
                ok_idx.append(i)
                ok_times.append(float(value))
            elif outcome == "quarantined":
                quarantined_idx.append(i)
            else:
                bad_idx.append(i)
        tracer = self.context.tracer
        if tracer.enabled:
            s = self.stats
            tracer.count("measure.requested", len(idx))
            tracer.count("fault.transient", s.n_transient - stats0.n_transient)
            tracer.count("fault.timeouts", s.n_timeouts - stats0.n_timeouts)
            tracer.count("fault.retries", s.n_retries - stats0.n_retries)
            tracer.count(
                "fault.quarantined", s.n_quarantined - stats0.n_quarantined
            )
            span.set(
                n=len(ok_idx) + len(bad_idx) + len(quarantined_idx),
                invalid=len(bad_idx),
                quarantined=len(quarantined_idx),
                transient=s.n_transient - stats0.n_transient,
                timeouts=s.n_timeouts - stats0.n_timeouts,
                retries=s.n_retries - stats0.n_retries,
            )
        return MeasurementSet(
            indices=np.asarray(ok_idx, dtype=np.int64),
            times_s=np.asarray(ok_times, dtype=np.float64),
            invalid_indices=np.asarray(bad_idx, dtype=np.int64),
            quarantined_indices=np.asarray(quarantined_idx, dtype=np.int64),
        )

    def _measure_batch(self, indices: Sequence[int], span) -> MeasurementSet:
        t0 = time.perf_counter()
        idx: List[int] = [int(i) for i in indices]
        n = len(idx)
        repeats = self.repeats
        model = self.context.measurement
        sigma = model.device.timing_noise_sigma
        device = self.context.device.spec
        kernel_name = self.spec.name
        device_name = device.name
        db = self.db

        kinds = np.empty(n, dtype=np.int8)
        true_vals = np.full(n, np.nan)
        results = np.full(n, np.nan)
        valid = np.zeros(n, dtype=bool)
        src_pos = np.full(n, -1, dtype=np.int64)
        fresh_list: List[int] = []
        fresh_positions: List[int] = []
        # index -> position of the occurrence a later duplicate would be
        # served from.  With a DB attached that is any earlier measured
        # position (its value is in the DB by the time the duplicate runs in
        # the scalar loop); without one, only fresh occurrences matter
        # (cache-served re-measures legitimately redraw noise every time).
        pending: Dict[int, int] = {}

        for p, i in enumerate(idx):
            if db is not None and db.has(kernel_name, device_name, i):
                kinds[p] = _DB
                v = db.get(kernel_name, device_name, i)
                if v is not None:
                    results[p] = v
                    valid[p] = True
            elif i in pending:
                kinds[p] = _DUP
                src_pos[p] = pending[i]
            elif i in self._cache:
                kinds[p] = _CACHED
                t = self._cache[i]
                if t is not None:
                    true_vals[p] = t
                if db is not None:
                    pending[i] = p
            else:
                kinds[p] = _FRESH
                fresh_list.append(i)
                fresh_positions.append(p)
                pending[i] = p

        # -- simulate all first-occurrence configs in one batch --------------
        compile_c = np.zeros(n)
        failed_c = np.zeros(n)
        if fresh_list:
            fresh_arr = np.asarray(fresh_list, dtype=np.int64)
            fp = np.asarray(fresh_positions, dtype=np.int64)
            tuples = self.spec.config_tuples(fresh_arr)
            wb = self.spec.workload_batch(fresh_arr, device, config_tuples=tuples)
            be = execute_batch(
                wb, device, kernel_name=kernel_name, config_tuples=tuples
            )
            true_vals[fp] = be.times
            build_bad = be.stages == STAGE_BUILD_CODE
            ok = be.stages == STAGE_OK_CODE
            failed_c[fp[build_bad]] = FAILED_BUILD_COST_S
            failed_c[fp[~build_bad & ~ok]] = FAILED_LAUNCH_COST_S
            compile_costs = device.compile_time_base_s + (
                device.compile_time_per_unroll_s * (wb.unroll_factor - 1)
            )
            compile_c[fp[~build_bad]] = compile_costs[~build_bad]
            for j, i in enumerate(fresh_list):
                t = be.times[j]
                self._cache[i] = float(t) if ok[j] else None

        mask_fc = (kinds == _FRESH) | (kinds == _CACHED)
        valid[mask_fc] = ~np.isnan(true_vals[mask_fc])
        mask_dup = kinds == _DUP
        dup_idx = np.nonzero(mask_dup)[0]
        if dup_idx.size:
            valid[dup_idx] = valid[src_pos[dup_idx]]
            if db is None:
                true_vals[dup_idx] = true_vals[src_pos[dup_idx]]

        # -- one RNG call for every noise draw, in scalar-loop order ----------
        # A zero-sigma device draws nothing at all (matching observe /
        # observe_many, which skip the RNG entirely at sigma == 0), so the
        # generator state is identical whichever path measured.
        fresh_valid = (kinds == _FRESH) & valid
        counts = np.zeros(n, dtype=np.int64)
        if sigma != 0.0:
            counts[fresh_valid] = 1 + repeats
            counts[(kinds == _CACHED) & valid] = repeats
            if db is None:
                counts[mask_dup & valid] = repeats
        total_draws = int(counts.sum())
        if total_draws:
            factors = np.exp(sigma * model.rng.standard_normal(total_draws))
        else:
            factors = np.empty(0)
        starts = np.cumsum(counts) - counts

        obs = np.zeros(n)
        obs[fresh_valid] = true_vals[fresh_valid]
        if sigma != 0.0:
            obs[fresh_valid] *= factors[starts[fresh_valid]]
            meas_mask = counts >= repeats  # positions that redraw best-of
            if meas_mask.any():
                # Measurement draws are the last `repeats` of each position.
                m_starts = starts[meas_mask] + counts[meas_mask] - repeats
                gathered = factors[m_starts[:, None] + np.arange(repeats)]
                results[meas_mask] = (
                    true_vals[meas_mask][:, None] * gathered
                ).min(axis=1)
        else:
            # Noise-free: best-of-N of identical values is the true time.
            meas_mask = fresh_valid | ((kinds == _CACHED) & valid)
            if db is None:
                meas_mask = meas_mask | (mask_dup & valid)
            results[meas_mask] = true_vals[meas_mask]
        if db is not None and dup_idx.size:
            results[dup_idx] = results[src_pos[dup_idx]]

        # -- ledger, accumulated in input order --------------------------------
        run_c = np.zeros((n, 2))
        run_c[fresh_valid, 0] = obs[fresh_valid]
        run_c[fresh_valid, 1] = true_vals[fresh_valid] * (repeats - 1)
        recharged = (kinds == _CACHED) & valid
        if db is None:
            recharged = recharged | (mask_dup & valid)
        run_c[recharged, 1] = true_vals[recharged] * repeats
        ledger = self.context.ledger
        ledger.compile_s = _sequential_sum(ledger.compile_s, compile_c)
        ledger.run_s = _sequential_sum(ledger.run_s, run_c.ravel())
        ledger.failed_s = _sequential_sum(ledger.failed_s, failed_c)

        # -- write-through + stats --------------------------------------------
        if db is not None and pending:
            items = {
                i: (float(results[p]) if valid[p] else None)
                for i, p in pending.items()
            }
            db.put_many(kernel_name, device_name, items)

        stats = self.stats
        stats.n_requested += n
        stats.n_simulated += len(fresh_list)
        n_dup = int(dup_idx.size)
        n_db = int(np.count_nonzero(kinds == _DB))
        if db is None:
            n_cached = int(np.count_nonzero(kinds == _CACHED)) + n_dup
            n_db_served = n_db
        else:
            n_cached = int(np.count_nonzero(kinds == _CACHED))
            n_db_served = n_db + n_dup
        stats.n_cache_hits += n_cached
        stats.n_db_hits += n_db_served
        n_bad = int(np.count_nonzero(~valid))
        stats.n_invalid += n_bad
        stats.elapsed_s += time.perf_counter() - t0

        # Fold the engine counters into the trace (aggregate per batch —
        # never per configuration, so a disabled tracer costs a handful of
        # no-op calls for the whole sweep).
        tracer = self.context.tracer
        if tracer.enabled:
            tracer.count("measure.requested", n)
            tracer.count("measure.simulated", len(fresh_list))
            tracer.count("measure.cache_hits", n_cached)
            tracer.count("measure.db_hits", n_db_served)
            tracer.count("measure.invalid", n_bad)
            span.set(
                n=n,
                simulated=len(fresh_list),
                cache_hits=n_cached,
                db_hits=n_db_served,
                invalid=n_bad,
            )

        idx_arr = np.asarray(idx, dtype=np.int64)
        return MeasurementSet(
            indices=idx_arr[valid],
            times_s=results[valid],
            invalid_indices=idx_arr[~valid],
        )

    def sample_and_measure(
        self, n: int, rng: np.random.Generator
    ) -> MeasurementSet:
        """Stage one of the tuner: measure ``n`` uniform random configs."""
        indices = self.spec.space.sample_indices(n, rng)
        return self.measure_batch(indices)
