"""Measurement loop: configurations in, (time | invalid) out.

The :class:`Measurer` drives the runtime facade exactly the way a
pyopencl-based harness drives real OpenCL — build, enqueue, wait, read the
profiled duration, catch build/launch failures — and memoizes per-
configuration state so re-measuring a configuration only redraws
measurement noise (a real harness would likewise cache compiled binaries).

Two layers sit on top of the single-config path:

* **a durable cache** — when a :class:`~repro.core.results.MeasurementDB`
  is attached, measured values are written through to it and known indices
  are served from it without touching the simulator, the RNG or the cost
  ledger (the real-world analogue: a persisted campaign result needs no
  re-run after a crash);
* **a vectorized batch engine** — :meth:`Measurer.measure_batch` classifies
  a whole index array, evaluates all not-yet-known configurations through
  the simulator's batch API, and draws every noise sample in one RNG call.
  It is bit-identical to looping :meth:`Measurer.measure` — same
  measurements, same ledger totals, same RNG stream consumption — just an
  order of magnitude faster.

Under faults and/or drift the batch engine switches to its *wave-based*
form (:meth:`Measurer.measure_batch_direct`): fault outcomes are keyed
hash draws that never touch the context RNG, backoff is a deterministic
ledger charge, and drift factors are keyed functions of the ledger clock
— so whole attempt-waves of probe outcomes are precomputable without
side effects.  The engine resolves every configuration's retry schedule
through vectorized fault draws, evaluates all needed configurations
through the simulator batch API, draws the noise in one RNG call, and
replays the one true sequential dependency — the drift clock, a prefix
sum of prior charges into which measured times feed back — as a cheap
O(n) scalar arithmetic scan.  The result is bit-identical to the serial
resilient loop (kept as :meth:`Measurer.measure_batch_serial_resilient`)
by construction: same values, ledger buckets, RNG stream, quarantine
sets, fault-stream counters and drift counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.results import MeasurementDB
from repro.kernels.base import KernelSpec
from repro.runtime import (
    BuildError,
    Context,
    DeviceResetError,
    LaunchError,
    Program,
    TimeoutError,
    TransientError,
)
from repro.simulator.drift import DriftModel
from repro.simulator.executor import execute_batch
from repro.simulator.noise import FAILED_BUILD_COST_S, FAILED_LAUNCH_COST_S
from repro.simulator.validity import (
    STAGE_BUILD_CODE,
    STAGE_LAUNCH_CODE,
    STAGE_OK_CODE,
    validate,
)


def _empty_idx() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass
class MeasurementSet:
    """Outcome of measuring a batch of configurations.

    ``indices``/``times_s`` hold the *valid* measurements (aligned);
    ``invalid_indices`` the configurations that failed to build or launch
    *deterministically* (resource limits — re-running cannot help);
    ``quarantined_indices`` the configurations given up on after repeated
    transient failures or hangs (no measurement, but not provably invalid
    — they are missing data, reported separately so the invalid-fraction
    statistics of §5.2 stay about the configuration space, not the rig).
    """

    indices: np.ndarray
    times_s: np.ndarray
    invalid_indices: np.ndarray
    quarantined_indices: np.ndarray = field(default_factory=_empty_idx)

    @property
    def n_valid(self) -> int:
        return int(self.indices.shape[0])

    @property
    def n_invalid(self) -> int:
        return int(self.invalid_indices.shape[0])

    @property
    def n_quarantined(self) -> int:
        return int(self.quarantined_indices.shape[0])

    @property
    def invalid_fraction(self) -> float:
        total = self.n_valid + self.n_invalid
        return self.n_invalid / total if total else 0.0

    def best(self) -> tuple:
        """(index, time) of the fastest valid measurement."""
        if self.n_valid == 0:
            raise ValueError("no valid measurements")
        j = int(np.argmin(self.times_s))
        return int(self.indices[j]), float(self.times_s[j])

    def merged_with(self, other: "MeasurementSet") -> "MeasurementSet":
        return MeasurementSet(
            indices=np.concatenate([self.indices, other.indices]),
            times_s=np.concatenate([self.times_s, other.times_s]),
            invalid_indices=np.concatenate(
                [self.invalid_indices, other.invalid_indices]
            ),
            quarantined_indices=np.concatenate(
                [self.quarantined_indices, other.quarantined_indices]
            ),
        )


@dataclass
class EngineStats:
    """Observability counters of one measurement engine.

    ``n_requested`` splits into simulator evaluations (``n_simulated``),
    in-memory cache hits (``n_cache_hits``) and durable-DB hits
    (``n_db_hits``); ``n_invalid`` counts returned invalids across all
    three.  ``elapsed_s`` is harness wall-clock (not simulated seconds).

    The failure-breakdown counters are only ever non-zero under a fault
    profile: ``n_transient`` transient build/launch failures (device
    resets included), ``n_timeouts`` watchdog-killed hangs, ``n_retries``
    backoff-then-retry cycles the policy spent recovering, and
    ``n_quarantined`` configurations given up on (failed every attempt)
    — reported separately from ``n_invalid``, which stays a statement
    about the configuration space.

    ``n_waves`` counts attempt waves executed by the wave-based resilient
    batch engine (one per vectorized fault-draw round, plus one per
    fault-free evaluation pass under drift); the serial paths leave it 0.
    """

    n_requested: int = 0
    n_simulated: int = 0
    n_cache_hits: int = 0
    n_db_hits: int = 0
    n_invalid: int = 0
    n_transient: int = 0
    n_retries: int = 0
    n_timeouts: int = 0
    n_quarantined: int = 0
    n_waves: int = 0
    elapsed_s: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests served without a simulator evaluation."""
        if self.n_requested == 0:
            return 0.0
        return (self.n_cache_hits + self.n_db_hits) / self.n_requested

    @property
    def configs_per_sec(self) -> float:
        """Measurement throughput in configurations per wall-clock second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.n_requested / self.elapsed_s

    @property
    def n_faults(self) -> int:
        """Total injected failures recovered from or given up on."""
        return self.n_transient + self.n_timeouts

    def failure_breakdown(self) -> dict:
        """The fault counters as a dict; empty when no faults were seen
        (so fault-free reports and results carry no breakdown at all)."""
        pairs = {
            "transient": self.n_transient,
            "timeouts": self.n_timeouts,
            "retries": self.n_retries,
            "quarantined": self.n_quarantined,
        }
        return {k: v for k, v in pairs.items() if v}

    def merge(self, other: "EngineStats") -> "EngineStats":
        return EngineStats(
            n_requested=self.n_requested + other.n_requested,
            n_simulated=self.n_simulated + other.n_simulated,
            n_cache_hits=self.n_cache_hits + other.n_cache_hits,
            n_db_hits=self.n_db_hits + other.n_db_hits,
            n_invalid=self.n_invalid + other.n_invalid,
            n_transient=self.n_transient + other.n_transient,
            n_retries=self.n_retries + other.n_retries,
            n_timeouts=self.n_timeouts + other.n_timeouts,
            n_quarantined=self.n_quarantined + other.n_quarantined,
            n_waves=self.n_waves + other.n_waves,
            elapsed_s=self.elapsed_s + other.elapsed_s,
        )

    def as_dict(self) -> dict:
        return {
            "n_requested": self.n_requested,
            "n_simulated": self.n_simulated,
            "n_cache_hits": self.n_cache_hits,
            "n_db_hits": self.n_db_hits,
            "n_invalid": self.n_invalid,
            "n_transient": self.n_transient,
            "n_retries": self.n_retries,
            "n_timeouts": self.n_timeouts,
            "n_quarantined": self.n_quarantined,
            "n_waves": self.n_waves,
            "elapsed_s": self.elapsed_s,
            "cache_hit_rate": self.cache_hit_rate,
            "configs_per_sec": self.configs_per_sec,
        }


def _sequential_sum(start: float, contributions: np.ndarray) -> float:
    """``start + c0 + c1 + ...`` accumulated strictly left to right.

    ``np.sum`` uses pairwise summation, whose rounding differs from the
    scalar path's sequential ``+=``; a running cumulative sum reproduces
    the scalar result bit for bit.
    """
    if contributions.size == 0:
        return start
    return float(np.cumsum(np.concatenate(([start], contributions)))[-1])


# Batch classification codes (internal to measure_batch).
_FRESH, _CACHED, _DB, _DUP = 0, 1, 2, 3


class _ProbeSchedule:
    """Resolved retry schedule of one first-probe job (wave engine).

    ``events`` holds one code per attempt, in order — ``"tb"`` transient
    build, ``"binv"``/``"linv"`` deterministic build/launch invalid,
    ``"reset"``/``"hang"``/``"tl"`` injected launch failures, ``"ok"``
    success; ``broke`` records, per *failed* attempt, the constant-sum
    budget decision (re-validated against the exact ledger floats during
    the commit scan); ``outcome`` is ``'ok' | 'invalid' | 'quar'``;
    ``b_rolls``/``l_rolls`` are the build/launch fault draws consumed
    (committed to the injector's attempt counters at batch commit).
    """

    __slots__ = ("events", "broke", "outcome", "b_rolls", "l_rolls")

    def __init__(self):
        self.events: List[str] = []
        self.broke: List[bool] = []
        self.outcome: str = ""
        self.b_rolls = 0
        self.l_rolls = 0


@dataclass(frozen=True)
class RetryPolicy:
    """How the measurer handles injected (transient) failures.

    Attributes
    ----------
    max_attempts:
        Probe attempts per configuration before giving up.  A
        configuration whose every attempt fails transiently (or hangs) is
        *quarantined*: it yields no measurement, is excluded from all
        future attempts, and is reported separately from statically
        invalid configurations.
    backoff_base_s / backoff_multiplier / backoff_max_s:
        Exponential backoff slept between attempts —
        ``min(base * multiplier**(attempt - 1), backoff_max_s)`` —
        charged to the cost ledger's ``retry_s`` bucket (waiting for a
        flaky driver is real tuning-budget time).  The cap matters:
        uncapped growth let a long transient streak charge one enormous
        sleep that blew the per-config budget in a single step.
    launch_timeout_s:
        Watchdog budget per launch, passed to ``Kernel.enqueue``; a hung
        kernel burns at most this much simulated time per attempt.
    config_budget_s:
        Total simulated seconds (failures + backoff + probes) one
        configuration may consume across attempts; exceeding it
        quarantines the configuration even with attempts left, so a
        pathological hang-always config cannot eat the campaign budget.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.1
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 5.0
    launch_timeout_s: float = 2.0
    config_budget_s: float = 30.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_multiplier < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        if self.launch_timeout_s <= 0 or self.config_budget_s <= 0:
            raise ValueError("timeout budgets must be positive")

    def backoff_s(self, attempt: int) -> float:
        """Backoff slept after failed attempt number ``attempt`` (1-based)."""
        return min(
            self.backoff_base_s * self.backoff_multiplier ** (attempt - 1),
            self.backoff_max_s,
        )


class Measurer:
    """Measures configurations of one kernel on one context.

    Parameters
    ----------
    context:
        Runtime context (device + seeded noise + cost ledger).
    spec:
        The benchmark to measure.
    repeats:
        Launches per measurement; the reported time is the minimum (usual
        kernel-benchmarking practice — interference only slows you down).
    db:
        Optional durable cache.  Known (kernel, device, index) entries are
        returned as-is — no simulation, no noise draws, no ledger charges —
        and new measurements are written through, which is what lets a
        killed campaign resume where it stopped.
    retry:
        :class:`RetryPolicy` applied when the context carries a fault
        injector (``Context(faults=...)``); defaults to ``RetryPolicy()``.
        Without an injector the policy is never consulted and the
        measurement path is byte-for-byte the fault-free one.
    batcher:
        Optional measurement broker (anything with a
        ``submit(measurer, indices) -> MeasurementSet`` method).  When
        set, :meth:`measure_batch` hands the whole batch to the broker
        instead of executing it inline — the hook the ``repro.serve``
        daemon uses to funnel batches from concurrent campaigns through
        one measurement pipeline.  The broker calls back into
        :meth:`measure_batch_direct`, and because batches against one
        measurer are bit-identical to the serial loop in submission
        order, brokered results equal inline ones by construction.
    """

    def __init__(
        self,
        context: Context,
        spec: KernelSpec,
        repeats: int = 3,
        db: Optional[MeasurementDB] = None,
        retry: Optional[RetryPolicy] = None,
        batcher=None,
    ):
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.context = context
        self.spec = spec
        self.repeats = repeats
        self.db = db
        self.retry = retry if retry is not None else RetryPolicy()
        self.batcher = batcher
        self.stats = EngineStats()
        # index -> true time (seconds), or None for invalid.
        self._cache: Dict[int, Optional[float]] = {}
        # index -> static validity (is_valid fast path; no ledger charges).
        self._valid_cache: Dict[int, bool] = {}
        #: Configurations given up on after repeated transient failures.
        self.quarantine: set = set()

    # -- single configuration ------------------------------------------------

    def true_time(
        self, index: int, timeout_s: Optional[float] = None
    ) -> Optional[float]:
        """Noise-free time of a configuration, or None if invalid.

        First call per configuration pays build cost in the ledger (and
        failure cost for invalid ones), as a compile-cache-equipped real
        harness would.  Deterministic failures are cached as None;
        injected transient failures (:class:`TransientError`,
        :class:`TimeoutError`) propagate *uncached* — a retry may succeed.
        ``timeout_s`` is the per-launch watchdog forwarded to the runtime.
        """
        index = int(index)
        if index in self._cache:
            return self._cache[index]
        config = self.spec.space[index]
        try:
            kernel = Program(self.context, self.spec, config).build()
            event = kernel.enqueue(timeout_s=timeout_s)
        except (BuildError, LaunchError):
            self._cache[index] = None
            return None
        self._cache[index] = event.true_duration_s
        return event.true_duration_s

    def measure(self, index: int) -> Optional[float]:
        """Best-of-``repeats`` noisy measurement, or None if invalid.

        Every measurement bills exactly ``repeats`` launches: a fresh
        configuration's first (probe) launch is charged by the runtime at
        its observed time, so only ``repeats - 1`` re-runs are added here;
        a cache-served re-measurement launches all ``repeats`` again.
        A DB hit is served stored — no launches, no charges.

        With a fault injector on the context, probes are wrapped in the
        :class:`RetryPolicy` (retry transients with backoff, watchdog
        hangs, quarantine configurations that never succeed); quarantined
        configurations return None like invalid ones — use
        :meth:`measure_outcome` or :attr:`quarantine` to tell them apart.
        """
        return self.measure_outcome(index)[0]

    def measure_outcome(self, index: int) -> tuple:
        """Like :meth:`measure` but returns ``(value, outcome)`` with
        outcome one of ``'ok' | 'invalid' | 'quarantined'``."""
        t0 = time.perf_counter()
        index = int(index)
        self.stats.n_requested += 1
        kernel = self.spec.name
        device = self.context.device.name
        if self.db is not None and self.db.has(kernel, device, index):
            value = self.db.get(kernel, device, index)
            self.stats.n_db_hits += 1
            if value is None:
                self.stats.n_invalid += 1
            self.stats.elapsed_s += time.perf_counter() - t0
            return value, ("invalid" if value is None else "ok")
        faults = self.context.faults
        if faults is not None and index in self.quarantine:
            # Already written off; do not burn budget on it again.
            self.stats.elapsed_s += time.perf_counter() - t0
            return None, "quarantined"
        fresh = index not in self._cache
        if faults is None or not fresh:
            # Fault-free path, or a cached re-measure (no probe launch, so
            # no fault surface beyond the outlier roll below).
            true = self.true_time(index)
        else:
            true = self._probe_with_retry(index)
            if isinstance(true, str):  # the _QUARANTINED sentinel
                self.stats.elapsed_s += time.perf_counter() - t0
                return None, "quarantined"
        if fresh:
            self.stats.n_simulated += 1
        else:
            self.stats.n_cache_hits += 1
        if true is None:
            self.stats.n_invalid += 1
            if self.db is not None:
                self.db.put(kernel, device, index, None)
            self.stats.elapsed_s += time.perf_counter() - t0
            return None, "invalid"
        drift = self.context.drift
        if drift is not None:
            # The cache keeps the *base* true time; the machine as it is
            # right now is base x drift factor at the current clock.  A
            # re-measure of a stale cache entry therefore sees the drifted
            # present, never the cached past.
            true = true * drift.factor(
                drift.time_of(self.context.ledger),
                kernel,
                self.spec.config_tuple(self.spec.space[index]),
            )
        self.context.ledger.run_s += true * (
            self.repeats - 1 if fresh else self.repeats
        )
        value = self.context.measurement.best_of(true, self.repeats)
        if faults is not None:
            value = faults.on_measurement((kernel, index), value)
        if self.db is not None:
            self.db.put(kernel, device, index, value)
        self.stats.elapsed_s += time.perf_counter() - t0
        return value, "ok"

    _QUARANTINED = "quarantined"

    def _probe_with_retry(self, index: int):
        """First probe of a configuration under fault injection.

        Returns the true time (float), None for a deterministic invalid,
        or the :data:`_QUARANTINED` sentinel when the retry policy gave
        up.  Transient failures are retried with exponential backoff
        (charged to ``ledger.retry_s``); a device reset additionally
        invalidates the compile cache (every cached binary is gone, as on
        a real rig).  A per-configuration simulated-seconds budget caps
        the total spend even when attempts remain.
        """
        policy = self.retry
        ledger = self.context.ledger
        stats = self.stats
        spent0 = ledger.total_s
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return self.true_time(index, timeout_s=policy.launch_timeout_s)
            except TimeoutError:
                stats.n_timeouts += 1
            except DeviceResetError:
                stats.n_transient += 1
                # Compiled binaries do not survive a reset: forget probed
                # true times so later re-measures rebuild (and re-bill).
                self._cache.clear()
            except TransientError:
                stats.n_transient += 1
            if ledger.total_s - spent0 > policy.config_budget_s:
                break
            if attempt < policy.max_attempts:
                ledger.retry_s += policy.backoff_s(attempt)
                stats.n_retries += 1
        self.quarantine.add(index)
        stats.n_quarantined += 1
        return self._QUARANTINED

    def is_valid(self, index: int) -> bool:
        """*Static* validity of a configuration — resource-limit rules
        only, no build, no launch, no ledger charges, no RNG draws.

        Candidate filtering (``TunerSettings.filter_known_invalid``) and
        search warm-starts call this in bulk; it used to route through
        :meth:`true_time`, billing a full build + probe launch per query —
        a validity check must never bill a launch.
        """
        index = int(index)
        if index in self._cache:
            return self._cache[index] is not None
        valid = self._valid_cache.get(index)
        if valid is None:
            device = self.context.device.spec
            profile = self.spec.workload(self.spec.space[index], device)
            valid = validate(profile, device).valid
            self._valid_cache[index] = valid
        return valid

    # -- batches ---------------------------------------------------------------

    def measure_batch(self, indices: Sequence[int]) -> MeasurementSet:
        """Measure many configurations in one vectorized pass.

        Bit-identical to looping :meth:`measure` over ``indices`` — same
        valid/invalid split, same measured values, same ledger totals, same
        RNG stream consumption, same cache/DB updates — but the simulator,
        noise and ledger arithmetic run over whole arrays:

        1. classify each position (DB hit / cached / first occurrence /
           intra-batch duplicate);
        2. evaluate all first-occurrence configs through the simulator's
           batch API (:func:`repro.simulator.executor.execute_batch`);
        3. draw every noise sample in a single RNG call and assemble probe
           observations and best-of-``repeats`` minima by gather;
        4. accumulate the ledger from per-position contribution arrays in
           input order.

        With a fault injector and/or a drift model attached, the batch
        runs through the *wave-based* resilient engine instead: retry
        schedules are resolved in vectorized attempt waves of keyed fault
        draws, the simulator still evaluates whole arrays, noise is still
        one RNG call, and only the drift-clock recurrence is replayed as
        a cheap scalar scan — bit-identical to the serial resilient loop
        (retry, backoff, quarantine per configuration) by construction,
        at batch-engine throughput.

        With a ``batcher`` attached the batch is submitted to it instead
        (see the constructor); the broker executes it through
        :meth:`measure_batch_direct` on its own schedule.
        """
        if self.batcher is not None:
            return self.batcher.submit(self, indices)
        return self.measure_batch_direct(indices)

    def measure_batch_direct(self, indices: Sequence[int]) -> MeasurementSet:
        """:meth:`measure_batch` without broker indirection — the entry
        point measurement brokers use to execute submitted batches.

        Faults *or drift* on the context route the batch through the
        wave-based resilient engine (``measure.batch.waves`` span), which
        reproduces the serial resilient loop bit for bit while keeping
        the simulator, fault-draw, and noise work vectorized; the
        fault-free, drift-free fast path (``measure.batch`` span) is
        unchanged."""
        if self.context.faults is not None or self.context.drift is not None:
            with self.context.tracer.span("measure.batch.waves") as span:
                return self._measure_batch_waves(indices, span)
        with self.context.tracer.span("measure.batch") as span:
            return self._measure_batch(indices, span)

    def measure_batch_serial_resilient(
        self, indices: Sequence[int]
    ) -> MeasurementSet:
        """The serial per-config resilient loop (one :meth:`measure_outcome`
        per position, in order) — the reference the wave engine must match
        bit for bit.  Kept public as the equivalence baseline and for perf
        comparison; production paths use :meth:`measure_batch_direct`."""
        with self.context.tracer.span("measure.batch.resilient") as span:
            return self._measure_batch_resilient(indices, span)

    def _measure_batch_resilient(
        self, indices: Sequence[int], span
    ) -> MeasurementSet:
        stats0 = EngineStats(**{
            k: getattr(self.stats, k)
            for k in ("n_transient", "n_retries", "n_timeouts", "n_quarantined")
        })
        idx = [int(i) for i in indices]
        ok_idx: List[int] = []
        ok_times: List[float] = []
        bad_idx: List[int] = []
        quarantined_idx: List[int] = []
        for i in idx:
            value, outcome = self.measure_outcome(i)
            if outcome == "ok":
                ok_idx.append(i)
                ok_times.append(float(value))
            elif outcome == "quarantined":
                quarantined_idx.append(i)
            else:
                bad_idx.append(i)
        tracer = self.context.tracer
        if tracer.enabled:
            s = self.stats
            tracer.count("measure.requested", len(idx))
            tracer.count("fault.transient", s.n_transient - stats0.n_transient)
            tracer.count("fault.timeouts", s.n_timeouts - stats0.n_timeouts)
            tracer.count("fault.retries", s.n_retries - stats0.n_retries)
            tracer.count(
                "fault.quarantined", s.n_quarantined - stats0.n_quarantined
            )
            span.set(
                n=len(ok_idx) + len(bad_idx) + len(quarantined_idx),
                invalid=len(bad_idx),
                quarantined=len(quarantined_idx),
                transient=s.n_transient - stats0.n_transient,
                timeouts=s.n_timeouts - stats0.n_timeouts,
                retries=s.n_retries - stats0.n_retries,
            )
        return MeasurementSet(
            indices=np.asarray(ok_idx, dtype=np.int64),
            times_s=np.asarray(ok_times, dtype=np.float64),
            invalid_indices=np.asarray(bad_idx, dtype=np.int64),
            quarantined_indices=np.asarray(quarantined_idx, dtype=np.int64),
        )

    # -- wave-based resilient batch engine -------------------------------------

    def _resolve_probe_jobs(
        self,
        stages: np.ndarray,
        compile_cs: np.ndarray,
        key_hashes: np.ndarray,
        b_start: np.ndarray,
        l_start: np.ndarray,
    ) -> tuple:
        """Resolve the retry schedules of many pending first-probe jobs in
        vectorized attempt waves.

        Pure: fault uniforms come from :meth:`FaultInjector.peek_uniforms`
        (no counters move), and the per-config budget is tracked as a
        constant sum of the attempt charges — the commit scan re-validates
        every budget decision against the exact ledger floats and falls
        back to the serial loop on the (vanishingly rare) rounding
        disagreement.  Returns ``(schedules, waves_executed)``.
        """
        faults = self.context.faults
        prof = faults.profile
        policy = self.retry
        p_tb = prof.p_transient_build
        p_reset = prof.p_device_reset
        p_hang = prof.p_hang
        p_total = p_reset + p_hang + prof.p_transient_launch
        hang_w = min(prof.hang_duration_s, policy.launch_timeout_s)
        budget = policy.config_budget_s
        m = len(stages)
        scheds = [_ProbeSchedule() for _ in range(m)]
        pending = np.ones(m, dtype=bool)
        # Build-stage invalids resolve before any fault roll: validate
        # raises ahead of the injector in Program.build.
        for j in np.flatnonzero(stages == STAGE_BUILD_CODE):
            scheds[j].events.append("binv")
            scheds[j].outcome = "invalid"
            pending[j] = False
        spend = np.zeros(m)
        b_used = np.zeros(m, dtype=np.int64)
        l_used = np.zeros(m, dtype=np.int64)
        waves = 0
        for attempt in range(1, policy.max_attempts + 1):
            act = np.flatnonzero(pending)
            if act.size == 0:
                break
            waves += 1
            code = np.full(act.size, "ok", dtype=object)
            if p_tb > 0.0:
                ub = faults.peek_uniforms(
                    "build", key_hashes[act], b_start[act] + b_used[act]
                )
                b_used[act] += 1
                code[ub < p_tb] = "tb"
            built = code != "tb"
            linv = built & (stages[act] == STAGE_LAUNCH_CODE)
            code[linv] = "linv"
            launchable = np.flatnonzero(built & ~linv)
            if p_total > 0.0 and launchable.size:
                sel = act[launchable]
                ul = faults.peek_uniforms(
                    "launch", key_hashes[sel], l_start[sel] + l_used[sel]
                )
                l_used[sel] += 1
                code[launchable[ul < p_reset]] = "reset"
                code[launchable[(ul >= p_reset) & (ul < p_reset + p_hang)]] = "hang"
                code[launchable[(ul >= p_reset + p_hang) & (ul < p_total)]] = "tl"
            # Constant-sum spend update (heuristic clock for the budget
            # check only; exact validation happens in the commit scan).
            charge = np.where(code == "tb", FAILED_BUILD_COST_S, compile_cs[act])
            charge = charge + np.select(
                [code == "linv", code == "tl", code == "reset", code == "hang"],
                [FAILED_LAUNCH_COST_S, FAILED_LAUNCH_COST_S,
                 prof.reset_cost_s, hang_w],
                default=0.0,
            )
            spend[act] += charge
            for pos, j in enumerate(act):
                s = scheds[j]
                ev = code[pos]
                s.events.append(ev)
                if ev == "ok":
                    s.outcome = "ok"
                    pending[j] = False
                elif ev == "linv":
                    s.outcome = "invalid"
                    pending[j] = False
                else:
                    bb = bool(spend[j] > budget)
                    s.broke.append(bb)
                    if bb:
                        s.outcome = "quar"
                        pending[j] = False
                    elif attempt < policy.max_attempts:
                        spend[j] += policy.backoff_s(attempt)
        for j in np.flatnonzero(pending):
            scheds[j].outcome = "quar"
        for j, s in enumerate(scheds):
            s.b_rolls = int(b_used[j])
            s.l_rolls = int(l_used[j])
        return scheds, waves

    def _measure_batch_waves(self, indices: Sequence[int], span) -> MeasurementSet:
        """Wave-based resilient batch engine: vectorized measurement under
        faults and/or drift, bit-identical to the serial resilient loop.

        Phases:

        1. *classify & resolve* — evaluate every not-in-DB configuration
           through the simulator batch API once; resolve the retry
           schedule of every first-probe job in vectorized attempt waves
           of keyed fault draws (device resets that revive cached
           configurations trigger rare on-demand re-resolutions with
           continued attempt counters); walk the positions once to fix
           each position's outcome and RNG draw count;
        2. *draw* — all measurement noise in a single RNG call, all
           outlier uniforms in one vectorized peek;
        3. *commit scan* — an O(n) scalar arithmetic replay of the ledger
           charges in serial order (the drift clock is a prefix sum of
           charges into which measured times feed back), applying drift
           factors from per-regime batched quirk draws and re-validating
           every budget decision against the exact ledger floats;
        4. *commit* — ledger buckets, stats, caches, quarantine, injector
           counters, drift counters, DB write-through, trace counters.

        All phases before 4 are pure; a budget-rounding disagreement in
        phase 3 restores the RNG state and re-runs the batch through the
        serial loop inside the same ``measure.batch.waves`` span.
        """
        t0 = time.perf_counter()
        ctx = self.context
        faults = ctx.faults
        drift = ctx.drift
        policy = self.retry
        repeats = self.repeats
        model = ctx.measurement
        sigma = model.device.timing_noise_sigma
        device = ctx.device.spec
        kernel_name = self.spec.name
        device_name = device.name
        db = self.db
        idx: List[int] = [int(i) for i in indices]
        n = len(idx)

        # -- unique indices, DB state at entry, batch simulation ------------
        uniq: List[int] = []
        seen: set = set()
        for i in idx:
            if i not in seen:
                seen.add(i)
                uniq.append(i)
        db_known: Dict[int, Optional[float]] = {}
        if db is not None:
            for i in uniq:
                if db.has(kernel_name, device_name, i):
                    db_known[i] = db.get(kernel_name, device_name, i)
        # Everything the DB cannot serve may need a base time — including
        # configurations cached at entry, which a device reset can revive.
        sim_ids = [i for i in uniq if i not in db_known]
        pos_of: Dict[int, int] = {i: j for j, i in enumerate(sim_ids)}
        stage_of: Dict[int, int] = {}
        base_of: Dict[int, Optional[float]] = {}
        compile_of: Dict[int, float] = {}
        tuples_of: Dict[int, tuple] = {}
        cfg_hashes = np.empty(0, dtype=np.uint64)
        okey_hashes = np.empty(0, dtype=np.uint64)
        if sim_ids:
            sim_arr = np.asarray(sim_ids, dtype=np.int64)
            tuples = self.spec.config_tuples(sim_arr)
            wb = self.spec.workload_batch(sim_arr, device, config_tuples=tuples)
            be = execute_batch(
                wb, device, kernel_name=kernel_name, config_tuples=tuples
            )
            compile_costs = device.compile_time_base_s + (
                device.compile_time_per_unroll_s * (wb.unroll_factor - 1)
            )
            for j, i in enumerate(sim_ids):
                stage_of[i] = int(be.stages[j])
                base_of[i] = (
                    float(be.times[j])
                    if be.stages[j] == STAGE_OK_CODE
                    else None
                )
                compile_of[i] = float(compile_costs[j])
                tuples_of[i] = tuples[j]
            # Fault config keys and drift quirk keys share one structure:
            # part64((kernel, config_tuple)) per configuration.
            if faults is not None or (
                drift is not None and drift.profile.contention_sigma > 0.0
            ):
                int_matrix = self.spec.space.int_values_matrix(sim_arr)
                cfg_hashes = DriftModel.quirk_key_hashes(kernel_name, int_matrix)
            if faults is not None and faults.profile.p_outlier > 0.0:
                okey_hashes = faults.index_key_hashes(kernel_name, sim_arr)

        # -- phase 1a: resolve first-probe retry schedules in waves ---------
        scheds_by_index: Dict[int, _ProbeSchedule] = {}
        waves = 0
        if faults is not None:
            new_ids = [
                i for i in sim_ids
                if i not in self._cache and i not in self.quarantine
            ]
            if new_ids:
                jsel = np.asarray([pos_of[i] for i in new_ids], dtype=np.int64)
                b0 = np.asarray(
                    [faults.attempts_of("build", (kernel_name, tuples_of[i]))
                     for i in new_ids], dtype=np.int64,
                )
                l0 = np.asarray(
                    [faults.attempts_of("launch", (kernel_name, tuples_of[i]))
                     for i in new_ids], dtype=np.int64,
                )
                scheds, w = self._resolve_probe_jobs(
                    np.asarray([stage_of[i] for i in new_ids], dtype=np.int64),
                    np.asarray([compile_of[i] for i in new_ids]),
                    cfg_hashes[jsel],
                    b0,
                    l0,
                )
                waves += w
                scheds_by_index = dict(zip(new_ids, scheds))
        elif sim_ids:
            waves += 1  # one fault-free evaluation wave under drift

        # -- phase 1b: classification scan (no RNG, no ledger floats) -------
        # Entry tuples: (type, schedule-or-None, base-or-None) per position.
        E_DB, E_CACHED_OK, E_CACHED_INV, E_FRESH, E_QUAR = range(5)
        local_cache: Dict[int, Optional[float]] = dict(self._cache)
        q_local: set = set()
        resolved: set = set()
        entries: List[tuple] = []
        counts = np.zeros(n, dtype=np.int64)
        consumed_b: Dict[int, int] = {}
        consumed_l: Dict[int, int] = {}
        outlier_n: Dict[int, int] = {}
        outlier_jobs: List[tuple] = []  # (position, index, in-batch roll no.)
        used_scheds: List[_ProbeSchedule] = []
        p_outlier = faults.profile.p_outlier if faults is not None else 0.0
        for p, i in enumerate(idx):
            if db is not None and (i in db_known or i in resolved):
                entries.append((E_DB, None, None))
                continue
            if faults is not None and (i in self.quarantine or i in q_local):
                entries.append((E_QUAR, None, None))
                continue
            if i in local_cache:
                base = local_cache[i]
                if base is None:
                    entries.append((E_CACHED_INV, None, None))
                    if db is not None:
                        resolved.add(i)
                else:
                    entries.append((E_CACHED_OK, None, base))
                    if sigma != 0.0:
                        counts[p] = repeats
                    if db is not None:
                        resolved.add(i)
                    if p_outlier > 0.0:
                        a = outlier_n.get(i, 0)
                        outlier_n[i] = a + 1
                        outlier_jobs.append((p, i, a))
                continue
            # Fresh: a first probe (faults) or a plain evaluation (drift
            # only) — either way the schedule codes drive the commit scan.
            if faults is not None:
                sched = scheds_by_index.pop(i, None)
                if sched is None:
                    # Reset-revived configuration: re-probe with continued
                    # attempt counters (rare — only after a device reset).
                    key = (kernel_name, tuples_of[i])
                    one, w = self._resolve_probe_jobs(
                        np.asarray([stage_of[i]], dtype=np.int64),
                        np.asarray([compile_of[i]]),
                        cfg_hashes[[pos_of[i]]],
                        np.asarray(
                            [faults.attempts_of("build", key)
                             + consumed_b.get(i, 0)], dtype=np.int64,
                        ),
                        np.asarray(
                            [faults.attempts_of("launch", key)
                             + consumed_l.get(i, 0)], dtype=np.int64,
                        ),
                    )
                    sched = one[0]
                    waves += w
                consumed_b[i] = consumed_b.get(i, 0) + sched.b_rolls
                consumed_l[i] = consumed_l.get(i, 0) + sched.l_rolls
                used_scheds.append(sched)
            else:
                sched = _ProbeSchedule()
                stage = stage_of[i]
                if stage == STAGE_OK_CODE:
                    sched.events.append("ok")
                    sched.outcome = "ok"
                elif stage == STAGE_BUILD_CODE:
                    sched.events.append("binv")
                    sched.outcome = "invalid"
                else:
                    sched.events.append("linv")
                    sched.outcome = "invalid"
            entries.append((E_FRESH, sched, base_of[i]))
            if "reset" in sched.events:
                local_cache.clear()
            if sched.outcome == "ok":
                local_cache[i] = base_of[i]
                if sigma != 0.0:
                    counts[p] = 1 + repeats
                if db is not None:
                    resolved.add(i)
                if p_outlier > 0.0:
                    a = outlier_n.get(i, 0)
                    outlier_n[i] = a + 1
                    outlier_jobs.append((p, i, a))
            elif sched.outcome == "invalid":
                local_cache[i] = None
                if db is not None:
                    resolved.add(i)
            else:
                q_local.add(i)

        # -- phase 2: all noise in one RNG call, outliers in one peek -------
        total_draws = int(counts.sum())
        rng_state = None
        if total_draws:
            rng_state = model.rng.bit_generator.state
            factors = np.exp(sigma * model.rng.standard_normal(total_draws))
        else:
            factors = np.empty(0)
        starts = np.cumsum(counts) - counts
        outlier_hit_at: Dict[int, bool] = {}
        if outlier_jobs:
            khs = np.asarray(
                [okey_hashes[pos_of[i]] for _, i, _ in outlier_jobs],
                dtype=np.uint64,
            )
            atts = np.asarray(
                [faults.attempts_of("outlier", (kernel_name, i)) + a
                 for _, i, a in outlier_jobs], dtype=np.int64,
            )
            u_out = faults.peek_uniforms("outlier", khs, atts)
            for (p, _, _), u in zip(outlier_jobs, u_out):
                outlier_hit_at[p] = bool(u < p_outlier)

        # -- phase 3: commit scan (exact ledger replay + drift clock) -------
        ledger = ctx.ledger
        c = ledger.compile_s
        r = ledger.run_s
        f_ = ledger.failed_s
        ry = ledger.retry_s
        idle = drift.idle_s if drift is not None else 0.0
        csigma = drift.profile.contention_sigma if drift is not None else 0.0
        d_last = drift.last_regime if drift is not None else 0
        d_shifts = drift.shifts_seen if drift is not None else 0
        d_applied = drift.applied if drift is not None else 0
        regime_globals: Dict[int, float] = {}
        quirk_rows: Dict[int, np.ndarray] = {}

        def drift_factor(t_s: float, i: int) -> float:
            # Replicates DriftModel.factor (counters included), with the
            # per-config quirks drawn once per regime for the whole batch.
            nonlocal d_last, d_shifts, d_applied
            regime = drift.regime_at(t_s)
            if regime != d_last:
                d_shifts += 1
                d_last = regime
            g = regime_globals.get(regime)
            if g is None:
                g = drift.regime_global(regime)
                regime_globals[regime] = g
            if regime <= 0 or csigma == 0.0:
                q = 1.0
            else:
                row = quirk_rows.get(regime)
                if row is None:
                    row = drift.regime_quirks_many(regime, cfg_hashes)
                    quirk_rows[regime] = row
                q = row[pos_of[i]]
            fac = drift.throttle_at(t_s) * g * q
            if fac != 1.0:
                d_applied += 1
            return fac

        hang_w = 0.0
        reset_cost = 0.0
        outlier_factor = 1.0
        if faults is not None:
            hang_w = min(faults.profile.hang_duration_s, policy.launch_timeout_s)
            reset_cost = faults.profile.reset_cost_s
            outlier_factor = faults.profile.outlier_factor
        ok_idx: List[int] = []
        ok_times: List[float] = []
        bad_idx: List[int] = []
        quarantined_idx: List[int] = []
        values: Dict[int, Optional[float]] = {}
        n_sim = n_cache = n_db = n_inv = 0
        inj_tb = inj_tl = inj_hang = inj_reset = inj_out = 0
        st_retries = st_quar = 0
        conflict = False
        for p, i in enumerate(idx):
            typ, sched, base = entries[p]
            if typ == E_DB:
                v = db_known[i] if i in db_known else values[i]
                n_db += 1
                if v is None:
                    n_inv += 1
                    bad_idx.append(i)
                else:
                    ok_idx.append(i)
                    ok_times.append(float(v))
                continue
            if typ == E_QUAR:
                quarantined_idx.append(i)
                continue
            if typ == E_CACHED_INV:
                n_cache += 1
                n_inv += 1
                values[i] = None
                bad_idx.append(i)
                continue
            if typ == E_CACHED_OK:
                n_cache += 1
                if drift is not None:
                    t2 = base * drift_factor((c + r + f_ + ry) + idle, i)
                else:
                    t2 = base
                r += t2 * repeats
                if sigma != 0.0:
                    s0 = int(starts[p])
                    value = float((t2 * factors[s0:s0 + repeats]).min())
                else:
                    value = float(t2)
                if outlier_hit_at.get(p):
                    value = value * outlier_factor
                    inj_out += 1
                values[i] = value
                ok_idx.append(i)
                ok_times.append(value)
                continue
            # E_FRESH: replay the resolved schedule charge for charge.
            spent0 = c + r + f_ + ry
            bi = 0
            for a_no, ev in enumerate(sched.events, start=1):
                if ev == "tb":
                    f_ += FAILED_BUILD_COST_S
                    inj_tb += 1
                elif ev == "binv":
                    f_ += FAILED_BUILD_COST_S
                elif ev == "linv":
                    c += compile_of[i]
                    f_ += FAILED_LAUNCH_COST_S
                elif ev == "reset":
                    c += compile_of[i]
                    f_ += reset_cost
                    inj_reset += 1
                elif ev == "hang":
                    c += compile_of[i]
                    f_ += hang_w
                    inj_hang += 1
                elif ev == "tl":
                    c += compile_of[i]
                    f_ += FAILED_LAUNCH_COST_S
                    inj_tl += 1
                else:  # "ok": compile, then the probe launch
                    c += compile_of[i]
                    if drift is not None:
                        t1 = base * drift_factor((c + r + f_ + ry) + idle, i)
                    else:
                        t1 = base
                    if sigma != 0.0:
                        measured = float(t1 * factors[int(starts[p])])
                    else:
                        measured = t1
                    r += measured
                if ev in ("tb", "reset", "hang", "tl"):
                    exceeded = (c + r + f_ + ry) - spent0 > policy.config_budget_s
                    if exceeded != sched.broke[bi]:
                        conflict = True
                        break
                    bi += 1
                    if not exceeded and a_no < policy.max_attempts:
                        ry += policy.backoff_s(a_no)
                        st_retries += 1
            if conflict:
                break
            if sched.outcome == "ok":
                n_sim += 1
                if drift is not None:
                    t2 = base * drift_factor((c + r + f_ + ry) + idle, i)
                else:
                    t2 = base
                r += t2 * (repeats - 1)
                if sigma != 0.0:
                    s0 = int(starts[p]) + 1
                    value = float((t2 * factors[s0:s0 + repeats]).min())
                else:
                    value = float(t2)
                if outlier_hit_at.get(p):
                    value = value * outlier_factor
                    inj_out += 1
                values[i] = value
                ok_idx.append(i)
                ok_times.append(value)
            elif sched.outcome == "invalid":
                n_sim += 1
                n_inv += 1
                values[i] = None
                bad_idx.append(i)
            else:
                st_quar += 1
                quarantined_idx.append(i)

        if conflict:
            # Constant-sum budget heuristic disagreed with the exact
            # ledger floats: nothing was committed and the RNG rewinds,
            # so the serial loop reproduces the batch from scratch.
            if rng_state is not None:
                model.rng.bit_generator.state = rng_state
            return self._measure_batch_resilient(idx, span)

        # -- phase 4: commit -------------------------------------------------
        ledger.compile_s = float(c)
        ledger.run_s = float(r)
        ledger.failed_s = float(f_)
        ledger.retry_s = float(ry)
        self._cache.clear()
        self._cache.update(local_cache)
        self.quarantine |= q_local
        if faults is not None:
            for i, nb in consumed_b.items():
                faults.bump_attempts("build", (kernel_name, tuples_of[i]), nb)
            for i, nl in consumed_l.items():
                faults.bump_attempts("launch", (kernel_name, tuples_of[i]), nl)
            for i, no in outlier_n.items():
                faults.bump_attempts("outlier", (kernel_name, i), no)
            inj = faults.injected
            inj["transient_build"] += inj_tb
            inj["transient_launch"] += inj_tl
            inj["hang"] += inj_hang
            inj["reset"] += inj_reset
            inj["outlier"] += inj_out
        if drift is not None:
            drift.last_regime = d_last
            drift.shifts_seen = d_shifts
            drift.applied = d_applied
        if db is not None and values:
            db.put_many(kernel_name, device_name, dict(values))
        n_transient = inj_tb + inj_tl + inj_reset
        stats = self.stats
        stats.n_requested += n
        stats.n_simulated += n_sim
        stats.n_cache_hits += n_cache
        stats.n_db_hits += n_db
        stats.n_invalid += n_inv
        stats.n_transient += n_transient
        stats.n_timeouts += inj_hang
        stats.n_retries += st_retries
        stats.n_quarantined += st_quar
        stats.n_waves += waves
        stats.elapsed_s += time.perf_counter() - t0

        tracer = ctx.tracer
        if tracer.enabled:
            tracer.count("measure.requested", n)
            tracer.count("fault.transient", n_transient)
            tracer.count("fault.timeouts", inj_hang)
            tracer.count("fault.retries", st_retries)
            tracer.count("fault.quarantined", st_quar)
            tracer.count("measure.waves", waves)
            span.set(
                n=n,
                invalid=len(bad_idx),
                quarantined=len(quarantined_idx),
                transient=n_transient,
                timeouts=inj_hang,
                retries=st_retries,
                waves=waves,
            )
        return MeasurementSet(
            indices=np.asarray(ok_idx, dtype=np.int64),
            times_s=np.asarray(ok_times, dtype=np.float64),
            invalid_indices=np.asarray(bad_idx, dtype=np.int64),
            quarantined_indices=np.asarray(quarantined_idx, dtype=np.int64),
        )

    def _measure_batch(self, indices: Sequence[int], span) -> MeasurementSet:
        t0 = time.perf_counter()
        idx: List[int] = [int(i) for i in indices]
        n = len(idx)
        repeats = self.repeats
        model = self.context.measurement
        sigma = model.device.timing_noise_sigma
        device = self.context.device.spec
        kernel_name = self.spec.name
        device_name = device.name
        db = self.db

        kinds = np.empty(n, dtype=np.int8)
        true_vals = np.full(n, np.nan)
        results = np.full(n, np.nan)
        valid = np.zeros(n, dtype=bool)
        src_pos = np.full(n, -1, dtype=np.int64)
        fresh_list: List[int] = []
        fresh_positions: List[int] = []
        # index -> position of the occurrence a later duplicate would be
        # served from.  With a DB attached that is any earlier measured
        # position (its value is in the DB by the time the duplicate runs in
        # the scalar loop); without one, only fresh occurrences matter
        # (cache-served re-measures legitimately redraw noise every time).
        pending: Dict[int, int] = {}

        for p, i in enumerate(idx):
            if db is not None and db.has(kernel_name, device_name, i):
                kinds[p] = _DB
                v = db.get(kernel_name, device_name, i)
                if v is not None:
                    results[p] = v
                    valid[p] = True
            elif i in pending:
                kinds[p] = _DUP
                src_pos[p] = pending[i]
            elif i in self._cache:
                kinds[p] = _CACHED
                t = self._cache[i]
                if t is not None:
                    true_vals[p] = t
                if db is not None:
                    pending[i] = p
            else:
                kinds[p] = _FRESH
                fresh_list.append(i)
                fresh_positions.append(p)
                pending[i] = p

        # -- simulate all first-occurrence configs in one batch --------------
        compile_c = np.zeros(n)
        failed_c = np.zeros(n)
        if fresh_list:
            fresh_arr = np.asarray(fresh_list, dtype=np.int64)
            fp = np.asarray(fresh_positions, dtype=np.int64)
            tuples = self.spec.config_tuples(fresh_arr)
            wb = self.spec.workload_batch(fresh_arr, device, config_tuples=tuples)
            be = execute_batch(
                wb, device, kernel_name=kernel_name, config_tuples=tuples
            )
            true_vals[fp] = be.times
            build_bad = be.stages == STAGE_BUILD_CODE
            ok = be.stages == STAGE_OK_CODE
            failed_c[fp[build_bad]] = FAILED_BUILD_COST_S
            failed_c[fp[~build_bad & ~ok]] = FAILED_LAUNCH_COST_S
            compile_costs = device.compile_time_base_s + (
                device.compile_time_per_unroll_s * (wb.unroll_factor - 1)
            )
            compile_c[fp[~build_bad]] = compile_costs[~build_bad]
            for j, i in enumerate(fresh_list):
                t = be.times[j]
                self._cache[i] = float(t) if ok[j] else None

        mask_fc = (kinds == _FRESH) | (kinds == _CACHED)
        valid[mask_fc] = ~np.isnan(true_vals[mask_fc])
        mask_dup = kinds == _DUP
        dup_idx = np.nonzero(mask_dup)[0]
        if dup_idx.size:
            valid[dup_idx] = valid[src_pos[dup_idx]]
            if db is None:
                true_vals[dup_idx] = true_vals[src_pos[dup_idx]]

        # -- one RNG call for every noise draw, in scalar-loop order ----------
        # A zero-sigma device draws nothing at all (matching observe /
        # observe_many, which skip the RNG entirely at sigma == 0), so the
        # generator state is identical whichever path measured.
        fresh_valid = (kinds == _FRESH) & valid
        counts = np.zeros(n, dtype=np.int64)
        if sigma != 0.0:
            counts[fresh_valid] = 1 + repeats
            counts[(kinds == _CACHED) & valid] = repeats
            if db is None:
                counts[mask_dup & valid] = repeats
        total_draws = int(counts.sum())
        if total_draws:
            factors = np.exp(sigma * model.rng.standard_normal(total_draws))
        else:
            factors = np.empty(0)
        starts = np.cumsum(counts) - counts

        obs = np.zeros(n)
        obs[fresh_valid] = true_vals[fresh_valid]
        if sigma != 0.0:
            obs[fresh_valid] *= factors[starts[fresh_valid]]
            meas_mask = counts >= repeats  # positions that redraw best-of
            if meas_mask.any():
                # Measurement draws are the last `repeats` of each position.
                m_starts = starts[meas_mask] + counts[meas_mask] - repeats
                gathered = factors[m_starts[:, None] + np.arange(repeats)]
                results[meas_mask] = (
                    true_vals[meas_mask][:, None] * gathered
                ).min(axis=1)
        else:
            # Noise-free: best-of-N of identical values is the true time.
            meas_mask = fresh_valid | ((kinds == _CACHED) & valid)
            if db is None:
                meas_mask = meas_mask | (mask_dup & valid)
            results[meas_mask] = true_vals[meas_mask]
        if db is not None and dup_idx.size:
            results[dup_idx] = results[src_pos[dup_idx]]

        # -- ledger, accumulated in input order --------------------------------
        run_c = np.zeros((n, 2))
        run_c[fresh_valid, 0] = obs[fresh_valid]
        run_c[fresh_valid, 1] = true_vals[fresh_valid] * (repeats - 1)
        recharged = (kinds == _CACHED) & valid
        if db is None:
            recharged = recharged | (mask_dup & valid)
        run_c[recharged, 1] = true_vals[recharged] * repeats
        ledger = self.context.ledger
        ledger.compile_s = _sequential_sum(ledger.compile_s, compile_c)
        ledger.run_s = _sequential_sum(ledger.run_s, run_c.ravel())
        ledger.failed_s = _sequential_sum(ledger.failed_s, failed_c)

        # -- write-through + stats --------------------------------------------
        if db is not None and pending:
            items = {
                i: (float(results[p]) if valid[p] else None)
                for i, p in pending.items()
            }
            db.put_many(kernel_name, device_name, items)

        stats = self.stats
        stats.n_requested += n
        stats.n_simulated += len(fresh_list)
        n_dup = int(dup_idx.size)
        n_db = int(np.count_nonzero(kinds == _DB))
        if db is None:
            n_cached = int(np.count_nonzero(kinds == _CACHED)) + n_dup
            n_db_served = n_db
        else:
            n_cached = int(np.count_nonzero(kinds == _CACHED))
            n_db_served = n_db + n_dup
        stats.n_cache_hits += n_cached
        stats.n_db_hits += n_db_served
        n_bad = int(np.count_nonzero(~valid))
        stats.n_invalid += n_bad
        stats.elapsed_s += time.perf_counter() - t0

        # Fold the engine counters into the trace (aggregate per batch —
        # never per configuration, so a disabled tracer costs a handful of
        # no-op calls for the whole sweep).
        tracer = self.context.tracer
        if tracer.enabled:
            tracer.count("measure.requested", n)
            tracer.count("measure.simulated", len(fresh_list))
            tracer.count("measure.cache_hits", n_cached)
            tracer.count("measure.db_hits", n_db_served)
            tracer.count("measure.invalid", n_bad)
            span.set(
                n=n,
                simulated=len(fresh_list),
                cache_hits=n_cached,
                db_hits=n_db_served,
                invalid=n_bad,
            )

        idx_arr = np.asarray(idx, dtype=np.int64)
        return MeasurementSet(
            indices=idx_arr[valid],
            times_s=results[valid],
            invalid_indices=idx_arr[~valid],
        )

    def sample_and_measure(
        self, n: int, rng: np.random.Generator
    ) -> MeasurementSet:
        """Stage one of the tuner: measure ``n`` uniform random configs."""
        indices = self.spec.space.sample_indices(n, rng)
        return self.measure_batch(indices)
