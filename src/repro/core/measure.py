"""Measurement loop: configurations in, (time | invalid) out.

The :class:`Measurer` drives the runtime facade exactly the way a
pyopencl-based harness drives real OpenCL — build, enqueue, wait, read the
profiled duration, catch build/launch failures — and memoizes per-
configuration state so re-measuring a configuration only redraws
measurement noise (a real harness would likewise cache compiled binaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.kernels.base import KernelSpec
from repro.runtime import BuildError, Context, LaunchError, Program


@dataclass
class MeasurementSet:
    """Outcome of measuring a batch of configurations.

    ``indices``/``times_s`` hold the *valid* measurements (aligned);
    ``invalid_indices`` the configurations that failed to build or launch.
    """

    indices: np.ndarray
    times_s: np.ndarray
    invalid_indices: np.ndarray

    @property
    def n_valid(self) -> int:
        return int(self.indices.shape[0])

    @property
    def n_invalid(self) -> int:
        return int(self.invalid_indices.shape[0])

    @property
    def invalid_fraction(self) -> float:
        total = self.n_valid + self.n_invalid
        return self.n_invalid / total if total else 0.0

    def best(self) -> tuple:
        """(index, time) of the fastest valid measurement."""
        if self.n_valid == 0:
            raise ValueError("no valid measurements")
        j = int(np.argmin(self.times_s))
        return int(self.indices[j]), float(self.times_s[j])

    def merged_with(self, other: "MeasurementSet") -> "MeasurementSet":
        return MeasurementSet(
            indices=np.concatenate([self.indices, other.indices]),
            times_s=np.concatenate([self.times_s, other.times_s]),
            invalid_indices=np.concatenate(
                [self.invalid_indices, other.invalid_indices]
            ),
        )


class Measurer:
    """Measures configurations of one kernel on one context.

    Parameters
    ----------
    context:
        Runtime context (device + seeded noise + cost ledger).
    spec:
        The benchmark to measure.
    repeats:
        Launches per measurement; the reported time is the minimum (usual
        kernel-benchmarking practice — interference only slows you down).
    """

    def __init__(self, context: Context, spec: KernelSpec, repeats: int = 3):
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.context = context
        self.spec = spec
        self.repeats = repeats
        # index -> true time (seconds), or None for invalid.
        self._cache: Dict[int, Optional[float]] = {}

    # -- single configuration ------------------------------------------------

    def true_time(self, index: int) -> Optional[float]:
        """Noise-free time of a configuration, or None if invalid.

        First call per configuration pays build cost in the ledger (and
        failure cost for invalid ones), as a compile-cache-equipped real
        harness would.
        """
        index = int(index)
        if index in self._cache:
            return self._cache[index]
        config = self.spec.space[index]
        try:
            kernel = Program(self.context, self.spec, config).build()
            event = kernel.enqueue()
        except (BuildError, LaunchError):
            self._cache[index] = None
            return None
        self._cache[index] = event.true_duration_s
        return event.true_duration_s

    def measure(self, index: int) -> Optional[float]:
        """Best-of-``repeats`` noisy measurement, or None if invalid."""
        true = self.true_time(index)
        if true is None:
            return None
        self.context.ledger.run_s += true * (self.repeats - 1)
        return self.context.measurement.best_of(true, self.repeats)

    def is_valid(self, index: int) -> bool:
        return self.true_time(index) is not None

    # -- batches ---------------------------------------------------------------

    def measure_batch(self, indices: Sequence[int]) -> MeasurementSet:
        """Measure many configurations, splitting valid from invalid."""
        ok: List[int] = []
        times: List[float] = []
        bad: List[int] = []
        for i in indices:
            t = self.measure(int(i))
            if t is None:
                bad.append(int(i))
            else:
                ok.append(int(i))
                times.append(t)
        return MeasurementSet(
            indices=np.asarray(ok, dtype=np.int64),
            times_s=np.asarray(times, dtype=np.float64),
            invalid_indices=np.asarray(bad, dtype=np.int64),
        )

    def sample_and_measure(
        self, n: int, rng: np.random.Generator
    ) -> MeasurementSet:
        """Stage one of the tuner: measure ``n`` uniform random configs."""
        indices = self.spec.space.sample_indices(n, rng)
        return self.measure_batch(indices)
