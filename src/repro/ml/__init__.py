"""From-scratch machine-learning stack (NumPy only).

The paper's model is a bagged ensemble (k = 11) of single-hidden-layer
artificial neural networks (30 sigmoid neurons) regressing the *logarithm*
of execution time — :class:`~repro.ml.mlp.MLPRegressor` wrapped in
:class:`~repro.ml.bagging.BaggedRegressor`.  Everything is implemented on
plain NumPy (the environment has no scikit-learn; the original authors also
rolled their own) with gradient-checked backpropagation.

Baseline regressors reproduce the related-work comparison angle:
boosted regression trees (Bergstra et al. [29]), a single regression tree
(Starchart [30]), random forests, k-nearest-neighbours and ridge
regression — all sharing the same ``fit(X, y)`` / ``predict(X)`` protocol.
"""

from repro.ml.activations import ACTIVATIONS, Identity, ReLU, Sigmoid, Tanh
from repro.ml.bagging import BaggedRegressor
from repro.ml.boosting import GradientBoostedTrees
from repro.ml.ensemble import EnsembleMLPRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.knn import KNNRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import (
    mean_absolute_error,
    mean_relative_error,
    mean_squared_error,
    r2_score,
)
from repro.ml.mlp import MLPRegressor
from repro.ml.model_selection import (
    cross_val_score,
    k_fold_indices,
    learning_curve,
    train_test_split,
)
from repro.ml.scaling import StandardScaler
from repro.ml.tree import RegressionTree

__all__ = [
    "ACTIVATIONS",
    "Sigmoid",
    "Tanh",
    "ReLU",
    "Identity",
    "MLPRegressor",
    "EnsembleMLPRegressor",
    "BaggedRegressor",
    "train_test_split",
    "k_fold_indices",
    "cross_val_score",
    "learning_curve",
    "StandardScaler",
    "RegressionTree",
    "RandomForestRegressor",
    "GradientBoostedTrees",
    "KNNRegressor",
    "RidgeRegression",
    "mean_relative_error",
    "mean_squared_error",
    "mean_absolute_error",
    "r2_score",
]
