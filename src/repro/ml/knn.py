"""k-nearest-neighbours regression baseline.

Magni et al. (the paper's ref. [26]) use nearest-neighbour prediction for
a related tuning problem; it serves here as the local/non-parametric point
in the model-family ablation.
"""

from __future__ import annotations

import numpy as np


class KNNRegressor:
    """Mean (optionally inverse-distance-weighted) of the k nearest
    training points under the Euclidean metric.

    Brute-force distances — training sets in this problem are a few
    thousand points with ~10 features, where vectorized brute force beats
    tree indices.
    """

    def __init__(self, k: int = 5, weighted: bool = False):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.weighted = weighted
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X{X.shape} y{y.shape}")
        if X.shape[0] < self.k:
            raise ValueError(f"need at least k={self.k} samples")
        self._X = X
        self._y = y
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0])
        # Chunked to bound the distance-matrix working set.
        chunk = max(1, int(2**22 // max(1, self._X.shape[0])))
        for start in range(0, X.shape[0], chunk):
            q = X[start : start + chunk]
            d2 = ((q[:, None, :] - self._X[None, :, :]) ** 2).sum(axis=2)
            nn = np.argpartition(d2, self.k - 1, axis=1)[:, : self.k]
            rows = np.arange(q.shape[0])[:, None]
            if self.weighted:
                w = 1.0 / (np.sqrt(d2[rows, nn]) + 1e-12)
                out[start : start + chunk] = (w * self._y[nn]).sum(axis=1) / w.sum(
                    axis=1
                )
            else:
                out[start : start + chunk] = self._y[nn].mean(axis=1)
        return out
