"""CART regression tree (variance-reduction splits).

Starchart (the paper's ref. [30]) builds auto-tuners from recursive
partitioning regression trees; this is that model for the model-family
ablation, and the weak learner inside the forest and boosting ensembles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """Internal (feature/threshold set) or leaf (value set) node."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """Binary regression tree, greedy variance-reduction splitting.

    Parameters
    ----------
    max_depth:
        Depth cap (root = depth 0).
    min_samples_leaf:
        A split is rejected if either side would fall below this.
    max_features:
        Features considered per split: ``None`` = all, an int, or
        ``"sqrt"`` (what random forests pass in).
    rng:
        Only used when ``max_features`` restricts the candidate set.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features=None,
        rng: np.random.Generator | None = None,
    ):
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng if rng is not None else np.random.default_rng()
        self._root: _Node | None = None

    # -- fitting ------------------------------------------------------------

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None:
            return np.arange(n_features)
        if self.max_features == "sqrt":
            m = max(1, int(np.sqrt(n_features)))
        else:
            m = min(int(self.max_features), n_features)
        return self.rng.choice(n_features, size=m, replace=False)

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        """Exhaustive scan: O(features * n log n) via sorted prefix sums."""
        n = y.shape[0]
        best_gain, best_feat, best_thr = 0.0, -1, 0.0
        total_sum = y.sum()
        total_sq = (y * y).sum()
        parent_sse = total_sq - total_sum * total_sum / n
        for f in self._candidate_features(X.shape[1]):
            order = np.argsort(X[:, f], kind="stable")
            xs = X[order, f]
            ysorted = y[order]
            csum = np.cumsum(ysorted)
            csq = np.cumsum(ysorted * ysorted)
            # Split after position i (left = [0..i]); only where x changes.
            i = np.arange(self.min_samples_leaf - 1, n - self.min_samples_leaf)
            valid = xs[i] < xs[i + 1]
            if not np.any(valid):
                continue
            i = i[valid]
            nl = i + 1.0
            nr = n - nl
            left_sse = csq[i] - csum[i] ** 2 / nl
            right_sum = total_sum - csum[i]
            right_sse = (total_sq - csq[i]) - right_sum**2 / nr
            gain = parent_sse - (left_sse + right_sse)
            j = int(np.argmax(gain))
            if gain[j] > best_gain + 1e-12:
                best_gain = float(gain[j])
                best_feat = int(f)
                best_thr = float(0.5 * (xs[i[j]] + xs[i[j] + 1]))
        return best_feat, best_thr, best_gain

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if (
            depth >= self.max_depth
            or y.shape[0] < 2 * self.min_samples_leaf
            or np.all(y == y[0])
        ):
            return node
        feat, thr, gain = self._best_split(X, y)
        if feat < 0 or gain <= 0.0:
            return node
        mask = X[:, feat] <= thr
        node.feature = feat
        node.threshold = thr
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X{X.shape} y{y.shape}")
        if X.shape[0] == 0:
            raise ValueError("empty training set")
        self._root = self._grow(X, y, 0)
        return self

    # -- prediction -----------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(X.shape[0])
        # Iterative vectorized descent: route index groups down the tree.
        stack = [(self._root, np.arange(X.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if node.is_leaf:
                out[idx] = node.value
                continue
            mask = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))
            stack.append((node.right, idx[~mask]))
        return out

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def d(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(d(node.left), d(node.right))

        if self._root is None:
            raise RuntimeError("tree not fitted")
        return d(self._root)

    @property
    def n_leaves(self) -> int:
        def count(node):
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        if self._root is None:
            raise RuntimeError("tree not fitted")
        return count(self._root)
