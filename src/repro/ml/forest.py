"""Random-forest regressor: bootstrap-sampled trees with feature
subsampling (the model family of the paper's ref. [27])."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.tree import RegressionTree


class RandomForestRegressor:
    """Mean of ``n_trees`` CART trees, each on a bootstrap resample with
    sqrt-feature splits."""

    def __init__(
        self,
        n_trees: int = 50,
        max_depth: int = 14,
        min_samples_leaf: int = 2,
        max_features="sqrt",
        seed: Optional[int] = None,
    ):
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees_: list[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X{X.shape} y{y.shape}")
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self.trees_ = []
        for _ in range(self.n_trees):
            idx = rng.integers(0, n, size=n)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=rng,
            )
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("predict() before fit()")
        preds = np.stack([t.predict(X) for t in self.trees_], axis=0)
        return preds.mean(axis=0)
