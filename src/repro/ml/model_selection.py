"""Data-splitting and evaluation utilities.

Small, dependency-free equivalents of the scikit-learn helpers the
experiments and ablations need: deterministic train/test splits, k-fold
index generation (the same fold semantics the bagging ensemble uses), and
learning curves (the machinery behind Figs. 4-7).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple

import numpy as np


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into (X_train, y_train, X_test, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y must align")
    n = X.shape[0]
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError("not enough samples to split")
    rng = rng if rng is not None else np.random.default_rng()
    order = rng.permutation(n)
    test, train = order[:n_test], order[n_test:]
    return X[train], y[train], X[test], y[test]


def k_fold_indices(
    n: int, k: int, rng: Optional[np.random.Generator] = None
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (train_idx, val_idx) pairs for k random folds.

    Fold assignment matches the bagging ensemble's (`permutation % k`), so
    cross-validation results relate directly to the ensemble's members.
    """
    if k < 2:
        raise ValueError("k must be >= 2")
    if n < k:
        raise ValueError(f"need at least k={k} samples, got {n}")
    rng = rng if rng is not None else np.random.default_rng()
    fold = rng.permutation(n) % k
    for i in range(k):
        val = np.nonzero(fold == i)[0]
        train = np.nonzero(fold != i)[0]
        yield train, val


def cross_val_score(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    metric: Callable[[np.ndarray, np.ndarray], float],
    k: int = 5,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """k-fold cross-validated metric values (one per fold)."""
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train, val in k_fold_indices(X.shape[0], k, rng):
        model = model_factory()
        model.fit(X[train], y[train])
        scores.append(metric(model.predict(X[val]), y[val]))
    return np.asarray(scores)


def learning_curve(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    sizes: Sequence[int],
    metric: Callable[[np.ndarray, np.ndarray], float],
    holdout: int,
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, float]:
    """Metric on a fixed holdout vs training-prefix size (Figs. 4-7 shape).

    The last ``holdout`` samples (after one shuffle) form the evaluation
    set; each size trains a fresh model on a prefix of the rest.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    n = X.shape[0]
    if holdout < 1 or holdout >= n:
        raise ValueError("holdout must be in [1, n)")
    if max(sizes) > n - holdout:
        raise ValueError(
            f"largest size {max(sizes)} exceeds available {n - holdout}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    order = rng.permutation(n)
    hold = order[-holdout:]
    pool = order[:-holdout]
    out: Dict[int, float] = {}
    for size in sizes:
        model = model_factory()
        take = pool[:size]
        model.fit(X[take], y[take])
        out[int(size)] = float(metric(model.predict(X[hold]), y[hold]))
    return out
