"""Training losses.

The paper minimizes mean squared error on the *log* of execution time so
that absolute error in log space equals relative error in time space
(§5.2).  The log transform itself lives in the auto-tuner's model wrapper
(:mod:`repro.core.model`); here the loss is a plain MSE.
"""

from __future__ import annotations

import numpy as np


class MSELoss:
    """Mean squared error, averaged over samples and outputs."""

    name = "mse"

    @staticmethod
    def value(pred: np.ndarray, target: np.ndarray) -> float:
        d = pred - target
        return float(np.mean(d * d))

    @staticmethod
    def gradient(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        """d loss / d pred (same shape as ``pred``)."""
        return 2.0 * (pred - target) / pred.size


class HuberLoss:
    """Huber loss: quadratic near zero, linear in the tails.

    Robust alternative used by the invalid-handling ablation, where a few
    penalized targets would otherwise dominate an MSE fit.
    """

    name = "huber"

    def __init__(self, delta: float = 1.0):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        d = pred - target
        a = np.abs(d)
        quad = 0.5 * d * d
        lin = self.delta * (a - 0.5 * self.delta)
        return float(np.mean(np.where(a <= self.delta, quad, lin)))

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        d = pred - target
        return np.clip(d, -self.delta, self.delta) / pred.size
