"""Gradient-boosted regression trees.

Bergstra, Pinto & Cox (the paper's ref. [29]) built their predictive
auto-tuner from boosted regression trees; this implementation (least-
squares boosting with shrinkage and optional subsampling) is the strongest
baseline in the model-family ablation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.tree import RegressionTree


class GradientBoostedTrees:
    """Stagewise least-squares boosting: each tree fits the residual of
    the ensemble so far, added with learning-rate shrinkage."""

    def __init__(
        self,
        n_stages: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 3,
        subsample: float = 1.0,
        seed: Optional[int] = None,
    ):
        if n_stages < 1:
            raise ValueError("n_stages must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_stages = n_stages
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.init_: float = 0.0
        self.stages_: list[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X{X.shape} y{y.shape}")
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self.init_ = float(y.mean())
        pred = np.full(n, self.init_)
        self.stages_ = []
        for _ in range(self.n_stages):
            residual = y - pred
            if self.subsample < 1.0:
                m = max(2 * self.min_samples_leaf, int(self.subsample * n))
                idx = rng.choice(n, size=min(m, n), replace=False)
            else:
                idx = np.arange(n)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rng=rng,
            )
            tree.fit(X[idx], residual[idx])
            pred += self.learning_rate * tree.predict(X)
            self.stages_.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.stages_:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        out = np.full(X.shape[0], self.init_)
        for tree in self.stages_:
            out += self.learning_rate * tree.predict(X)
        return out
