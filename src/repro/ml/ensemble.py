"""Vectorized bagged-MLP ensemble: all k members trained simultaneously.

Functionally equivalent to ``BaggedRegressor(MLPRegressor, k)`` — k
single-hidden-layer networks on leave-one-fold-out splits, mean prediction
— but an order of magnitude faster: member weights are stacked into
``(k, in, out)`` tensors and every forward/backward pass is one batched
einsum over all members, instead of k sequential Python-level fits.
Membership of a sample in a member's training set becomes a per-member
sample *weight* in the loss (1/|fold kept| or 0), which preserves exact
leave-one-fold-out semantics.

Two training engines share that tensor layout:

* ``fit_mode="adaptive"`` (the default) adds **member-wise early
  stopping with active-set compaction**: each member's loss is tracked
  separately, and a member whose own loss has plateaued for
  ``freeze_patience`` epochs is *frozen* — its weights are written back
  and its rows are physically removed from the ``(k, n, h)``
  forward/backward tensors and the Adam state, so the per-epoch cost
  shrinks as members finish instead of every member paying until the
  slowest one converges.  With freezing disabled
  (``freeze_patience=math.inf``) the adaptive loop is bit-identical to
  classic — same weights, same loss curve, same RNG draws — which is the
  property suite's anchor (``tests/test_ml_adaptive.py``).
* ``fit_mode="classic"`` keeps the original global-stop loop (all k
  members train until the *mean* loss plateaus) as the reference
  baseline the adaptive engine is gated against
  (``benchmarks/test_perf_fit.py``).

``fit(..., warm_start=True)`` additionally reuses the previous weights
(scaler statistics are refreshed from the new data, Adam state restarts)
so a refit on similar data converges in tens of epochs instead of
thousands — the drift-response path
(:meth:`repro.core.online.OnlineTuner._refit`) leans on this.

This is the trainer the experiment harness uses; the scalar
:class:`~repro.ml.mlp.MLPRegressor` remains the reference implementation
(and the ablations' single-network baseline).
"""

from __future__ import annotations

import math
import os
import tempfile
import time
import warnings
from typing import Optional

import numpy as np

from repro.ml.activations import get_activation
from repro.ml.optimizers import adam_step
from repro.ml.scaling import StandardScaler
from repro.obs import NULL_TRACER

#: Cap on the ``ensemble.loss_curve`` trace event: a 2000-epoch fit used
#: to serialize 2000 floats into every trace (and over the wire for
#: ``serve --trace`` / watch streams).  The event now carries at most
#: this many points — first, best and last epoch always included — plus
#: the full curve length as a field.
LOSS_CURVE_TRACE_POINTS = 64

#: Adam hyperparameters of the ensemble trainer (the historical inline
#: constants, now fed to the shared :func:`repro.ml.optimizers.adam_step`).
_ADAM_BETA1, _ADAM_BETA2, _ADAM_EPS = 0.9, 0.999, 1e-8


def _curve_trace_indices(curve, cap: int = LOSS_CURVE_TRACE_POINTS) -> np.ndarray:
    """Epoch indices to keep when downsampling a loss curve for tracing.

    At most ``cap`` indices; epoch 0, the best (lowest-loss) epoch and
    the final epoch are always among them.
    """
    n = len(curve)
    if n <= cap:
        return np.arange(n, dtype=np.int64)
    spaced = np.linspace(0, n - 1, num=cap - 1).astype(np.int64)
    best = np.int64(np.argmin(curve))
    return np.unique(np.concatenate([spaced, [best]]))


class EnsembleMLPRegressor:
    """k single-hidden-layer MLPs, batch-trained, mean-aggregated.

    Parameters
    ----------
    k:
        Ensemble size (11 in the paper).
    hidden:
        Hidden width (single hidden layer; the paper uses 30).
    activation:
        Hidden activation name.
    lr / epochs / tol / patience / l2:
        Full-batch Adam hyperparameters, mirroring ``MLPRegressor``.
    seed:
        Controls fold assignment and all weight initialization.
    fit_mode:
        ``"adaptive"`` (default) freezes and compacts members as they
        converge individually; ``"classic"`` is the original loop where
        every member trains until the *mean* loss plateaus.
    freeze_patience:
        Adaptive mode only: epochs a member's own loss may go without a
        relative improvement of ``freeze_tol`` before it is frozen.
        ``None`` derives a quarter of ``patience``; ``math.inf``
        disables freezing entirely (the bit-identity-with-classic
        mode).
    freeze_tol:
        Adaptive mode only: per-member relative-improvement threshold.
        ``None`` derives 100x ``tol``.
    """

    def __init__(
        self,
        k: int = 11,
        hidden: int = 30,
        activation: str = "sigmoid",
        lr: float = 0.02,
        epochs: int = 2000,
        tol: float = 1e-5,
        patience: int = 120,
        l2: float = 1e-5,
        seed: Optional[int] = None,
        fit_mode: str = "adaptive",
        freeze_patience: Optional[float] = None,
        freeze_tol: Optional[float] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if hidden < 1:
            raise ValueError("hidden must be >= 1")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if fit_mode not in ("adaptive", "classic"):
            raise ValueError(
                f"fit_mode must be 'adaptive' or 'classic', got {fit_mode!r}"
            )
        if freeze_patience is not None and not freeze_patience > 0:
            raise ValueError("freeze_patience must be positive (or None)")
        if freeze_tol is not None and freeze_tol < 0:
            raise ValueError("freeze_tol must be >= 0 (or None)")
        self.k = k
        self.hidden = hidden
        self.activation = get_activation(activation)
        self.lr = lr
        self.epochs = epochs
        self.tol = tol
        self.patience = patience
        self.l2 = l2
        self.seed = seed
        self.fit_mode = fit_mode
        self.freeze_patience = freeze_patience
        self.freeze_tol = freeze_tol
        self._params: list[np.ndarray] | None = None
        self._x_scaler = StandardScaler()
        self._y_scaler = StandardScaler()
        self.loss_curve_: list[float] = []
        #: Per-member epoch counts from the last fit: a frozen member
        #: stops accruing at its freeze epoch, so
        #: ``member_epochs_.sum()`` is the actual training work done
        #: (classic mode: every entry equals ``len(loss_curve_)``).
        self.member_epochs_: np.ndarray = np.zeros(0, dtype=np.int64)
        self.n_frozen_: int = 0
        self.stop_reason_: Optional[str] = None
        self.fit_wall_s_: float = 0.0
        self.warm_started_: bool = False
        #: Target-transform flag recovered from an archive's meta block by
        #: :meth:`load` (None when the archive predates it, or when the
        #: model was not loaded from disk).  The ensemble itself never
        #: transforms targets — the flag travels with the weights so
        #: PerformanceModel.load can validate the caller's assumption.
        self.saved_log_transform: Optional[bool] = None
        # Assigned by callers that trace (e.g. PerformanceModel); kept out
        # of the constructor so the hyperparameter signature stays pure.
        self.tracer = NULL_TRACER

    @property
    def n_features(self) -> int:
        """Input-feature dimensionality the fitted ensemble expects."""
        if self._params is None:
            raise RuntimeError("n_features before fit()/load()")
        return int(self._params[0].shape[1])

    # -- internals -----------------------------------------------------------

    def _forward(self, Xs: np.ndarray):
        """Batched forward: returns (hidden activations, predictions).

        ``Xs`` is (n, d); activations are (k, n, h), predictions (k, n).
        Broadcasted ``matmul`` (not einsum) so every contraction runs
        through BLAS.
        """
        W1, b1, W2, b2 = self._params
        A1 = self.activation.value(np.matmul(Xs, W1) + b1[:, None, :])
        pred = np.matmul(A1, W2[:, :, None])[:, :, 0] + b2[:, None]
        return A1, pred

    # -- public API -------------------------------------------------------------

    @property
    def _freeze_patience(self) -> float:
        """Effective member-freeze patience (adaptive mode).

        ``None`` derives a quarter of the global ``patience`` (floor
        10): the member criterion watches a single curve, not a k-way
        mean, so a shorter stale window reaches the same confidence —
        and members that merely *drip* below ``_freeze_tol`` still
        train on.  Tightening this much further measurably hurts
        downstream quality (tuner picks, cross-size extrapolation);
        ``benchmarks/test_perf_fit.py`` reports the divergence.
        """
        if self.freeze_patience is not None:
            return self.freeze_patience
        return float(max(10, self.patience // 4))

    @property
    def _freeze_tol(self) -> float:
        """Effective member-freeze improvement threshold.

        ``None`` derives 100x the global ``tol`` (0.1% relative for the
        default 1e-5): a member improving slower than that for a whole
        ``_freeze_patience`` window is refining digits the ensemble
        mean averages away, while the ensemble-level criterion keeps
        guarding the mean at full resolution.
        """
        return 100.0 * self.tol if self.freeze_tol is None else self.freeze_tol

    def fit(
        self, X: np.ndarray, y: np.ndarray, warm_start: bool = False
    ) -> "EnsembleMLPRegressor":
        """Train the ensemble on ``(X, y)``.

        ``warm_start=True`` reuses the previous fit's weights when the
        shapes still match (same k/hidden/feature width), falling back
        to a cold init — with a ``RuntimeWarning`` — when they don't.
        Scaler statistics are always refreshed from the new data and
        Adam restarts from zero moments; only the weights carry over.
        """
        t_start = time.perf_counter()
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X{X.shape} y{y.shape}")
        n, d = X.shape
        if n < max(2, self.k):
            raise ValueError(f"need at least {max(2, self.k)} samples, got {n}")

        h = self.hidden
        warm = False
        if warm_start and self._params is not None:
            if self._params[0].shape == (self.k, d, h):
                warm = True
            else:
                warnings.warn(
                    f"warm_start: previous weights have shape "
                    f"{self._params[0].shape}, need {(self.k, d, h)} "
                    f"(feature width or topology changed); "
                    f"falling back to cold init",
                    RuntimeWarning,
                    stacklevel=2,
                )

        # float32 training: the elementwise (k, n, h) work dominates and
        # regression targets here never need double precision.
        Xs = self._x_scaler.fit_transform(X).astype(np.float32)
        ys = self._y_scaler.fit_transform(y[:, None]).ravel().astype(np.float32)

        rng = np.random.default_rng(self.seed)
        # Leave-one-fold-out membership -> per-member mean weights.
        # Always the first RNG draw, warm or cold, so fold assignment is
        # a pure function of (seed, n).
        if self.k == 1:
            weights = np.full((1, n), 1.0 / n, dtype=np.float32)
        else:
            fold = rng.permutation(n) % self.k
            keep = fold[None, :] != np.arange(self.k)[:, None]
            weights = (keep / keep.sum(axis=1, keepdims=True)).astype(np.float32)

        if warm:
            # Reuse the weights (copied: a loaded archive may be
            # read-only or float64); the init draws below are skipped.
            self._params = [
                np.array(p, dtype=np.float32) for p in self._params
            ]
        else:
            limit1 = np.sqrt(6.0 / (d + h))
            limit2 = np.sqrt(6.0 / (h + 1))
            W1 = rng.uniform(-limit1, limit1, size=(self.k, d, h)).astype(
                np.float32
            )
            b1 = np.zeros((self.k, h), dtype=np.float32)
            W2 = rng.uniform(-limit2, limit2, size=(self.k, h)).astype(np.float32)
            b2 = np.zeros(self.k, dtype=np.float32)
            self._params = [W1, b1, W2, b2]
        self.warm_started_ = warm

        self.loss_curve_ = []
        with self.tracer.span(
            "ensemble.fit",
            k=self.k,
            hidden=self.hidden,
            n_samples=n,
            mode=self.fit_mode,
            warm_start=warm,
        ) as span:
            if self.fit_mode == "classic":
                stop_reason, best = self._train_classic(Xs, ys, weights)
            else:
                stop_reason, best = self._train_adaptive(Xs, ys, weights)
            self.stop_reason_ = stop_reason
            span.set(
                epochs_run=len(self.loss_curve_),
                stop_reason=stop_reason,
                final_loss=self.loss_curve_[-1],
                best_loss=float(best),
                n_frozen=int(self.n_frozen_),
                member_epochs=[int(e) for e in self.member_epochs_],
            )
        tracer = self.tracer
        if tracer.enabled:  # building the curve payload isn't free
            tracer.count("ml.epochs_run", len(self.loss_curve_))
            tracer.gauge("ml.early_stop_epoch", len(self.loss_curve_))
            tracer.gauge("ml.stop_reason", stop_reason)
            idx = _curve_trace_indices(self.loss_curve_)
            tracer.event(
                "ensemble.loss_curve",
                epochs=len(self.loss_curve_),
                downsampled=bool(idx.size < len(self.loss_curve_)),
                loss_epochs=[int(i) for i in idx],
                losses=[round(float(self.loss_curve_[i]), 8) for i in idx],
            )
        self.fit_wall_s_ = time.perf_counter() - t_start
        return self

    def _backward(self, Xs, ys, weights, W1, b1, W2, b2):
        """One full-batch forward/backward over the given member stack.

        Returns ``(member_loss, grads)`` where ``member_loss`` is the
        per-member weighted MSE (float32, one entry per row of the
        stack) and ``grads`` aligns with ``[W1, b1, W2, b2]``.  The
        member axis may be any size — the adaptive engine calls this
        with compacted stacks — but the ``1/self.k`` member-average
        factor is always the *full* ensemble size, so gradients of the
        surviving members are unchanged by compaction.
        """
        A1 = self.activation.value(np.matmul(Xs, W1) + b1[:, None, :])
        pred = np.matmul(A1, W2[:, :, None])[:, :, 0] + b2[:, None]
        err = pred - ys[None, :]  # (a, n)
        member_loss = np.sum(weights * err * err, axis=1)

        # d loss / d pred, including the member average (1/k).
        delta2 = 2.0 * weights * err / self.k  # (a, n)
        gW2 = np.matmul(A1.transpose(0, 2, 1), delta2[:, :, None])[:, :, 0]
        gb2 = delta2.sum(axis=1)
        dA1 = delta2[:, :, None] * W2[:, None, :]  # (a, n, h)
        delta1 = dA1 * self.activation.derivative(A1)
        gW1 = np.matmul(Xs.T, delta1)  # (d, n) @ (a, n, h) -> (a, d, h)
        gb1 = delta1.sum(axis=1)
        grads = [gW1, gb1, gW2, gb2]
        if self.l2 > 0.0:
            grads[0] = grads[0] + 2.0 * self.l2 * W1
            grads[2] = grads[2] + 2.0 * self.l2 * W2
        return member_loss, grads

    def _train_classic(self, Xs, ys, weights):
        """Original loop: all k members until the mean loss plateaus."""
        ms = [np.zeros_like(p) for p in self._params]
        vs = [np.zeros_like(p) for p in self._params]
        best = np.inf
        stale = 0
        for step in range(1, self.epochs + 1):
            W1, b1, W2, b2 = self._params
            member_loss, grads = self._backward(Xs, ys, weights, W1, b1, W2, b2)
            # Weighted MSE per member, averaged over members.
            loss = float(np.mean(member_loss))
            self.loss_curve_.append(loss)

            adam_step(
                self._params, grads, ms, vs, step,
                self.lr, _ADAM_BETA1, _ADAM_BETA2, _ADAM_EPS,
            )

            if loss < best * (1.0 - self.tol):
                best = loss
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break
        stop_reason = "early_stop" if stale >= self.patience else "max_epochs"
        self.member_epochs_ = np.full(
            self.k, len(self.loss_curve_), dtype=np.int64
        )
        self.n_frozen_ = 0
        return stop_reason, best

    def _train_adaptive(self, Xs, ys, weights):
        """Member-wise freezing with active-set compaction.

        Keeps the classic global stopping criterion on the mean loss
        (frozen members contribute their final loss to the mean, so the
        curve and the stop decision stay comparable), but additionally
        freezes any member whose own loss has been stale for
        ``_freeze_patience`` epochs and *physically removes* its rows
        from the parameter/Adam/weight stacks — the per-epoch cost
        shrinks as members finish.  With ``freeze_patience=math.inf``
        nothing ever freezes, the stacks are never copied, and every
        floating-point operation matches :meth:`_train_classic`
        bit-for-bit.
        """
        out = self._params  # full-size (k, ...) arrays we hand back
        k = self.k
        freeze_patience = self._freeze_patience
        freeze_tol = self._freeze_tol
        active = np.arange(k)
        compacted = False  # once True, `cur` rows are copies, not `out`
        cur = out
        w_cur = weights
        ms = [np.zeros_like(p) for p in cur]
        vs = [np.zeros_like(p) for p in cur]
        m_best = np.full(k, np.inf)
        m_stale = np.zeros(k, dtype=np.int64)
        m_epochs = np.zeros(k, dtype=np.int64)
        # Frozen members keep contributing their final loss to the mean;
        # float32 so the mean matches classic's float32 reduction exactly.
        all_loss = np.zeros(k, dtype=np.float32)
        best = np.inf
        stale = 0
        stop_reason = "max_epochs"
        for step in range(1, self.epochs + 1):
            W1, b1, W2, b2 = cur
            member_loss, grads = self._backward(Xs, ys, w_cur, W1, b1, W2, b2)
            all_loss[active] = member_loss
            loss = float(np.mean(all_loss))
            self.loss_curve_.append(loss)

            # Members that have already converged don't pay for this step:
            # `cur`/`ms`/`vs` only hold the active rows.
            adam_step(
                cur, grads, ms, vs, step,
                self.lr, _ADAM_BETA1, _ADAM_BETA2, _ADAM_EPS,
            )

            if loss < best * (1.0 - self.tol):
                best = loss
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    stop_reason = "early_stop"
                    break

            # Per-member convergence bookkeeping (never feeds back into
            # the numerics above — bit-identity with classic holds as
            # long as no member actually freezes).
            m_epochs[active] = step
            a_best = m_best[active]
            imp = member_loss < a_best * (1.0 - freeze_tol)
            m_best[active] = np.where(imp, member_loss, a_best)
            m_stale[active] = np.where(imp, 0, m_stale[active] + 1)
            ripe = m_stale[active] >= freeze_patience
            if ripe.any():
                if compacted:
                    # `cur` rows are detached copies; park the freshly
                    # frozen members' weights back in the output stack.
                    # (Pre-compaction `cur` IS `out`: already in place.)
                    fidx = active[ripe]
                    for full, c in zip(out, cur):
                        full[fidx] = c[ripe]
                keep = ~ripe
                active = active[keep]
                if active.size == 0:
                    stop_reason = "all_frozen"
                    break
                cur = [c[keep] for c in cur]  # boolean mask -> new arrays
                ms = [m[keep] for m in ms]
                vs = [v[keep] for v in vs]
                w_cur = w_cur[keep]
                compacted = True
        if compacted and active.size:
            for full, c in zip(out, cur):
                full[active] = c
        # Members still training at the stop ran every recorded epoch.
        m_epochs[active] = len(self.loss_curve_)
        self.member_epochs_ = m_epochs
        self.n_frozen_ = int(k - active.size)
        return stop_reason, best

    def _member_predictions(self, X: np.ndarray) -> np.ndarray:
        if self._params is None:
            raise RuntimeError("predict() before fit()")
        Xs = self._x_scaler.transform(np.asarray(X, dtype=np.float64)).astype(
            np.float32
        )
        _, pred = self._forward(Xs)
        # y-scaler stats are scalars; broadcasting over (k, n) is exact.
        return self._y_scaler.inverse_transform(pred)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction over the k members."""
        return self._member_predictions(X).mean(axis=0)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Member disagreement (ensemble standard deviation)."""
        return self._member_predictions(X).std(axis=0)

    def predict_mean_std(self, X: np.ndarray):
        """Mean and member disagreement from a single forward pass.

        Callers that need both (acquisition scoring in
        ``core/adaptive.py``) previously paid two full forwards.
        """
        preds = self._member_predictions(X)
        return preds.mean(axis=0), preds.std(axis=0)

    # -- persistence ------------------------------------------------------------

    def save(self, path, log_transform: Optional[bool] = None) -> None:
        """Serialize the fitted ensemble to an ``.npz`` file.

        Gathering training data costs simulated (or real) hours; the model
        itself is a few kilobytes — persisting it lets later sessions
        re-rank the space without re-measuring anything.  The write is
        atomic (tempfile + fsync + ``os.replace``, the MeasurementDB.save
        recipe): a kill mid-save leaves any previous file intact instead
        of a truncated archive.

        ``log_transform`` records whether the *owner* of this ensemble
        trained it on log-targets (the meta block's third slot: -1
        unknown, 0 False, 1 True); :meth:`load` surfaces it as
        :attr:`saved_log_transform` so callers can validate instead of
        silently mis-transforming predictions.
        """
        if self._params is None:
            raise RuntimeError("save() before fit()")
        if log_transform is None:
            log_transform = self.saved_log_transform
        lt_flag = -1 if log_transform is None else int(bool(log_transform))
        # Mirror np.savez's path normalization so the atomic rename lands
        # exactly where a plain np.savez(path) would have written.
        target = os.fspath(path)
        if not target.endswith(".npz"):
            target += ".npz"
        W1, b1, W2, b2 = self._params
        parent = os.path.dirname(target) or "."
        fd, tmp = tempfile.mkstemp(
            dir=parent, prefix=os.path.basename(target) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    W1=W1,
                    b1=b1,
                    W2=W2,
                    b2=b2,
                    x_mean=self._x_scaler.mean_,
                    x_scale=self._x_scaler.scale_,
                    y_mean=self._y_scaler.mean_,
                    y_scale=self._y_scaler.scale_,
                    meta=np.array([self.k, self.hidden, lt_flag], dtype=np.int64),
                    activation=np.array(self.activation.name),
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path) -> "EnsembleMLPRegressor":
        """Restore an ensemble saved with :meth:`save`.

        Raises
        ------
        ValueError
            When the archive is missing arrays or their shapes disagree
            with its own ``meta`` (k, hidden) — a truncated or foreign
            file would otherwise surface as a cryptic broadcast error
            deep inside :meth:`_forward`.
        """
        data = np.load(path, allow_pickle=False)
        required = (
            "meta", "activation", "W1", "b1", "W2", "b2",
            "x_mean", "x_scale", "y_mean", "y_scale",
        )
        missing = [key for key in required if key not in data.files]
        if missing:
            raise ValueError(f"{path}: not an ensemble archive; missing {missing}")
        meta = data["meta"]
        # Legacy archives carry (k, hidden); current ones append the
        # owner's log_transform flag (-1 unknown / 0 False / 1 True).
        if meta.shape not in ((2,), (3,)):
            raise ValueError(f"{path}: malformed meta block {meta.shape}")
        k, hidden = int(meta[0]), int(meta[1])
        lt_flag = int(meta[2]) if meta.shape == (3,) else -1
        if lt_flag not in (-1, 0, 1):
            raise ValueError(
                f"{path}: log_transform flag must be -1/0/1, got {lt_flag}"
            )
        W1, b1, W2, b2 = data["W1"], data["b1"], data["W2"], data["b2"]
        if W1.ndim != 3 or W1.shape[0] != k or W1.shape[2] != hidden:
            raise ValueError(
                f"{path}: W1 shape {W1.shape} inconsistent with "
                f"meta (k={k}, hidden={hidden})"
            )
        d = int(W1.shape[1])
        expected = {"b1": (k, hidden), "W2": (k, hidden), "b2": (k,)}
        for name, arr in (("b1", b1), ("W2", W2), ("b2", b2)):
            if arr.shape != expected[name]:
                raise ValueError(
                    f"{path}: {name} shape {arr.shape} != {expected[name]} "
                    f"implied by meta (k={k}, hidden={hidden})"
                )
        if data["x_mean"].shape[-1] != d or data["x_scale"].shape[-1] != d:
            raise ValueError(
                f"{path}: x-scaler width {data['x_mean'].shape} does not "
                f"match the {d}-feature weights"
            )
        model = cls(k=k, hidden=hidden, activation=str(data["activation"]))
        model.saved_log_transform = None if lt_flag == -1 else bool(lt_flag)
        model._params = [W1, b1, W2, b2]
        model._x_scaler.mean_ = data["x_mean"]
        model._x_scaler.scale_ = data["x_scale"]
        model._y_scaler.mean_ = data["y_mean"]
        model._y_scaler.scale_ = data["y_scale"]
        return model
