"""Vectorized bagged-MLP ensemble: all k members trained simultaneously.

Functionally equivalent to ``BaggedRegressor(MLPRegressor, k)`` — k
single-hidden-layer networks on leave-one-fold-out splits, mean prediction
— but an order of magnitude faster: member weights are stacked into
``(k, in, out)`` tensors and every forward/backward pass is one batched
einsum over all members, instead of k sequential Python-level fits.
Membership of a sample in a member's training set becomes a per-member
sample *weight* in the loss (1/|fold kept| or 0), which preserves exact
leave-one-fold-out semantics.

This is the trainer the experiment harness uses; the scalar
:class:`~repro.ml.mlp.MLPRegressor` remains the reference implementation
(and the ablations' single-network baseline).
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional

import numpy as np

from repro.ml.activations import get_activation
from repro.ml.scaling import StandardScaler
from repro.obs import NULL_TRACER


class EnsembleMLPRegressor:
    """k single-hidden-layer MLPs, batch-trained, mean-aggregated.

    Parameters
    ----------
    k:
        Ensemble size (11 in the paper).
    hidden:
        Hidden width (single hidden layer; the paper uses 30).
    activation:
        Hidden activation name.
    lr / epochs / tol / patience / l2:
        Full-batch Adam hyperparameters, mirroring ``MLPRegressor``.
    seed:
        Controls fold assignment and all weight initialization.
    """

    def __init__(
        self,
        k: int = 11,
        hidden: int = 30,
        activation: str = "sigmoid",
        lr: float = 0.02,
        epochs: int = 2000,
        tol: float = 1e-5,
        patience: int = 120,
        l2: float = 1e-5,
        seed: Optional[int] = None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if hidden < 1:
            raise ValueError("hidden must be >= 1")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.k = k
        self.hidden = hidden
        self.activation = get_activation(activation)
        self.lr = lr
        self.epochs = epochs
        self.tol = tol
        self.patience = patience
        self.l2 = l2
        self.seed = seed
        self._params: list[np.ndarray] | None = None
        self._x_scaler = StandardScaler()
        self._y_scaler = StandardScaler()
        self.loss_curve_: list[float] = []
        #: Target-transform flag recovered from an archive's meta block by
        #: :meth:`load` (None when the archive predates it, or when the
        #: model was not loaded from disk).  The ensemble itself never
        #: transforms targets — the flag travels with the weights so
        #: PerformanceModel.load can validate the caller's assumption.
        self.saved_log_transform: Optional[bool] = None
        # Assigned by callers that trace (e.g. PerformanceModel); kept out
        # of the constructor so the hyperparameter signature stays pure.
        self.tracer = NULL_TRACER

    @property
    def n_features(self) -> int:
        """Input-feature dimensionality the fitted ensemble expects."""
        if self._params is None:
            raise RuntimeError("n_features before fit()/load()")
        return int(self._params[0].shape[1])

    # -- internals -----------------------------------------------------------

    def _forward(self, Xs: np.ndarray):
        """Batched forward: returns (hidden activations, predictions).

        ``Xs`` is (n, d); activations are (k, n, h), predictions (k, n).
        Broadcasted ``matmul`` (not einsum) so every contraction runs
        through BLAS.
        """
        W1, b1, W2, b2 = self._params
        A1 = self.activation.value(np.matmul(Xs, W1) + b1[:, None, :])
        pred = np.matmul(A1, W2[:, :, None])[:, :, 0] + b2[:, None]
        return A1, pred

    # -- public API -------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "EnsembleMLPRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X{X.shape} y{y.shape}")
        n, d = X.shape
        if n < max(2, self.k):
            raise ValueError(f"need at least {max(2, self.k)} samples, got {n}")

        # float32 training: the elementwise (k, n, h) work dominates and
        # regression targets here never need double precision.
        Xs = self._x_scaler.fit_transform(X).astype(np.float32)
        ys = self._y_scaler.fit_transform(y[:, None]).ravel().astype(np.float32)

        rng = np.random.default_rng(self.seed)
        # Leave-one-fold-out membership -> per-member mean weights.
        if self.k == 1:
            weights = np.full((1, n), 1.0 / n, dtype=np.float32)
        else:
            fold = rng.permutation(n) % self.k
            keep = fold[None, :] != np.arange(self.k)[:, None]
            weights = (keep / keep.sum(axis=1, keepdims=True)).astype(np.float32)

        h = self.hidden
        limit1 = np.sqrt(6.0 / (d + h))
        limit2 = np.sqrt(6.0 / (h + 1))
        W1 = rng.uniform(-limit1, limit1, size=(self.k, d, h)).astype(np.float32)
        b1 = np.zeros((self.k, h), dtype=np.float32)
        W2 = rng.uniform(-limit2, limit2, size=(self.k, h)).astype(np.float32)
        b2 = np.zeros(self.k, dtype=np.float32)
        self._params = [W1, b1, W2, b2]

        # Adam state.
        ms = [np.zeros_like(p) for p in self._params]
        vs = [np.zeros_like(p) for p in self._params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        self.loss_curve_ = []
        best = np.inf
        stale = 0
        with self.tracer.span(
            "ensemble.fit", k=self.k, hidden=self.hidden, n_samples=n
        ) as span:
            for step in range(1, self.epochs + 1):
                A1, pred = self._forward(Xs)
                err = pred - ys[None, :]  # (k, n)
                # Weighted MSE per member, averaged over members.
                loss = float(np.mean(np.sum(weights * err * err, axis=1)))
                self.loss_curve_.append(loss)

                # d loss / d pred, including the member average (1/k).
                delta2 = 2.0 * weights * err / self.k  # (k, n)
                gW2 = np.matmul(A1.transpose(0, 2, 1), delta2[:, :, None])[:, :, 0]
                gb2 = delta2.sum(axis=1)
                dA1 = delta2[:, :, None] * W2[:, None, :]  # (k, n, h)
                delta1 = dA1 * self.activation.derivative(A1)
                gW1 = np.matmul(Xs.T, delta1)  # (d, n) @ (k, n, h) -> (k, d, h)
                gb1 = delta1.sum(axis=1)
                grads = [gW1, gb1, gW2, gb2]
                if self.l2 > 0.0:
                    grads[0] = grads[0] + 2.0 * self.l2 * W1
                    grads[2] = grads[2] + 2.0 * self.l2 * W2

                c1 = 1.0 - beta1**step
                c2 = 1.0 - beta2**step
                for p, g, m, v in zip(self._params, grads, ms, vs):
                    m *= beta1
                    m += (1.0 - beta1) * g
                    v *= beta2
                    v += (1.0 - beta2) * g * g
                    p -= self.lr * (m / c1) / (np.sqrt(v / c2) + eps)

                if loss < best * (1.0 - self.tol):
                    best = loss
                    stale = 0
                else:
                    stale += 1
                    if stale >= self.patience:
                        break
            stop_reason = "early_stop" if stale >= self.patience else "max_epochs"
            span.set(
                epochs_run=len(self.loss_curve_),
                stop_reason=stop_reason,
                final_loss=self.loss_curve_[-1],
                best_loss=float(best),
            )
        tracer = self.tracer
        if tracer.enabled:  # building the curve payload isn't free
            tracer.count("ml.epochs_run", len(self.loss_curve_))
            tracer.gauge("ml.early_stop_epoch", len(self.loss_curve_))
            tracer.gauge("ml.stop_reason", stop_reason)
            tracer.event(
                "ensemble.loss_curve",
                epochs=len(self.loss_curve_),
                losses=[round(float(l), 8) for l in self.loss_curve_],
            )
        return self

    def _member_predictions(self, X: np.ndarray) -> np.ndarray:
        if self._params is None:
            raise RuntimeError("predict() before fit()")
        Xs = self._x_scaler.transform(np.asarray(X, dtype=np.float64)).astype(
            np.float32
        )
        _, pred = self._forward(Xs)
        # y-scaler stats are scalars; broadcasting over (k, n) is exact.
        return self._y_scaler.inverse_transform(pred)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction over the k members."""
        return self._member_predictions(X).mean(axis=0)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Member disagreement (ensemble standard deviation)."""
        return self._member_predictions(X).std(axis=0)

    # -- persistence ------------------------------------------------------------

    def save(self, path, log_transform: Optional[bool] = None) -> None:
        """Serialize the fitted ensemble to an ``.npz`` file.

        Gathering training data costs simulated (or real) hours; the model
        itself is a few kilobytes — persisting it lets later sessions
        re-rank the space without re-measuring anything.  The write is
        atomic (tempfile + fsync + ``os.replace``, the MeasurementDB.save
        recipe): a kill mid-save leaves any previous file intact instead
        of a truncated archive.

        ``log_transform`` records whether the *owner* of this ensemble
        trained it on log-targets (the meta block's third slot: -1
        unknown, 0 False, 1 True); :meth:`load` surfaces it as
        :attr:`saved_log_transform` so callers can validate instead of
        silently mis-transforming predictions.
        """
        if self._params is None:
            raise RuntimeError("save() before fit()")
        if log_transform is None:
            log_transform = self.saved_log_transform
        lt_flag = -1 if log_transform is None else int(bool(log_transform))
        # Mirror np.savez's path normalization so the atomic rename lands
        # exactly where a plain np.savez(path) would have written.
        target = os.fspath(path)
        if not target.endswith(".npz"):
            target += ".npz"
        W1, b1, W2, b2 = self._params
        parent = os.path.dirname(target) or "."
        fd, tmp = tempfile.mkstemp(
            dir=parent, prefix=os.path.basename(target) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(
                    fh,
                    W1=W1,
                    b1=b1,
                    W2=W2,
                    b2=b2,
                    x_mean=self._x_scaler.mean_,
                    x_scale=self._x_scaler.scale_,
                    y_mean=self._y_scaler.mean_,
                    y_scale=self._y_scaler.scale_,
                    meta=np.array([self.k, self.hidden, lt_flag], dtype=np.int64),
                    activation=np.array(self.activation.name),
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path) -> "EnsembleMLPRegressor":
        """Restore an ensemble saved with :meth:`save`.

        Raises
        ------
        ValueError
            When the archive is missing arrays or their shapes disagree
            with its own ``meta`` (k, hidden) — a truncated or foreign
            file would otherwise surface as a cryptic broadcast error
            deep inside :meth:`_forward`.
        """
        data = np.load(path, allow_pickle=False)
        required = (
            "meta", "activation", "W1", "b1", "W2", "b2",
            "x_mean", "x_scale", "y_mean", "y_scale",
        )
        missing = [key for key in required if key not in data.files]
        if missing:
            raise ValueError(f"{path}: not an ensemble archive; missing {missing}")
        meta = data["meta"]
        # Legacy archives carry (k, hidden); current ones append the
        # owner's log_transform flag (-1 unknown / 0 False / 1 True).
        if meta.shape not in ((2,), (3,)):
            raise ValueError(f"{path}: malformed meta block {meta.shape}")
        k, hidden = int(meta[0]), int(meta[1])
        lt_flag = int(meta[2]) if meta.shape == (3,) else -1
        if lt_flag not in (-1, 0, 1):
            raise ValueError(
                f"{path}: log_transform flag must be -1/0/1, got {lt_flag}"
            )
        W1, b1, W2, b2 = data["W1"], data["b1"], data["W2"], data["b2"]
        if W1.ndim != 3 or W1.shape[0] != k or W1.shape[2] != hidden:
            raise ValueError(
                f"{path}: W1 shape {W1.shape} inconsistent with "
                f"meta (k={k}, hidden={hidden})"
            )
        d = int(W1.shape[1])
        expected = {"b1": (k, hidden), "W2": (k, hidden), "b2": (k,)}
        for name, arr in (("b1", b1), ("W2", W2), ("b2", b2)):
            if arr.shape != expected[name]:
                raise ValueError(
                    f"{path}: {name} shape {arr.shape} != {expected[name]} "
                    f"implied by meta (k={k}, hidden={hidden})"
                )
        if data["x_mean"].shape[-1] != d or data["x_scale"].shape[-1] != d:
            raise ValueError(
                f"{path}: x-scaler width {data['x_mean'].shape} does not "
                f"match the {d}-feature weights"
            )
        model = cls(k=k, hidden=hidden, activation=str(data["activation"]))
        model.saved_log_transform = None if lt_flag == -1 else bool(lt_flag)
        model._params = [W1, b1, W2, b2]
        model._x_scaler.mean_ = data["x_mean"]
        model._x_scaler.scale_ = data["x_scale"]
        model._y_scaler.mean_ = data["y_mean"]
        model._y_scaler.scale_ = data["y_scale"]
        return model
