"""Ridge regression baseline (closed form)."""

from __future__ import annotations

import numpy as np


class RidgeRegression:
    """L2-regularized linear least squares, solved by normal equations.

    The weakest sensible baseline for the model-family ablation: the
    tuning-parameter -> log-time surface is strongly non-additive, so a
    linear model documents how much of the paper's accuracy comes from the
    network's ability to model interactions.
    """

    def __init__(self, alpha: float = 1e-3):
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X{X.shape} y{y.shape}")
        # Centre so the intercept is not penalized.
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        yc = y - y_mean
        n_features = X.shape[1]
        A = Xc.T @ Xc + self.alpha * np.eye(n_features)
        b = Xc.T @ yc
        self.coef_ = np.linalg.solve(A, b)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("predict() before fit()")
        return np.asarray(X, dtype=np.float64) @ self.coef_ + self.intercept_
