"""Multi-layer perceptron regressor — the paper's performance model.

"Through experimentation, we found that a network with a single hidden
layer with 30 neurons using sigmoid activation functions gave good
performance" (§5.2).  ``MLPRegressor(hidden=(30,), activation="sigmoid")``
is that network; the hidden topology is configurable for the ablations.

Training is full-batch Adam (the problems are a few thousand samples with
~10 features) with early stopping on a training-loss plateau.  Inputs are
standardized internally; targets are standardized internally too, which
makes one learning rate work across benchmarks whose log-times differ in
offset and spread.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.layers import Dense
from repro.ml.losses import HuberLoss, MSELoss
from repro.ml.optimizers import make_optimizer
from repro.ml.scaling import StandardScaler


class MLPRegressor:
    """Feed-forward network for scalar regression.

    Parameters
    ----------
    hidden:
        Hidden-layer widths; the paper's model is ``(30,)``.
    activation:
        Hidden activation name (``"sigmoid"`` in the paper).
    optimizer:
        ``"adam"`` | ``"sgd"`` | ``"rprop"``, a ``(name, kwargs)`` pair, or
        an optimizer instance.
    epochs:
        Maximum full-batch epochs.
    tol / patience:
        Early stopping: stop when the training loss has not improved by
        ``tol`` (relative) for ``patience`` consecutive epochs.
    l2:
        L2 weight penalty (biases exempt).
    loss:
        ``"mse"`` (the paper's choice) or ``"huber"`` — robust to the few
        extreme targets that penalized-invalid training injects.
    seed:
        Weight-initialization seed.
    """

    def __init__(
        self,
        hidden: Sequence[int] = (30,),
        activation: str = "sigmoid",
        optimizer=("adam", {"lr": 0.02}),
        epochs: int = 800,
        tol: float = 1e-5,
        patience: int = 80,
        l2: float = 1e-5,
        loss: str = "mse",
        seed: Optional[int] = None,
    ):
        if any(h < 1 for h in hidden):
            raise ValueError("hidden widths must be >= 1")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.hidden = tuple(hidden)
        self.activation = activation
        self.optimizer_spec = optimizer
        self.epochs = epochs
        self.tol = tol
        self.patience = patience
        self.l2 = l2
        if loss not in ("mse", "huber"):
            raise ValueError(f"unknown loss {loss!r}; expected 'mse' or 'huber'")
        self.loss_name = loss
        self.seed = seed
        self._layers: list[Dense] | None = None
        self._x_scaler = StandardScaler()
        self._y_scaler = StandardScaler()
        self.loss_curve_: list[float] = []

    # -- internals -------------------------------------------------------

    def _build(self, n_features: int, rng: np.random.Generator) -> None:
        dims = [n_features, *self.hidden, 1]
        acts = [self.activation] * len(self.hidden) + ["identity"]
        self._layers = [
            Dense(dims[i], dims[i + 1], acts[i], rng) for i in range(len(acts))
        ]

    def _forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        for layer in self._layers:
            x = layer.forward(x, train=train)
        return x

    def _params_and_grads(self):
        params, grads = [], []
        for layer in self._layers:
            params.extend(layer.params)
            grads.extend(layer.grads)
        return params, grads

    # -- public API --------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1, 1)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X{X.shape} y{y.shape}")
        if X.shape[0] < 2:
            raise ValueError("need at least 2 training samples")

        Xs = self._x_scaler.fit_transform(X)
        ys = self._y_scaler.fit_transform(y)

        rng = np.random.default_rng(self.seed)
        self._build(X.shape[1], rng)
        opt = make_optimizer(self.optimizer_spec)
        loss = MSELoss() if self.loss_name == "mse" else HuberLoss(delta=1.0)
        params, grads = self._params_and_grads()

        self.loss_curve_ = []
        best = np.inf
        stale = 0
        for _ in range(self.epochs):
            pred = self._forward(Xs, train=True)
            value = loss.value(pred, ys)
            self.loss_curve_.append(value)

            grad = loss.gradient(pred, ys)
            for layer in reversed(self._layers):
                grad = layer.backward(grad)
            if self.l2 > 0.0:
                for layer in self._layers:
                    layer.grad_W += 2.0 * self.l2 * layer.W
            opt.step(params, grads)

            if value < best * (1.0 - self.tol):
                best = value
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._layers is None:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        Xs = self._x_scaler.transform(X)
        out = self._forward(Xs, train=False)
        return self._y_scaler.inverse_transform(out).ravel()

    # -- introspection -------------------------------------------------------

    @property
    def n_parameters(self) -> int:
        """Trainable parameter count (weights + biases)."""
        if self._layers is None:
            raise RuntimeError("network not built yet")
        return sum(p.size for layer in self._layers for p in layer.params)

    def describe(self) -> str:
        """Human-readable topology line (Fig. 2 companion)."""
        dims = "-".join(str(h) for h in self.hidden)
        return (
            f"MLP(in -> {dims} [{self.activation}] -> 1 [identity], "
            f"opt={self.optimizer_spec}, l2={self.l2})"
        )
