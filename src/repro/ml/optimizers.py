"""Gradient-descent optimizers for the MLP trainer.

All optimizers share one interface: ``step(params, grads)`` updates each
parameter array *in place* given the gradient list (same order every call).
Adam is the default — on these small, full-batch problems it converges an
order of magnitude faster than plain SGD and needs no learning-rate tuning
per benchmark.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class SGD:
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, lr: float = 0.05, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity: List[np.ndarray] | None = None

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v


def adam_step(
    params: Sequence[np.ndarray],
    grads: Sequence[np.ndarray],
    ms: Sequence[np.ndarray],
    vs: Sequence[np.ndarray],
    t: int,
    lr: float,
    beta1: float = 0.9,
    beta2: float = 0.999,
    eps: float = 1e-8,
) -> None:
    """One in-place Adam update over a parameter list.

    The single implementation of the update rule: :class:`Adam` (the
    scalar-MLP optimizer) and the vectorized ensemble trainer
    (:class:`~repro.ml.ensemble.EnsembleMLPRegressor`) both call this, so
    their numerics cannot drift apart.  ``ms``/``vs`` are the caller-owned
    first/second moment buffers (mutated in place, like ``params``);
    ``t`` is the 1-based step count for bias correction.
    """
    c1 = 1.0 - beta1**t
    c2 = 1.0 - beta2**t
    for p, g, m, v in zip(params, grads, ms, vs):
        m *= beta1
        m += (1.0 - beta1) * g
        v *= beta2
        v += (1.0 - beta2) * g * g
        p -= lr * (m / c1) / (np.sqrt(v / c2) + eps)


class Adam:
    """Adam (Kingma & Ba): bias-corrected adaptive moments."""

    def __init__(
        self,
        lr: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: List[np.ndarray] | None = None
        self._v: List[np.ndarray] | None = None
        self._t = 0

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        adam_step(
            params, grads, self._m, self._v, self._t,
            self.lr, self.beta1, self.beta2, self.eps,
        )


class RProp:
    """Resilient backpropagation (Riedmiller & Braun).

    The classic full-batch trainer for small networks: per-weight step
    sizes grown/shrunk on gradient sign agreement.  Only meaningful with
    full-batch gradients.
    """

    def __init__(
        self,
        eta_plus: float = 1.2,
        eta_minus: float = 0.5,
        step_init: float = 0.01,
        step_min: float = 1e-7,
        step_max: float = 1.0,
    ):
        self.eta_plus = eta_plus
        self.eta_minus = eta_minus
        self.step_init = step_init
        self.step_min = step_min
        self.step_max = step_max
        self._steps: List[np.ndarray] | None = None
        self._prev: List[np.ndarray] | None = None

    def step(self, params: Sequence[np.ndarray], grads: Sequence[np.ndarray]) -> None:
        if self._steps is None:
            self._steps = [np.full_like(p, self.step_init) for p in params]
            self._prev = [np.zeros_like(p) for p in params]
        for p, g, s, pg in zip(params, grads, self._steps, self._prev):
            sign = np.sign(g * pg)
            s[sign > 0] = np.minimum(s[sign > 0] * self.eta_plus, self.step_max)
            s[sign < 0] = np.maximum(s[sign < 0] * self.eta_minus, self.step_min)
            g_eff = np.where(sign < 0, 0.0, g)  # skip update after sign flip
            p -= np.sign(g_eff) * s
            pg[...] = g_eff


OPTIMIZERS = {"sgd": SGD, "adam": Adam, "rprop": RProp}


def make_optimizer(spec) -> object:
    """Build an optimizer from a name, a (name, kwargs) pair, or pass an
    instance through."""
    if isinstance(spec, str):
        try:
            return OPTIMIZERS[spec]()
        except KeyError:
            raise KeyError(
                f"unknown optimizer {spec!r}; known: {sorted(OPTIMIZERS)}"
            ) from None
    if isinstance(spec, tuple):
        name, kwargs = spec
        return OPTIMIZERS[name](**kwargs)
    return spec
