"""Bagging ensemble, k-fold style, as described in §5.2 of the paper.

"Rather than using all the training data to build a single neural network,
we split it into k parts and build k networks, each trained using all the
data except one of the parts.  During prediction, we feed the input to all
the networks, and then take the mean of their outputs...  We have used a
value of 11 for k."

This is leave-one-fold-out bagging (not bootstrap resampling): member ``i``
trains on the data minus fold ``i``.  Fold assignment is a seeded random
permutation.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np


class BaggedRegressor:
    """Mean-of-members ensemble over k leave-one-fold-out training sets.

    Parameters
    ----------
    base_factory:
        Zero-argument callable returning a fresh unfitted regressor.  Each
        member gets an independent model (and, through the factory, its own
        weight-initialization seed if the factory varies them).
    k:
        Number of folds/members; the paper uses 11.
    seed:
        Fold-assignment seed.
    """

    def __init__(
        self,
        base_factory: Callable[[], object],
        k: int = 11,
        seed: Optional[int] = None,
    ):
        if k < 2:
            raise ValueError("k must be >= 2")
        self.base_factory = base_factory
        self.k = k
        self.seed = seed
        self.members_: List[object] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaggedRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        n = X.shape[0]
        if n < self.k:
            raise ValueError(f"need at least k={self.k} samples, got {n}")
        rng = np.random.default_rng(self.seed)
        fold = rng.permutation(n) % self.k
        self.members_ = []
        for i in range(self.k):
            keep = fold != i
            model = self.base_factory()
            model.fit(X[keep], y[keep])
            self.members_.append(model)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.members_:
            raise RuntimeError("predict() before fit()")
        preds = np.stack([m.predict(X) for m in self.members_], axis=0)
        return preds.mean(axis=0)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Member disagreement (std over the ensemble) — a cheap
        uncertainty signal used by the principled-M extension."""
        if not self.members_:
            raise RuntimeError("predict_std() before fit()")
        preds = np.stack([m.predict(X) for m in self.members_], axis=0)
        return preds.std(axis=0)

    def predict_mean_std(self, X: np.ndarray):
        """Mean and member disagreement from one pass over the members
        (``predict`` followed by ``predict_std`` runs every member
        twice)."""
        if not self.members_:
            raise RuntimeError("predict_mean_std() before fit()")
        preds = np.stack([m.predict(X) for m in self.members_], axis=0)
        return preds.mean(axis=0), preds.std(axis=0)
