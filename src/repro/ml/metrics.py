"""Regression metrics.

``mean_relative_error`` is the paper's headline accuracy number ("mean
relative error as low as 6.1%"): the mean of |pred - actual| / actual over
held-out configurations, computed in *time* space (after undoing the log
transform).
"""

from __future__ import annotations

import numpy as np


def _check(pred, actual):
    pred = np.asarray(pred, dtype=np.float64).ravel()
    actual = np.asarray(actual, dtype=np.float64).ravel()
    if pred.shape != actual.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {actual.shape}")
    if pred.size == 0:
        raise ValueError("empty inputs")
    return pred, actual


def mean_relative_error(pred, actual) -> float:
    """Mean of |pred - actual| / actual.  Requires positive actuals."""
    pred, actual = _check(pred, actual)
    if np.any(actual <= 0):
        raise ValueError("mean_relative_error requires positive actual values")
    return float(np.mean(np.abs(pred - actual) / actual))


def mean_squared_error(pred, actual) -> float:
    pred, actual = _check(pred, actual)
    d = pred - actual
    return float(np.mean(d * d))


def mean_absolute_error(pred, actual) -> float:
    pred, actual = _check(pred, actual)
    return float(np.mean(np.abs(pred - actual)))


def r2_score(pred, actual) -> float:
    """Coefficient of determination (1 = perfect, 0 = predict-the-mean)."""
    pred, actual = _check(pred, actual)
    ss_res = np.sum((actual - pred) ** 2)
    ss_tot = np.sum((actual - actual.mean()) ** 2)
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return float(1.0 - ss_res / ss_tot)
