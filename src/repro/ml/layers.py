"""Dense (fully connected) layer with explicit forward/backward passes."""

from __future__ import annotations

import numpy as np

from repro.ml.activations import get_activation


class Dense:
    """``a = act(x @ W + b)`` with cached forward state for backprop.

    Weights use scaled-uniform (Glorot-style) initialization, appropriate
    for the sigmoid units the paper's network is built from.
    """

    def __init__(self, n_in: int, n_out: int, activation, rng: np.random.Generator):
        if n_in < 1 or n_out < 1:
            raise ValueError("layer dimensions must be >= 1")
        self.activation = get_activation(activation)
        limit = np.sqrt(6.0 / (n_in + n_out))
        self.W = rng.uniform(-limit, limit, size=(n_in, n_out))
        self.b = np.zeros(n_out)
        self._x: np.ndarray | None = None
        self._a: np.ndarray | None = None
        self.grad_W = np.zeros_like(self.W)
        self.grad_b = np.zeros_like(self.b)

    @property
    def params(self):
        return [self.W, self.b]

    @property
    def grads(self):
        return [self.grad_W, self.grad_b]

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        a = self.activation.value(x @ self.W + self.b)
        if train:
            self._x = x
            self._a = a
        return a

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given d loss / d a, accumulate weight grads and return
        d loss / d x.  Must follow a ``forward(..., train=True)``."""
        if self._x is None:
            raise RuntimeError("backward() without a training forward pass")
        delta = grad_out * self.activation.derivative(self._a)
        self.grad_W[...] = self._x.T @ delta
        self.grad_b[...] = delta.sum(axis=0)
        return delta @ self.W.T
