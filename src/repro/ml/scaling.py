"""Feature/target standardization."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean unit-variance scaling, constant columns left at zero."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        # A constant column carries no information; dividing by ~0 would
        # explode it instead of silencing it.
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("transform() before fit()")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, Xs: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("inverse_transform() before fit()")
        return np.asarray(Xs, dtype=np.float64) * self.scale_ + self.mean_
