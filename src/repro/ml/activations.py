"""Activation functions with derivatives (in terms of the activation value).

The paper uses sigmoid hidden units (§5.2); the others are provided for the
hidden-width/activation ablations.  Each activation exposes

* ``value(z)`` — elementwise activation of pre-activations ``z``;
* ``derivative(a)`` — elementwise derivative expressed as a function of the
  *activation output* ``a`` (cheaper during backprop: no need to keep ``z``).
"""

from __future__ import annotations

import numpy as np


class Sigmoid:
    """Logistic sigmoid, the paper's hidden activation."""

    name = "sigmoid"

    @staticmethod
    def value(z: np.ndarray) -> np.ndarray:
        # Clipping to +-40 keeps exp() in range without changing the value
        # (sigmoid is fully saturated there) and stays branch-free — this
        # runs on (k, n, h) tensors every training epoch.
        return 1.0 / (1.0 + np.exp(-np.clip(z, -40.0, 40.0)))

    @staticmethod
    def derivative(a: np.ndarray) -> np.ndarray:
        return a * (1.0 - a)


class Tanh:
    name = "tanh"

    @staticmethod
    def value(z: np.ndarray) -> np.ndarray:
        return np.tanh(z)

    @staticmethod
    def derivative(a: np.ndarray) -> np.ndarray:
        return 1.0 - a * a


class ReLU:
    name = "relu"

    @staticmethod
    def value(z: np.ndarray) -> np.ndarray:
        return np.maximum(z, 0.0)

    @staticmethod
    def derivative(a: np.ndarray) -> np.ndarray:
        return (a > 0.0).astype(a.dtype)


class Identity:
    """Linear output units (regression head)."""

    name = "identity"

    @staticmethod
    def value(z: np.ndarray) -> np.ndarray:
        return z

    @staticmethod
    def derivative(a: np.ndarray) -> np.ndarray:
        return np.ones_like(a)


ACTIVATIONS = {cls.name: cls for cls in (Sigmoid, Tanh, ReLU, Identity)}


def get_activation(name_or_cls):
    """Resolve an activation by name or pass a class through."""
    if isinstance(name_or_cls, str):
        try:
            return ACTIVATIONS[name_or_cls]
        except KeyError:
            raise KeyError(
                f"unknown activation {name_or_cls!r}; known: {sorted(ACTIVATIONS)}"
            ) from None
    return name_or_cls
