"""Line-JSON wire protocol of the tuning daemon.

One JSON object per line, both directions.  Requests carry an ``op`` and
an optional client-chosen ``id`` the server echoes on every response, so
a client may pipeline requests over one connection.

Requests
--------
``{"op": "tune", "id": "r1", "kernel": "convolution", "device": "nvidia",
"n_train": 1000, "m_candidates": 100, "seed": 0, "budget_s": null,
"faults": null, "stream": false}``
    Run (or join, or replay) a tuning campaign.  ``budget_s`` caps the
    campaign's simulated ledger spend (see ``TunerSettings.max_cost_s``);
    ``stream: true`` subscribes the client to the campaign's trace events.
``{"op": "predict", "kernel": ..., "device": ..., "n_train": ..., "seed":
..., "config": {...name: value...}}``
    Predict one configuration's time from the shared model cache (a model
    is cached by every fresh campaign).
``{"op": "watch", "id": "w1", "kernel": ..., "device": ..., "n_train":
400, "m_candidates": 40, "seed": 0, "steps": 120, "interval_s": 30.0,
"retune_window": 32, "drift": "thermal-throttle", "faults": null,
"stream": true}``
    Long-lived online campaign (:class:`~repro.core.online.OnlineTuner`):
    tune once, then monitor the incumbent for ``steps`` probes of
    ``interval_s`` simulated seconds each, re-tuning incrementally when
    the drift detector alarms.  ``stream`` defaults to *true* here —
    watching is about the event stream (``drift.alarm``,
    ``online.retune`` records); the terminal ``result`` carries the
    :meth:`~repro.core.online.OnlineReport.as_dict` payload.  Watches are
    never coalesced or cached: each one is a live campaign on its own
    drift clock.
``{"op": "stats"}``, ``{"op": "ping"}``, ``{"op": "shutdown"}``
    Server counters; liveness; graceful drain (finish in-flight
    campaigns, then stop accepting).

Responses (``type`` field)
--------------------------
``ack``       tune admitted: ``coalesced``/``cached`` say how.
``event``     one trace record of a streamed campaign (``record``).
``result``    terminal success: the campaign payload plus accounting.
``rejected``  admission control: ``reason`` in ``{"queue_full",
              "client_budget_exhausted", "draining"}``; ``retry_after_s``
              is the server's backoff hint.
``error``     malformed/unknown request; the connection stays open.

Every line is strict JSON (non-finite floats are encoded as strings by
the emitting layer, matching the trace-file convention).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Mapping, Optional

#: Protocol revision, echoed in every hello/stats payload.
PROTOCOL_VERSION = 1

#: Defaults applied to ``tune`` requests (mirrors ``repro tune`` CLI).
TUNE_DEFAULTS: Dict[str, Any] = {
    "n_train": 1000,
    "m_candidates": 100,
    "seed": 0,
    "budget_s": None,
    "faults": None,
    "fit_mode": "adaptive",
    "strategy": "ml",
    "stream": False,
}

#: Defaults applied to ``watch`` requests (mirrors ``repro watch`` CLI).
#: Smaller tune stage than TUNE_DEFAULTS: a watch spends its budget over
#: the whole monitoring horizon, not all up front.
WATCH_DEFAULTS: Dict[str, Any] = {
    "n_train": 400,
    "m_candidates": 40,
    "seed": 0,
    "steps": 120,
    "interval_s": 30.0,
    "retune_window": 32,
    "drift": None,
    "faults": None,
    "warm_start": True,
    "stream": True,
}


class ProtocolError(ValueError):
    """A request the server cannot interpret (reported, never fatal)."""


def _strict(value):
    """Keep every line strict JSON: non-finite floats become strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, Mapping):
        return {str(k): _strict(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_strict(v) for v in value]
    return value


def encode(obj: Mapping[str, Any]) -> bytes:
    """One wire line (newline-terminated UTF-8 JSON)."""
    return (json.dumps(_strict(obj), allow_nan=False) + "\n").encode("utf-8")


def decode(line: bytes | str) -> Dict[str, Any]:
    """Parse one wire line into a request dict."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty request line")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    if "op" not in obj:
        raise ProtocolError("request missing 'op'")
    return obj


def validate_tune(req: Mapping[str, Any]) -> Dict[str, Any]:
    """Canonicalize a ``tune`` request: defaults applied, types checked.

    Kernel/device *existence* is the server's job (it owns the catalogs);
    this layer only enforces shape so admission control never sees junk.
    """
    out = dict(TUNE_DEFAULTS)
    for field in ("kernel", "device"):
        value = req.get(field)
        if not isinstance(value, str) or not value:
            raise ProtocolError(f"tune request needs a string '{field}'")
        out[field] = value
    for field in ("n_train", "m_candidates", "seed"):
        if field in req and req[field] is not None:
            if not isinstance(req[field], int) or isinstance(req[field], bool):
                raise ProtocolError(f"'{field}' must be an integer")
            out[field] = req[field]
    if out["n_train"] < 1 or out["m_candidates"] < 1:
        raise ProtocolError("'n_train' and 'm_candidates' must be >= 1")
    if "budget_s" in req and req["budget_s"] is not None:
        budget = req["budget_s"]
        if not isinstance(budget, (int, float)) or isinstance(budget, bool):
            raise ProtocolError("'budget_s' must be a number")
        if budget <= 0:
            raise ProtocolError("'budget_s' must be positive")
        out["budget_s"] = float(budget)
    if "faults" in req and req["faults"] is not None:
        if not isinstance(req["faults"], str):
            raise ProtocolError("'faults' must be a profile spec string")
        out["faults"] = req["faults"]
    if "fit_mode" in req and req["fit_mode"] is not None:
        if req["fit_mode"] not in ("adaptive", "classic"):
            raise ProtocolError("'fit_mode' must be 'adaptive' or 'classic'")
        out["fit_mode"] = req["fit_mode"]
    if "strategy" in req and req["strategy"] is not None:
        from repro.core.strategies import STRATEGY_CHOICES

        choices = ("ml",) + STRATEGY_CHOICES
        if req["strategy"] not in choices:
            raise ProtocolError(
                f"'strategy' must be one of {sorted(choices)}"
            )
        out["strategy"] = req["strategy"]
    out["stream"] = bool(req.get("stream", False))
    return out


def validate_watch(req: Mapping[str, Any]) -> Dict[str, Any]:
    """Canonicalize a ``watch`` request: defaults applied, types checked.

    Same division of labour as :func:`validate_tune`: shape here,
    kernel/device/profile existence in the server.
    """
    out = dict(WATCH_DEFAULTS)
    for field in ("kernel", "device"):
        value = req.get(field)
        if not isinstance(value, str) or not value:
            raise ProtocolError(f"watch request needs a string '{field}'")
        out[field] = value
    for field in ("n_train", "m_candidates", "seed", "steps", "retune_window"):
        if field in req and req[field] is not None:
            if not isinstance(req[field], int) or isinstance(req[field], bool):
                raise ProtocolError(f"'{field}' must be an integer")
            out[field] = req[field]
    if out["n_train"] < 1 or out["m_candidates"] < 1:
        raise ProtocolError("'n_train' and 'm_candidates' must be >= 1")
    if out["steps"] < 0:
        raise ProtocolError("'steps' must be >= 0")
    if out["retune_window"] < 1:
        raise ProtocolError("'retune_window' must be >= 1")
    if "interval_s" in req and req["interval_s"] is not None:
        interval = req["interval_s"]
        if not isinstance(interval, (int, float)) or isinstance(interval, bool):
            raise ProtocolError("'interval_s' must be a number")
        if interval < 0:
            raise ProtocolError("'interval_s' must be >= 0")
        out["interval_s"] = float(interval)
    for field in ("drift", "faults"):
        if field in req and req[field] is not None:
            if not isinstance(req[field], str):
                raise ProtocolError(f"'{field}' must be a profile spec string")
            out[field] = req[field]
    if "warm_start" in req and req["warm_start"] is not None:
        if not isinstance(req["warm_start"], bool):
            raise ProtocolError("'warm_start' must be a boolean")
        out["warm_start"] = req["warm_start"]
    out["stream"] = bool(req.get("stream", True))
    return out


def response(type_: str, req_id: Optional[str], **fields) -> Dict[str, Any]:
    out: Dict[str, Any] = {"type": type_}
    if req_id is not None:
        out["id"] = req_id
    out.update(fields)
    return out
