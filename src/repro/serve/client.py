"""Client and load generator for the tuning daemon.

:class:`TuningClient` is a small blocking socket client (threads are the
concurrency story on the client side — the daemon is the async part).
:func:`run_load` drives N concurrent clients with a duplicate-heavy
request mix and reports aggregate requests/sec plus p50/p99 latency —
the workload shape the daemon is built for (fleets re-asking the same
question), used by ``make serve-smoke`` and
``benchmarks/test_perf_serve.py``.

Run directly::

    python -m repro.serve.client --port 9000 submit -k convolution -d nvidia
    python -m repro.serve.client --port 9000 load --clients 8 --requests 4
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from repro.serve import protocol


class ServerRejected(RuntimeError):
    """The daemon refused admission (carries the retry hint)."""

    def __init__(self, reason: str, retry_after_s: float) -> None:
        super().__init__(f"rejected: {reason} (retry after {retry_after_s}s)")
        self.reason = reason
        self.retry_after_s = retry_after_s


class TuningClient:
    """One blocking line-JSON connection to the daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout=120.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self.sock.makefile("rb")

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self.sock.close()

    def __enter__(self) -> "TuningClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- wire ------------------------------------------------------------------

    def send(self, obj: Dict[str, Any]) -> None:
        self.sock.sendall(protocol.encode(obj))

    def recv(self) -> Dict[str, Any]:
        line = self._rfile.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    # -- operations ------------------------------------------------------------

    def ping(self) -> bool:
        self.send({"op": "ping", "id": "ping"})
        return self.recv().get("type") == "pong"

    def stats(self) -> Dict[str, Any]:
        self.send({"op": "stats", "id": "stats"})
        reply = self.recv()
        return reply["stats"]

    def shutdown(self) -> None:
        self.send({"op": "shutdown", "id": "shutdown"})
        self.recv()  # "draining"

    def predict(
        self,
        kernel: str,
        device: str,
        config: Dict[str, int],
        n_train: int = 1000,
        seed: int = 0,
    ) -> Dict[str, Any]:
        self.send({
            "op": "predict", "id": "predict", "kernel": kernel,
            "device": device, "config": config, "n_train": n_train,
            "seed": seed,
        })
        reply = self.recv()
        if reply.get("type") == "error":
            raise RuntimeError(reply["error"])
        return reply

    def truth(self, kernel: str, device: str, index: int) -> Dict[str, Any]:
        self.send({
            "op": "truth", "id": "truth", "kernel": kernel,
            "device": device, "index": index,
        })
        reply = self.recv()
        if reply.get("type") == "error":
            raise RuntimeError(reply["error"])
        return reply

    def tune(
        self,
        kernel: str,
        device: str,
        n_train: int = 1000,
        m_candidates: int = 100,
        seed: int = 0,
        budget_s: Optional[float] = None,
        faults: Optional[str] = None,
        stream: bool = False,
        on_event=None,
        req_id: str = "tune",
    ) -> Dict[str, Any]:
        """Submit one campaign; blocks until the terminal response.

        Streamed ``event`` lines are passed to ``on_event`` as they
        arrive.  Raises :class:`ServerRejected` on admission refusal.
        """
        self.send(
            {
                "op": "tune",
                "id": req_id,
                "kernel": kernel,
                "device": device,
                "n_train": n_train,
                "m_candidates": m_candidates,
                "seed": seed,
                "budget_s": budget_s,
                "faults": faults,
                "stream": stream,
            }
        )
        while True:
            reply = self.recv()
            kind = reply.get("type")
            if kind == "event":
                if on_event is not None:
                    on_event(reply)
                continue
            if kind == "ack":
                continue
            if kind == "rejected":
                raise ServerRejected(
                    reply.get("reason", "?"), reply.get("retry_after_s", 1.0)
                )
            if kind == "error":
                raise RuntimeError(reply.get("error", "server error"))
            if kind == "result":
                return reply
            raise RuntimeError(f"unexpected reply type {kind!r}")

    def watch(
        self,
        kernel: str,
        device: str,
        n_train: int = 400,
        m_candidates: int = 40,
        seed: int = 0,
        steps: int = 120,
        interval_s: float = 30.0,
        retune_window: int = 32,
        drift: Optional[str] = None,
        faults: Optional[str] = None,
        stream: bool = True,
        on_event=None,
        req_id: str = "watch",
    ) -> Dict[str, Any]:
        """Run one online campaign; blocks until the terminal ``result``.

        Streamed ``event`` lines (drift alarms, re-tunes, spans) are
        passed to ``on_event`` as they arrive.  Raises
        :class:`ServerRejected` on admission refusal.
        """
        self.send(
            {
                "op": "watch",
                "id": req_id,
                "kernel": kernel,
                "device": device,
                "n_train": n_train,
                "m_candidates": m_candidates,
                "seed": seed,
                "steps": steps,
                "interval_s": interval_s,
                "retune_window": retune_window,
                "drift": drift,
                "faults": faults,
                "stream": stream,
            }
        )
        while True:
            reply = self.recv()
            kind = reply.get("type")
            if kind == "event":
                if on_event is not None:
                    on_event(reply)
                continue
            if kind == "ack":
                continue
            if kind == "rejected":
                raise ServerRejected(
                    reply.get("reason", "?"), reply.get("retry_after_s", 1.0)
                )
            if kind == "error":
                raise RuntimeError(reply.get("error", "server error"))
            if kind == "result":
                return reply
            raise RuntimeError(f"unexpected reply type {kind!r}")


# -- load generation -----------------------------------------------------------


def run_load(
    host: str,
    port: int,
    n_clients: int = 8,
    requests_per_client: int = 4,
    kernels=("convolution",),
    devices=("nvidia",),
    n_train: int = 400,
    m_candidates: int = 40,
    seeds=(0,),
    faults: Optional[str] = None,
    max_retries: int = 50,
) -> Dict[str, Any]:
    """Duplicate-heavy load: every client cycles the same small request
    grid, so the daemon sees mostly-identical asks — coalescing and the
    result cache carry the day.  Rejections honor ``retry_after_s`` up to
    ``max_retries`` times (bounded, so a wedged server fails loudly
    instead of hanging the generator).  Returns aggregate stats.
    """
    latencies: List[float] = []
    outcomes = {"ok": 0, "coalesced": 0, "cached": 0, "rejections": 0}
    errors: List[str] = []
    lock = threading.Lock()

    def worker(cid: int) -> None:
        try:
            with TuningClient(host, port) as client:
                for k in range(requests_per_client):
                    grid = k % (len(kernels) * len(devices) * len(seeds))
                    kernel = kernels[grid % len(kernels)]
                    device = devices[(grid // len(kernels)) % len(devices)]
                    seed = seeds[grid // (len(kernels) * len(devices))]
                    t0 = time.perf_counter()
                    retries = 0
                    while True:
                        try:
                            reply = client.tune(
                                kernel,
                                device,
                                n_train=n_train,
                                m_candidates=m_candidates,
                                seed=seed,
                                faults=faults,
                                req_id=f"c{cid}-r{k}",
                            )
                            break
                        except ServerRejected as rej:
                            retries += 1
                            if retries > max_retries:
                                raise
                            with lock:
                                outcomes["rejections"] += 1
                            time.sleep(min(rej.retry_after_s, 0.2))
                    dt = time.perf_counter() - t0
                    with lock:
                        latencies.append(dt)
                        outcomes["ok"] += 1
                        if reply.get("coalesced"):
                            outcomes["coalesced"] += 1
                        if reply.get("cached"):
                            outcomes["cached"] += 1
        except Exception as exc:  # pragma: no cover - surfaced in summary
            with lock:
                errors.append(f"client {cid}: {exc}")

    threads = [
        threading.Thread(target=worker, args=(cid,), name=f"load-{cid}")
        for cid in range(n_clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall_s = time.perf_counter() - t0

    latencies.sort()

    def pct(p: float) -> float:
        if not latencies:
            return float("nan")
        i = min(len(latencies) - 1, int(round(p * (len(latencies) - 1))))
        return latencies[i]

    total = n_clients * requests_per_client
    return {
        "clients": n_clients,
        "requests": total,
        "completed": outcomes["ok"],
        "coalesced": outcomes["coalesced"],
        "cached": outcomes["cached"],
        "rejections": outcomes["rejections"],
        "errors": errors,
        "wall_s": round(wall_s, 6),
        "req_per_s": round(outcomes["ok"] / wall_s, 3) if wall_s else 0.0,
        "p50_s": round(pct(0.50), 6),
        "p99_s": round(pct(0.99), 6),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="client / load generator for the tuning daemon",
    )
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    sub = ap.add_subparsers(dest="mode", required=True)

    one = sub.add_parser("submit", help="submit one tune request")
    one.add_argument("-k", "--kernel", required=True)
    one.add_argument("-d", "--device", required=True)
    one.add_argument("-n", "--n-train", type=int, default=1000)
    one.add_argument("-m", "--m-candidates", type=int, default=100)
    one.add_argument("--seed", type=int, default=0)
    one.add_argument("--budget", type=float, default=None)
    one.add_argument("--faults", default=None)
    one.add_argument("--stream", action="store_true",
                     help="print campaign trace events as they happen")

    watch = sub.add_parser(
        "watch", help="run one online (drift-monitored) campaign"
    )
    watch.add_argument("-k", "--kernel", required=True)
    watch.add_argument("-d", "--device", required=True)
    watch.add_argument("-n", "--n-train", type=int, default=400)
    watch.add_argument("-m", "--m-candidates", type=int, default=40)
    watch.add_argument("--seed", type=int, default=0)
    watch.add_argument("--steps", type=int, default=120)
    watch.add_argument("--interval", type=float, default=30.0,
                       help="simulated seconds between monitoring probes")
    watch.add_argument("--retune-window", type=int, default=32)
    watch.add_argument("--drift", default=None,
                       help="drift profile spec (e.g. thermal-throttle)")
    watch.add_argument("--faults", default=None)
    watch.add_argument("--no-stream", action="store_true",
                       help="suppress the live event stream")

    load = sub.add_parser("load", help="run the duplicate-heavy load mix")
    load.add_argument("--clients", type=int, default=8)
    load.add_argument("--requests", type=int, default=4)
    load.add_argument("-n", "--n-train", type=int, default=400)
    load.add_argument("-m", "--m-candidates", type=int, default=40)
    load.add_argument("--faults", default=None)
    load.add_argument("--shutdown", action="store_true",
                      help="ask the daemon to drain afterwards")

    args = ap.parse_args(argv)
    if args.mode == "submit":
        with TuningClient(args.host, args.port) as client:
            reply = client.tune(
                args.kernel,
                args.device,
                n_train=args.n_train,
                m_candidates=args.m_candidates,
                seed=args.seed,
                budget_s=args.budget,
                faults=args.faults,
                stream=args.stream,
                on_event=lambda e: print(
                    f"[event] {e['record'].get('type')}: "
                    f"{e['record'].get('name')}",
                    file=sys.stderr,
                ),
            )
        print(json.dumps(reply, indent=2))
        return 0

    if args.mode == "watch":
        with TuningClient(args.host, args.port, timeout=600.0) as client:
            reply = client.watch(
                args.kernel,
                args.device,
                n_train=args.n_train,
                m_candidates=args.m_candidates,
                seed=args.seed,
                steps=args.steps,
                interval_s=args.interval,
                retune_window=args.retune_window,
                drift=args.drift,
                faults=args.faults,
                stream=not args.no_stream,
                on_event=lambda e: print(
                    f"[event] {e['record'].get('type')}: "
                    f"{e['record'].get('name')}",
                    file=sys.stderr,
                ),
            )
        print(json.dumps(reply, indent=2))
        return 0

    summary = run_load(
        args.host,
        args.port,
        n_clients=args.clients,
        requests_per_client=args.requests,
        n_train=args.n_train,
        m_candidates=args.m_candidates,
        faults=args.faults,
    )
    print(json.dumps(summary, indent=2))
    if args.shutdown:
        with TuningClient(args.host, args.port) as client:
            client.shutdown()
    return 1 if summary["errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
