"""Campaign execution for the daemon: the CLI ``tune`` path, verbatim.

A fresh campaign must be bit-identical to ``repro tune`` with the same
``(kernel, device, n_train, m_candidates, seed)``: same ``Context``
construction, same RNG seeding, same ``tune(rng, model_seed=seed)``
call.  The only deliberate additions are invisible to the numbers —
the shared measurement broker (whose FIFO execution through
``measure_batch_direct`` preserves the engine's serial-equivalence
invariant) and an optional streaming tracer (observability only).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.core.measure import Measurer
from repro.core.online import OnlineSettings, OnlineTuner
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.kernels import get_benchmark
from repro.obs import NULL_TRACER, Tracer
from repro.runtime import Context
from repro.simulator.devices import get_device

from repro.serve.state import CampaignKey


def result_payload(result, space) -> Dict[str, Any]:
    """JSON-portable view of a :class:`~repro.core.results.TuningResult`."""
    best_config = None
    if not result.failed:
        best_config = dict(space[result.best_index])
    return {
        "kernel": result.kernel,
        "device": result.device,
        "best_index": int(result.best_index),
        "best_config": best_config,
        "best_time_s": float(result.best_time_s),
        "n_trained": int(result.n_trained),
        "n_stage2": int(result.n_stage2),
        "stage2_invalid": int(result.stage2_invalid),
        "evaluated_fraction": float(result.evaluated_fraction),
        "total_cost_s": float(result.total_cost_s),
        "failed": bool(result.failed),
        "degraded": bool(result.degraded),
        "degraded_reason": result.degraded_reason,
        "failure_breakdown": dict(result.failure_breakdown),
    }


def run_campaign(
    key: CampaignKey,
    batcher=None,
    sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    register: Optional[Callable[[Measurer], None]] = None,
) -> Dict[str, Any]:
    """Execute one campaign; returns payload + accounting + the model.

    Runs synchronously (the server dispatches it to a worker thread).
    ``batcher`` routes every measurement batch through the shared broker;
    ``sink`` receives the campaign's trace records as they happen;
    ``register`` receives the campaign's :class:`Measurer` before tuning
    starts, so the server's ``stats`` op can report the live per-campaign
    ``failure_breakdown()`` while the campaign is in flight.
    """
    spec = get_benchmark(key.kernel)
    device = get_device(key.device)
    tracer = Tracer(sink=sink) if sink is not None else NULL_TRACER
    ctx = Context(device, seed=key.seed, tracer=tracer, faults=key.faults)
    if key.strategy != "ml":
        from repro.core.strategies import SearchSettings, SearchTuner

        search_settings = SearchSettings(
            budget=key.n_train + key.m_candidates,
            max_cost_s=key.budget_s,
        )
        measurer = Measurer(
            ctx, spec, repeats=search_settings.repeats, batcher=batcher
        )
        if register is not None:
            register(measurer)
        tuner = SearchTuner(
            ctx, spec, key.strategy, search_settings, measurer=measurer
        )
    else:
        settings = TunerSettings(
            n_train=key.n_train,
            m_candidates=key.m_candidates,
            max_cost_s=key.budget_s,
            fit_mode=key.fit_mode,
        )
        measurer = Measurer(
            ctx, spec, repeats=settings.repeats, batcher=batcher
        )
        if register is not None:
            register(measurer)
        tuner = MLAutoTuner(ctx, spec, settings, measurer=measurer)
    rng = np.random.default_rng(key.seed)
    t0 = time.perf_counter()
    try:
        result = tuner.tune(rng, model_seed=key.seed)
    finally:
        tracer.close()
    wall_s = time.perf_counter() - t0

    model = tuner.model
    if model is not None:
        # The model outlives the campaign in the shared cache; detach the
        # (now closed) campaign tracer so later predicts don't emit into it.
        model.tracer = NULL_TRACER
        if model._model is not None:
            model._model.tracer = NULL_TRACER
        model._sweeper = None  # was compiled against the closed tracer

    ledger = ctx.ledger
    return {
        "result": result_payload(result, spec.space),
        "cost": {
            "compile_s": ledger.compile_s,
            "run_s": ledger.run_s,
            "failed_s": ledger.failed_s,
            "retry_s": ledger.retry_s,
            "total_s": ledger.total_s,
        },
        "wall_s": wall_s,
        # Fitted stage-one model (None when training was skipped/degraded);
        # the server parks it in the shared ModelCache for `predict`.
        "model": model,
    }


def run_watch(
    params: Dict[str, Any],
    batcher=None,
    sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    register: Optional[Callable[[Measurer], None]] = None,
) -> Dict[str, Any]:
    """Execute one online (watch) campaign; returns payload + accounting.

    ``params`` is a canonicalized ``watch`` request
    (:func:`repro.serve.protocol.validate_watch`).  Unlike
    :func:`run_campaign` there is no model to cache and no result-cache
    identity: a watch lives on its own drift clock, so two "identical"
    watches are different campaigns by definition.
    """
    spec = get_benchmark(params["kernel"])
    device = get_device(params["device"])
    tracer = Tracer(sink=sink) if sink is not None else NULL_TRACER
    ctx = Context(
        device,
        seed=params["seed"],
        tracer=tracer,
        faults=params["faults"],
        drift=params["drift"],
    )
    tune_settings = TunerSettings(
        n_train=params["n_train"],
        m_candidates=params["m_candidates"],
    )
    measurer = Measurer(
        ctx, spec, repeats=tune_settings.repeats, batcher=batcher
    )
    if register is not None:
        register(measurer)
    online = OnlineTuner(
        ctx,
        spec,
        settings=OnlineSettings(
            steps=params["steps"],
            step_interval_s=params["interval_s"],
            retune_window=params["retune_window"],
            warm_start_refits=params["warm_start"],
        ),
        tune_settings=tune_settings,
        measurer=measurer,
    )
    rng = np.random.default_rng(params["seed"])
    t0 = time.perf_counter()
    try:
        report = online.run(rng, model_seed=params["seed"])
    finally:
        tracer.close()
    wall_s = time.perf_counter() - t0

    payload = report.as_dict()
    payload["initial"] = result_payload(report.initial, spec.space)
    if not report.initial.failed:
        payload["incumbent_config"] = dict(spec.space[report.incumbent])
    payload["detector"] = online.detector.snapshot()

    ledger = ctx.ledger
    return {
        "result": payload,
        "cost": {
            "compile_s": ledger.compile_s,
            "run_s": ledger.run_s,
            "failed_s": ledger.failed_s,
            "retry_s": ledger.retry_s,
            "total_s": ledger.total_s,
        },
        "wall_s": wall_s,
    }
