"""The asyncio tuning daemon: ``python -m repro serve``.

One process owns the simulator and serves tuning campaigns to many
clients over a line-JSON protocol (TCP, or stdin/stdout with
``--stdio``).  The daemon exists because campaigns are expensive and
requests are redundant: a fleet asking "best convolution config for the
K40" should pay for *one* campaign, not N.

Architecture (one asyncio loop + two kinds of worker thread):

* connection handlers (async) — parse requests, run admission control,
  and subscribe clients to campaigns; every write goes through a
  per-connection queue so streamed events and results never interleave.
* campaign threads — a small ``ThreadPoolExecutor`` runs
  :func:`~repro.serve.campaigns.run_campaign`; results come back to the
  loop via ``call_soon_threadsafe``.
* the measurement broker thread — every campaign's batches flow through
  one :class:`~repro.serve.broker.MeasurementBroker` pump.

Request lifecycle: result-cache hit -> answer immediately; key already
in flight -> coalesce (subscribe to the one campaign); otherwise admit
(bounded by ``max_pending``; beyond it the client gets ``rejected`` with
a ``retry_after_s`` hint), clamp the campaign budget to the client's
remaining allowance, and launch.  ``shutdown`` drains: in-flight
campaigns finish and answer their subscribers, new work is rejected,
then the server closes.  See docs/serving.md for the protocol walk.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from repro.kernels import BENCHMARKS, get_benchmark
from repro.simulator.devices import DEVICES
from repro.simulator.drift import make_drift
from repro.simulator.faults import make_injector

from repro.serve import protocol
from repro.serve.broker import MeasurementBroker
from repro.serve.campaigns import run_campaign, run_watch
from repro.serve.state import (
    CampaignKey,
    ClientAccount,
    ModelCache,
    ResultCache,
    WatchKey,
)


class _InFlight:
    """One running campaign plus everyone waiting on it."""

    __slots__ = ("key", "subscribers", "sinks", "started_at", "measurer")

    def __init__(self, key: CampaignKey) -> None:
        self.key = key
        self.subscribers: List["_Connection.Pending"] = []
        self.sinks: List[Any] = []  # thread-safe event fan-out callables
        self.started_at = time.perf_counter()
        # The campaign's Measurer, registered from the worker thread once
        # constructed; lets the stats op report live failure_breakdown().
        self.measurer: Optional[Any] = None


class _Connection:
    """Per-client state: account, serialized writer, pending requests."""

    class Pending:
        __slots__ = ("conn", "req_id", "stream", "initiator")

        def __init__(self, conn, req_id, stream, initiator):
            self.conn = conn
            self.req_id = req_id
            self.stream = stream
            self.initiator = initiator

    def __init__(self, server: "TuningServer", name: str, writer) -> None:
        self.server = server
        self.name = name
        self.writer = writer
        self.account = ClientAccount(name, budget_s=server.client_budget_s)
        self.outbox: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()

    def send(self, obj: Dict[str, Any]) -> None:
        """Queue one response line (loop thread only)."""
        self.outbox.put_nowait(obj)

    def send_threadsafe(self, obj: Dict[str, Any]) -> None:
        self.server.loop.call_soon_threadsafe(self.send, obj)

    async def drain_writer(self) -> None:
        """The connection's single writer task."""
        while True:
            obj = await self.outbox.get()
            if obj is None:
                break
            try:
                self.writer.write(protocol.encode(obj))
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                break


class TuningServer:
    """The daemon.  Construct, then :meth:`serve_forever` (TCP) or
    :meth:`run_stdio`; tests drive :meth:`start`/:meth:`shutdown`
    directly on an existing loop."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 8,
        max_workers: int = 4,
        client_budget_s: Optional[float] = None,
        result_cache_size: int = 128,
        model_cache_size: int = 32,
        oracle_store=None,
    ) -> None:
        self.host = host
        self.port = port
        self.max_pending = max_pending
        self.client_budget_s = client_budget_s
        self.results = ResultCache(result_cache_size)
        self.models = ModelCache(model_cache_size)
        self.broker = MeasurementBroker()
        # Keyed by CampaignKey (tune: coalescable) or WatchKey (unique).
        self.inflight: Dict[Any, _InFlight] = {}
        self.counters: Dict[str, int] = {
            "requests": 0,
            "campaigns": 0,
            "watches": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "rejected": 0,
            "errors": 0,
        }
        self.draining = False
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="campaign"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped = asyncio.Event()
        self._conn_seq = 0
        self._watch_seq = 0
        self._avg_wall_s = 1.0  # EWMA of campaign wall time (retry hints)
        from repro.experiments.oracle_store import OracleProvider

        self.oracles = OracleProvider(store=oracle_store)

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> int:
        """Bind and start accepting; returns the bound port."""
        self.loop = asyncio.get_running_loop()
        self.broker.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_forever(self) -> None:
        await self.start()
        print(
            f"[serve] listening on {self.host}:{self.port} "
            f"(max_pending={self.max_pending})",
            file=sys.stderr,
            flush=True,
        )
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: finish in-flight campaigns, then stop."""
        self.draining = True
        while self.inflight:
            await asyncio.sleep(0.01)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=True)
        self.broker.stop()
        self._stopped.set()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._conn_seq += 1
        conn = _Connection(self, f"client-{self._conn_seq}", writer)
        writer_task = asyncio.create_task(conn.drain_writer())
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                await self._dispatch_line(conn, line)
        except (ConnectionError, asyncio.CancelledError):
            # CancelledError: the loop is tearing handlers down during
            # shutdown — finish cleanup and exit quietly, don't re-raise
            # into the stream protocol's done-callback.
            pass
        finally:
            conn.outbox.put_nowait(None)
            with contextlib.suppress(asyncio.CancelledError):
                await writer_task
            writer.close()

    async def run_stdio(self) -> None:
        """Serve one client over stdin/stdout (no sockets; e.g. an IDE)."""
        self.loop = asyncio.get_running_loop()
        self.broker.start()

        class _StdoutWriter:
            def write(self, data: bytes) -> None:
                sys.stdout.write(data.decode("utf-8"))
                sys.stdout.flush()

            async def drain(self) -> None:
                return None

        conn = _Connection(self, "stdio", _StdoutWriter())
        writer_task = asyncio.create_task(conn.drain_writer())
        while True:
            line = await self.loop.run_in_executor(None, sys.stdin.readline)
            if not line:
                break
            await self._dispatch_line(conn, line.encode("utf-8"))
            if self._stopped.is_set():
                break
        self.draining = True
        while self.inflight:
            await asyncio.sleep(0.01)
        conn.outbox.put_nowait(None)
        await writer_task
        self._pool.shutdown(wait=True)
        self.broker.stop()

    async def _dispatch_line(self, conn: _Connection, line: bytes) -> None:
        self.counters["requests"] += 1
        conn.account.inc_requests()
        try:
            req = protocol.decode(line)
        except protocol.ProtocolError as exc:
            self.counters["errors"] += 1
            conn.send(protocol.response("error", None, error=str(exc)))
            return
        req_id = req.get("id")
        op = req["op"]
        try:
            if op == "ping":
                conn.send(protocol.response("pong", req_id))
            elif op == "stats":
                conn.send(
                    protocol.response("stats", req_id, stats=self.stats())
                )
            elif op == "tune":
                self._handle_tune(conn, req_id, req)
            elif op == "watch":
                self._handle_watch(conn, req_id, req)
            elif op == "predict":
                self._handle_predict(conn, req_id, req)
            elif op == "truth":
                self._handle_truth(conn, req_id, req)
            elif op == "shutdown":
                conn.send(protocol.response("draining", req_id))
                asyncio.create_task(self.shutdown())
            else:
                self.counters["errors"] += 1
                conn.send(
                    protocol.response(
                        "error", req_id, error=f"unknown op {op!r}"
                    )
                )
        except protocol.ProtocolError as exc:
            self.counters["errors"] += 1
            conn.send(protocol.response("error", req_id, error=str(exc)))
        except Exception as exc:  # a handler bug must not kill the client
            self.counters["errors"] += 1
            conn.send(
                protocol.response(
                    "error", req_id,
                    error=f"internal error: {type(exc).__name__}: {exc}",
                )
            )

    # -- tune ------------------------------------------------------------------

    def _reject(self, conn, req_id, reason: str) -> None:
        self.counters["rejected"] += 1
        # Hint scales with depth: a full queue needs about one campaign's
        # wall time per slot to clear.
        backlog = max(1, len(self.inflight))
        conn.send(
            protocol.response(
                "rejected",
                req_id,
                reason=reason,
                retry_after_s=round(self._avg_wall_s * backlog, 3),
            )
        )

    def _handle_tune(self, conn: _Connection, req_id, req) -> None:
        spec_req = protocol.validate_tune(req)
        if spec_req["kernel"] not in BENCHMARKS:
            raise protocol.ProtocolError(
                f"unknown kernel {spec_req['kernel']!r}; "
                f"known: {sorted(BENCHMARKS)}"
            )
        if spec_req["device"] not in DEVICES:
            raise protocol.ProtocolError(
                f"unknown device {spec_req['device']!r}; "
                f"known: {sorted(DEVICES)}"
            )
        if spec_req["faults"] is not None:
            try:  # fail fast, before the campaign thread
                make_injector(spec_req["faults"])
            except ValueError as exc:
                raise protocol.ProtocolError(str(exc)) from None
        if conn.account.exhausted():
            self._reject(conn, req_id, "client_budget_exhausted")
            return

        budget = conn.account.effective_budget_s(spec_req["budget_s"])
        key = CampaignKey(
            kernel=spec_req["kernel"],
            device=spec_req["device"],
            problem=str(get_benchmark(spec_req["kernel"]).problem),
            n_train=spec_req["n_train"],
            m_candidates=spec_req["m_candidates"],
            seed=spec_req["seed"],
            budget_s=budget,
            faults=spec_req["faults"],
            fit_mode=spec_req["fit_mode"],
            strategy=spec_req["strategy"],
        )
        pending = _Connection.Pending(
            conn, req_id, spec_req["stream"], initiator=False
        )

        cached = self.results.get(key)
        if cached is not None:
            self.counters["cache_hits"] += 1
            conn.send(
                protocol.response("ack", req_id, coalesced=False, cached=True)
            )
            self._send_result(pending, cached, cached=True, coalesced=False)
            return

        flight = self.inflight.get(key)
        if flight is not None:
            self.counters["coalesced"] += 1
            conn.send(
                protocol.response("ack", req_id, coalesced=True, cached=False)
            )
            flight.subscribers.append(pending)
            if pending.stream:
                flight.sinks.append(conn.send_threadsafe)
            return

        if self.draining:
            self._reject(conn, req_id, "draining")
            return
        if len(self.inflight) >= self.max_pending:
            self._reject(conn, req_id, "queue_full")
            return

        pending.initiator = True
        conn.send(
            protocol.response("ack", req_id, coalesced=False, cached=False)
        )
        flight = _InFlight(key)
        flight.subscribers.append(pending)
        if pending.stream:
            flight.sinks.append(conn.send_threadsafe)
        self.inflight[key] = flight
        self.counters["campaigns"] += 1

        def sink(record: Dict[str, Any]) -> None:
            # Campaign-thread context: fan out to current subscribers.
            for push in list(flight.sinks):
                push(
                    protocol.response(
                        "event", None, key=self._key_fields(key), record=record
                    )
                )

        def register(measurer) -> None:
            # Worker-thread context: a single attribute store (GIL-atomic).
            flight.measurer = measurer

        future = self.loop.run_in_executor(
            self._pool, run_campaign, key, self.broker, sink, register
        )
        future.add_done_callback(
            lambda fut: self.loop.call_soon_threadsafe(
                self._campaign_done, key, fut
            )
        )

    # -- watch -----------------------------------------------------------------

    def _handle_watch(self, conn: _Connection, req_id, req) -> None:
        """Admit one online campaign.  Same admission control as tune
        (budget, drain, queue depth) but no cache and no coalescing —
        see :class:`~repro.serve.state.WatchKey` for why."""
        params = protocol.validate_watch(req)
        if params["kernel"] not in BENCHMARKS:
            raise protocol.ProtocolError(
                f"unknown kernel {params['kernel']!r}; "
                f"known: {sorted(BENCHMARKS)}"
            )
        if params["device"] not in DEVICES:
            raise protocol.ProtocolError(
                f"unknown device {params['device']!r}; "
                f"known: {sorted(DEVICES)}"
            )
        for field, coerce in (("faults", make_injector), ("drift", make_drift)):
            if params[field] is not None:
                try:  # fail fast, before the campaign thread
                    coerce(params[field])
                except ValueError as exc:
                    raise protocol.ProtocolError(str(exc)) from None
        if conn.account.exhausted():
            self._reject(conn, req_id, "client_budget_exhausted")
            return
        if self.draining:
            self._reject(conn, req_id, "draining")
            return
        if len(self.inflight) >= self.max_pending:
            self._reject(conn, req_id, "queue_full")
            return

        self._watch_seq += 1
        key = WatchKey(
            serial=self._watch_seq,
            kernel=params["kernel"],
            device=params["device"],
            n_train=params["n_train"],
            m_candidates=params["m_candidates"],
            seed=params["seed"],
            steps=params["steps"],
            drift=params["drift"],
            faults=params["faults"],
        )
        pending = _Connection.Pending(
            conn, req_id, params["stream"], initiator=True
        )
        conn.send(
            protocol.response(
                "ack", req_id, coalesced=False, cached=False,
                watch=key.serial,
            )
        )
        flight = _InFlight(key)
        flight.subscribers.append(pending)
        if pending.stream:
            flight.sinks.append(conn.send_threadsafe)
        self.inflight[key] = flight
        self.counters["watches"] += 1

        key_fields = self._watch_key_fields(key)

        def sink(record: Dict[str, Any]) -> None:
            # Campaign-thread context: fan out to current subscribers.
            for push in list(flight.sinks):
                push(
                    protocol.response(
                        "event", None, key=key_fields, record=record
                    )
                )

        def register(measurer) -> None:
            # Worker-thread context: a single attribute store (GIL-atomic).
            flight.measurer = measurer

        future = self.loop.run_in_executor(
            self._pool, run_watch, params, self.broker, sink, register
        )
        future.add_done_callback(
            lambda fut: self.loop.call_soon_threadsafe(
                self._watch_done, key, fut
            )
        )

    def _watch_done(self, key: WatchKey, future) -> None:
        flight = self.inflight.pop(key, None)
        if flight is None:
            return
        try:
            outcome = future.result()
        except Exception as exc:
            self.counters["errors"] += 1
            for pending in flight.subscribers:
                pending.conn.send(
                    protocol.response(
                        "error", pending.req_id, error=f"watch failed: {exc}"
                    )
                )
            return
        wall = outcome["wall_s"]
        self._avg_wall_s = 0.7 * self._avg_wall_s + 0.3 * max(wall, 0.01)
        payload = {
            "key": self._watch_key_fields(key),
            "result": outcome["result"],
            "cost": outcome["cost"],
            "wall_s": round(wall, 6),
        }
        for pending in flight.subscribers:
            pending.conn.account.charge(outcome["cost"])
            self._send_result(pending, payload, cached=False, coalesced=False)

    @staticmethod
    def _watch_key_fields(key: WatchKey) -> Dict[str, Any]:
        return {
            "watch": key.serial,
            "kernel": key.kernel,
            "device": key.device,
            "n_train": key.n_train,
            "m_candidates": key.m_candidates,
            "seed": key.seed,
            "steps": key.steps,
            "drift": key.drift,
            "faults": key.faults,
        }

    def _campaign_done(self, key: CampaignKey, future) -> None:
        flight = self.inflight.pop(key, None)
        if flight is None:
            return
        try:
            outcome = future.result()
        except Exception as exc:  # campaign crashed: tell every subscriber
            self.counters["errors"] += 1
            for pending in flight.subscribers:
                pending.conn.send(
                    protocol.response(
                        "error", pending.req_id, error=f"campaign failed: {exc}"
                    )
                )
            return
        wall = outcome["wall_s"]
        self._avg_wall_s = 0.7 * self._avg_wall_s + 0.3 * max(wall, 0.01)
        if outcome["model"] is not None:
            self.models.put(key.model_key(), outcome["model"])
        payload = {
            "key": self._key_fields(key),
            "result": outcome["result"],
            "cost": outcome["cost"],
            "wall_s": round(wall, 6),
        }
        self.results.put(key, payload)
        for pending in flight.subscribers:
            if pending.initiator:
                pending.conn.account.charge(outcome["cost"])
            self._send_result(
                pending, payload, cached=False, coalesced=not pending.initiator
            )

    @staticmethod
    def _key_fields(key: CampaignKey) -> Dict[str, Any]:
        return {
            "kernel": key.kernel,
            "device": key.device,
            "problem": key.problem,
            "n_train": key.n_train,
            "m_candidates": key.m_candidates,
            "seed": key.seed,
            "budget_s": key.budget_s,
            "faults": key.faults,
            "fit_mode": key.fit_mode,
            "strategy": key.strategy,
        }

    def _send_result(
        self, pending, payload: Dict[str, Any], cached: bool, coalesced: bool
    ) -> None:
        pending.conn.send(
            protocol.response(
                "result",
                pending.req_id,
                cached=cached,
                coalesced=coalesced,
                account=pending.conn.account.snapshot(),
                **payload,
            )
        )

    # -- predict ---------------------------------------------------------------

    def _handle_predict(self, conn: _Connection, req_id, req) -> None:
        for field in ("kernel", "device"):
            if not isinstance(req.get(field), str):
                raise protocol.ProtocolError(
                    f"predict request needs a string {field!r}"
                )
        config = req.get("config")
        if not isinstance(config, dict):
            raise protocol.ProtocolError(
                "predict request needs a 'config' object of name: value"
            )
        fit_mode = req.get("fit_mode", protocol.TUNE_DEFAULTS["fit_mode"])
        if fit_mode not in ("adaptive", "classic"):
            raise protocol.ProtocolError(
                "'fit_mode' must be 'adaptive' or 'classic'"
            )
        model_key = (
            req["kernel"],
            req["device"],
            int(req.get("n_train", protocol.TUNE_DEFAULTS["n_train"])),
            int(req.get("seed", protocol.TUNE_DEFAULTS["seed"])),
            fit_mode,
        )
        model = self.models.get(model_key)
        if model is None:
            conn.send(
                protocol.response(
                    "error",
                    req_id,
                    error="no model cached for this (kernel, device, "
                    "n_train, seed, fit_mode); run a tune first",
                )
            )
            return
        spec = get_benchmark(req["kernel"])
        try:
            cfg = spec.space.config(**{k: int(v) for k, v in config.items()})
        except (KeyError, TypeError, ValueError) as exc:
            raise protocol.ProtocolError(f"bad config: {exc}") from None
        pred = float(model.predict_indices([cfg.index])[0])
        conn.send(
            protocol.response(
                "prediction",
                req_id,
                predicted_time_s=pred,
                config=dict(cfg),
                index=int(cfg.index),
            )
        )

    # -- truth -----------------------------------------------------------------

    def _handle_truth(self, conn: _Connection, req_id, req) -> None:
        """Ground-truth time of one configuration, via the *shared*
        oracle provider: concurrent identical asks compute once, and a
        disk-backed store persists the entry across daemon restarts."""
        kernel, device_key = req.get("kernel"), req.get("device")
        if kernel not in BENCHMARKS:
            raise protocol.ProtocolError(f"unknown kernel {kernel!r}")
        if device_key not in DEVICES:
            raise protocol.ProtocolError(f"unknown device {device_key!r}")
        try:
            index = int(req["index"])
        except (KeyError, TypeError, ValueError):
            raise protocol.ProtocolError(
                "truth request needs an integer 'index'"
            ) from None
        spec = get_benchmark(kernel)
        if not 0 <= index < spec.space.size:
            raise protocol.ProtocolError(
                f"index out of range [0, {spec.space.size})"
            )
        oracle = self.oracles.oracle(spec, DEVICES[device_key])
        true_s = oracle.time_of(index)
        oracle.save_partial()
        conn.send(
            protocol.response(
                "truth",
                req_id,
                kernel=kernel,
                device=device_key,
                index=index,
                true_time_s=true_s,
                valid=bool(true_s == true_s),  # NaN marks invalid
            )
        )

    # -- stats -----------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "counters": dict(self.counters),
            "inflight": len(self.inflight),
            "max_pending": self.max_pending,
            "draining": self.draining,
            "result_cache": self.results.stats_snapshot(),
            "model_cache": self.models.stats_snapshot(),
            "broker": self.broker.stats_snapshot(),
            "oracle_store": self.oracles.stats_snapshot(),
            "campaigns": [self._campaign_stats(f) for f in
                          list(self.inflight.values())],
        }

    def _campaign_stats(self, flight: _InFlight) -> Dict[str, Any]:
        """Live view of one in-flight campaign: its key, age, and the
        measurer's fault counters (``failure_breakdown()``) so operators
        see retry pressure without reading traces."""
        key = flight.key
        fields = (
            self._watch_key_fields(key)
            if isinstance(key, WatchKey)
            else self._key_fields(key)
        )
        m = flight.measurer
        return {
            **fields,
            "age_s": round(time.perf_counter() - flight.started_at, 3),
            "failure_breakdown": (
                m.stats.failure_breakdown() if m is not None else {}
            ),
        }


class ServerThread:
    """Run a :class:`TuningServer` on a private loop in a daemon thread.

    The embedding story for tests, the benchmark and ``serve-smoke``:
    ``with ServerThread(TuningServer(...)) as port: ...`` — the context
    exit performs the same graceful drain as the ``shutdown`` op.
    """

    def __init__(self, server: TuningServer) -> None:
        self.server = server
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, name="serve-loop", daemon=True
        )
        self.port: Optional[int] = None

    def start(self) -> int:
        self._thread.start()
        fut = asyncio.run_coroutine_threadsafe(self.server.start(), self.loop)
        self.port = fut.result(timeout=30)
        return self.port

    def stop(self) -> None:
        if not self._thread.is_alive():
            return
        fut = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self.loop
        )
        fut.result(timeout=120)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=30)
        self.loop.close()

    def __enter__(self) -> int:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro serve", description="line-JSON tuning daemon"
    )
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=0,
                    help="TCP port (0 binds an ephemeral port, printed "
                         "on startup)")
    ap.add_argument("--stdio", action="store_true",
                    help="serve one client over stdin/stdout instead of TCP")
    ap.add_argument("--max-pending", type=int, default=8,
                    help="concurrent campaigns admitted before backpressure")
    ap.add_argument("--workers", type=int, default=4,
                    help="campaign worker threads")
    ap.add_argument("--client-budget", type=float, default=None,
                    help="per-client simulated-second allowance "
                         "(default: unlimited)")
    ap.add_argument("--oracle-store", default=None,
                    help="persistent ground-truth table directory")
    args = ap.parse_args(argv)

    server = TuningServer(
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        max_workers=args.workers,
        client_budget_s=args.client_budget,
        oracle_store=args.oracle_store,
    )
    try:
        if args.stdio:
            asyncio.run(server.run_stdio())
        else:
            asyncio.run(server.serve_forever())
    except KeyboardInterrupt:
        print("[serve] interrupted; draining", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
