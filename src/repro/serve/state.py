"""Shared server state: campaign identity, caches, client accounts.

Everything a request may touch concurrently lives here, behind small
explicit locks.  The sharing story:

* :class:`ResultCache` — completed campaigns keyed by their *full*
  identity (:class:`CampaignKey`), so a replayed request is answered
  without measuring anything.  Bounded LRU: a long-lived daemon must not
  grow without limit.
* :class:`ModelCache` — the fitted :class:`~repro.core.model.PerformanceModel`
  of every fresh campaign, keyed by what determines its training set.
  Serves ``predict`` requests across clients.
* one :class:`~repro.experiments.oracle_store.OracleProvider` — shared
  ground-truth cache (optionally disk-backed) for evaluation helpers.
* :class:`ClientAccount` — per-connection simulated-second budget,
  charged through a :class:`~repro.simulator.noise.CostLedger` so the
  breakdown (compile/run/failed/retry) is reported back to the client.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.simulator.noise import CostLedger


@dataclass(frozen=True)
class CampaignKey:
    """Complete identity of a tuning campaign.

    Two requests with equal keys provably compute the same result (the
    whole pipeline is deterministic in these fields), which is what makes
    coalescing and result-caching semantically invisible.  ``problem`` is
    derived from the kernel spec — part of the identity so a future
    problem-size knob cannot silently alias cache entries.  ``budget_s``
    is the *effective* campaign budget (request budget clamped by the
    client's remaining allowance): a differently-budgeted run may degrade
    differently, so it must not share a cache slot.
    """

    kernel: str
    device: str
    problem: str
    n_train: int
    m_candidates: int
    seed: int
    budget_s: Optional[float] = None
    faults: Optional[str] = None
    fit_mode: str = "adaptive"
    strategy: str = "ml"

    def model_key(self) -> Tuple[str, str, int, int, str]:
        """What determines the fitted stage-one model (see ModelCache).

        ``fit_mode`` is part of the identity: adaptive and classic fits
        of the same training set produce different weights, so they must
        not alias one cache slot.
        """
        return (self.kernel, self.device, self.n_train, self.seed, self.fit_mode)


@dataclass(frozen=True)
class WatchKey:
    """Identity of one *online* (watch) campaign in the in-flight table.

    Deliberately **not** a coalescing key: two watches with identical
    parameters are still different campaigns — each lives on its own
    drift clock, started at its own moment.  ``serial`` (a per-server
    counter) keeps every watch unique in the shared in-flight dict while
    the descriptive fields make stats and event frames readable.
    """

    serial: int
    kernel: str
    device: str
    n_train: int
    m_candidates: int
    seed: int
    steps: int
    drift: Optional[str] = None
    faults: Optional[str] = None


class _LRU:
    """Tiny thread-safe LRU map with hit/miss counters."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: Entries dropped at capacity.  An operator watching stats can
        #: tell a healthy cache from one thrashing its capacity — silent
        #: eviction looked identical to "never stored" before this.
        self.evictions = 0

    def get(self, key):
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats_snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class ResultCache(_LRU):
    """Completed campaign payloads, keyed by :class:`CampaignKey`."""


class ModelCache(_LRU):
    """Fitted performance models, keyed by ``CampaignKey.model_key()``."""


class ClientAccount:
    """One connection's simulated-second allowance.

    ``budget_s=None`` means unlimited (the default single-user posture);
    a bounded account accumulates every fresh campaign it *initiated*
    into its ledger — coalesced joins and cache hits are free, because
    they cost the server nothing marginal.
    """

    def __init__(self, name: str, budget_s: Optional[float] = None) -> None:
        self.name = name
        self.budget_s = budget_s
        self.ledger = CostLedger()
        self._lock = threading.Lock()
        self.n_requests = 0
        self.n_campaigns = 0

    def inc_requests(self) -> None:
        """Count one dispatched request.  Must be the only writer of
        ``n_requests``: a bare ``+= 1`` from the dispatch path races with
        :meth:`snapshot` and with itself under concurrent connections
        (read-modify-write is not atomic), silently losing counts."""
        with self._lock:
            self.n_requests += 1

    def remaining_s(self) -> Optional[float]:
        """Simulated seconds left, or None when unlimited."""
        if self.budget_s is None:
            return None
        with self._lock:
            return max(0.0, self.budget_s - self.ledger.total_s)

    def exhausted(self) -> bool:
        remaining = self.remaining_s()
        return remaining is not None and remaining <= 0.0

    def effective_budget_s(self, requested: Optional[float]) -> Optional[float]:
        """Campaign budget after clamping by this client's allowance."""
        remaining = self.remaining_s()
        if remaining is None:
            return requested
        if requested is None:
            return remaining
        return min(requested, remaining)

    def charge(self, breakdown: Dict[str, float]) -> None:
        """Fold one campaign's ledger breakdown into the account."""
        with self._lock:
            self.ledger.compile_s += breakdown.get("compile_s", 0.0)
            self.ledger.run_s += breakdown.get("run_s", 0.0)
            self.ledger.failed_s += breakdown.get("failed_s", 0.0)
            self.ledger.retry_s += breakdown.get("retry_s", 0.0)
            self.n_campaigns += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "client": self.name,
                "budget_s": self.budget_s,
                "spent_s": self.ledger.total_s,
                "requests": self.n_requests,
                "campaigns": self.n_campaigns,
            }
