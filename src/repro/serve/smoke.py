"""``make serve-smoke`` / ``make drift-smoke``: daemon one-shot checks.

Default mode boots an in-process daemon, drives the duplicate-heavy load
mix through a *flaky-gpu* fault profile (so retries, backoff and
quarantine all run under concurrency), asks for a graceful drain, and
asserts the daemon went down clean: every request answered, no client
errors, nothing left in flight.

``--drift PROFILE`` switches to the online-campaign smoke: a ``watch``
runs under the drift schedule *while* the tune load mix hammers the same
daemon, and the gate becomes end-to-end recovery — the detector alarmed,
at least one incremental re-tune completed, and the drain still came
down clean.  The drift onset is placed automatically after the initial
tune plus the detector's calibration window (both deterministic, probed
locally), so the schedule shifts the machine exactly when the monitor is
armed and watching.

Exit code 0 is the pass signal either way — wire it into CI as-is.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading

from repro.serve.client import TuningClient, run_load
from repro.serve.server import ServerThread, TuningServer


def _probe_tune_cost_s(kernel: str, device: str, n_train: int,
                       m_candidates: int, seed: int) -> float:
    """Simulated-second cost of the watch's initial tune, computed by
    running it locally.  Deterministic, so it exactly predicts where the
    server-side watch's drift clock stands when monitoring begins."""
    import numpy as np

    from repro.core.tuner import MLAutoTuner, TunerSettings
    from repro.kernels import get_benchmark
    from repro.runtime import Context
    from repro.simulator.devices import get_device

    ctx = Context(get_device(device), seed=seed)
    tuner = MLAutoTuner(
        ctx, get_benchmark(kernel),
        TunerSettings(n_train=n_train, m_candidates=m_candidates),
    )
    tuner.tune(np.random.default_rng(seed), model_seed=seed)
    return ctx.ledger.total_s


def _drift_smoke(args, server: TuningServer, port: int) -> tuple:
    """The --drift path: watch + load concurrently; returns
    (watch_reply, load_summary)."""
    from repro.core.drift import DetectorSettings

    kernel, device, seed = "convolution", "nvidia", 0
    interval_s = 30.0
    c0 = _probe_tune_cost_s(kernel, device, args.n_train,
                            args.m_candidates, seed)
    # Onset after tune + calibration (+margin); the spec string appends
    # onset_s to the user's profile, later fields winning on conflict.
    calibration = DetectorSettings().calibration
    onset = c0 + (calibration + 4) * interval_s
    sep = "," if ":" in args.drift else ":"
    drift_spec = f"{args.drift}{sep}onset_s={onset:.1f},ramp_s=120"
    print(f"[smoke] tune cost {c0:.1f}s -> drift onset {onset:.1f}s",
          file=sys.stderr)

    watch_out = {}

    def run_watch_client():
        with TuningClient("127.0.0.1", port, timeout=600.0) as client:
            watch_out["reply"] = client.watch(
                kernel, device,
                n_train=args.n_train, m_candidates=args.m_candidates,
                seed=seed, steps=args.steps, interval_s=interval_s,
                retune_window=16, drift=drift_spec,
            )

    watcher = threading.Thread(target=run_watch_client, name="smoke-watch")
    watcher.start()
    summary = run_load(
        "127.0.0.1", port,
        n_clients=args.clients,
        requests_per_client=args.requests,
        n_train=args.n_train,
        m_candidates=args.m_candidates,
        faults=args.faults,
    )
    watcher.join(timeout=600)
    return watch_out.get("reply"), summary


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke", description=__doc__
    )
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--requests", type=int, default=3)
    ap.add_argument("-n", "--n-train", type=int, default=300)
    ap.add_argument("-m", "--m-candidates", type=int, default=30)
    ap.add_argument("--faults", default="flaky-gpu")
    ap.add_argument("--drift", default=None,
                    help="drift profile: also run a watch campaign under "
                         "this schedule and gate on detected shift + "
                         "completed re-tune (e.g. thermal-throttle)")
    ap.add_argument("--steps", type=int, default=48,
                    help="watch monitoring steps (--drift mode)")
    args = ap.parse_args(argv)

    server = TuningServer(max_pending=6, max_workers=4)
    thread = ServerThread(server)
    port = thread.start()
    print(f"[smoke] daemon up on port {port}", file=sys.stderr)
    watch_reply = None
    try:
        if args.drift:
            watch_reply, summary = _drift_smoke(args, server, port)
        else:
            summary = run_load(
                "127.0.0.1",
                port,
                n_clients=args.clients,
                requests_per_client=args.requests,
                n_train=args.n_train,
                m_candidates=args.m_candidates,
                faults=args.faults,
            )
        with TuningClient("127.0.0.1", port) as client:
            stats = client.stats()
            client.shutdown()
    finally:
        thread.stop()

    failures = []
    if summary["errors"]:
        failures.append(f"client errors: {summary['errors']}")
    if summary["completed"] != summary["requests"]:
        failures.append(
            f"only {summary['completed']}/{summary['requests']} "
            "requests answered"
        )
    if server.inflight:
        failures.append(f"{len(server.inflight)} campaigns still in flight")
    if not server.draining:
        failures.append("daemon never entered drain")
    if args.drift:
        if watch_reply is None:
            failures.append("watch campaign never returned")
        else:
            res = watch_reply["result"]
            if res["alarms"] < 1:
                failures.append("drift never detected (0 alarms)")
            if len(res["retunes"]) < 1:
                failures.append("no re-tune completed")

    print(json.dumps({"load": summary, "server": stats}, indent=2))
    if failures:
        print(f"[smoke] FAIL: {'; '.join(failures)}", file=sys.stderr)
        return 1
    extra = ""
    if args.drift and watch_reply is not None:
        res = watch_reply["result"]
        extra = (
            f", watch: {res['alarms']} alarm(s) + "
            f"{len(res['retunes'])} re-tune(s) under {args.drift!r}"
        )
    print(
        f"[smoke] clean drain: {summary['completed']} requests, "
        f"{stats['counters']['campaigns']} campaigns, "
        f"{summary['req_per_s']} req/s under {args.faults!r}{extra}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
