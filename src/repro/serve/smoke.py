"""``make serve-smoke``: daemon + load generator under faults, one shot.

Boots an in-process daemon, drives the duplicate-heavy load mix through
a *flaky-gpu* fault profile (so retries, backoff and quarantine all run
under concurrency), asks for a graceful drain, and asserts the daemon
went down clean: every request answered, no client errors, nothing left
in flight.  Exit code 0 is the pass signal — wire it into CI as-is.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serve.client import TuningClient, run_load
from repro.serve.server import ServerThread, TuningServer


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke", description=__doc__
    )
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--requests", type=int, default=3)
    ap.add_argument("-n", "--n-train", type=int, default=300)
    ap.add_argument("-m", "--m-candidates", type=int, default=30)
    ap.add_argument("--faults", default="flaky-gpu")
    args = ap.parse_args(argv)

    server = TuningServer(max_pending=4, max_workers=4)
    thread = ServerThread(server)
    port = thread.start()
    print(f"[smoke] daemon up on port {port}", file=sys.stderr)
    try:
        summary = run_load(
            "127.0.0.1",
            port,
            n_clients=args.clients,
            requests_per_client=args.requests,
            n_train=args.n_train,
            m_candidates=args.m_candidates,
            faults=args.faults,
        )
        with TuningClient("127.0.0.1", port) as client:
            stats = client.stats()
            client.shutdown()
    finally:
        thread.stop()

    failures = []
    if summary["errors"]:
        failures.append(f"client errors: {summary['errors']}")
    if summary["completed"] != summary["requests"]:
        failures.append(
            f"only {summary['completed']}/{summary['requests']} "
            "requests answered"
        )
    if server.inflight:
        failures.append(f"{len(server.inflight)} campaigns still in flight")
    if not server.draining:
        failures.append("daemon never entered drain")

    print(json.dumps({"load": summary, "server": stats}, indent=2))
    if failures:
        print(f"[smoke] FAIL: {'; '.join(failures)}", file=sys.stderr)
        return 1
    print(
        f"[smoke] clean drain: {summary['completed']} requests, "
        f"{stats['counters']['campaigns']} campaigns, "
        f"{summary['req_per_s']} req/s under {args.faults!r}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
