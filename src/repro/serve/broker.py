"""The measurement broker: one pump for every concurrent campaign.

Campaign threads never touch the batch engine directly.  Each campaign's
:class:`~repro.core.measure.Measurer` is constructed with
``batcher=broker``, so every ``measure_batch`` call lands here as a
*submission*; a single broker thread drains submissions in windows and
executes them through ``Measurer.measure_batch_direct`` — the exact
engine path a standalone run uses.

Why this is sound: ``measure_batch`` is contractually bit-identical to a
serial measure loop, and each measurer's submissions are executed in FIFO
order on one thread, so a campaign run through the broker produces the
same measurements, ledger charges and RNG stream as one run alone —
the server's bit-identity guarantee reduces to the engine's own
invariant.

What the window buys: concurrent campaigns share one measurement pump
instead of contending for the engine, the drain loop amortizes wake-ups
across campaigns (``windows`` vs ``submissions`` in :attr:`stats`), and
the pump is the natural throttle point — when the queue is deep, new
campaigns are *behind* existing work, which admission control surfaces as
backpressure instead of letting latency grow silently.
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, List, Optional


class _Submission:
    __slots__ = ("measurer", "indices", "done", "result", "error")

    def __init__(self, measurer, indices):
        self.measurer = measurer
        self.indices = indices
        self.done = threading.Event()
        self.result = None
        self.error: Optional[BaseException] = None


class MeasurementBroker:
    """Serializes measurement batches from concurrent campaigns.

    Start with :meth:`start` (or use as a context manager); campaigns
    block in :meth:`submit` until their batch has run.  ``stats`` counts
    ``submissions``, drain ``windows``, ``batched_windows`` (windows that
    carried work from more than one submission) and ``configs``;
    :meth:`stats_snapshot` adds the live pump ``queue_depth`` so
    operators can see measurement backpressure in the ``stats`` op.
    """

    def __init__(self) -> None:
        self._queue: "queue.Queue[Optional[_Submission]]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "submissions": 0,
            "windows": 0,
            "batched_windows": 0,
            "configs": 0,
        }

    # -- campaign-facing API ---------------------------------------------------

    def submit(self, measurer, indices):
        """Run one batch through the pump; returns its ``MeasurementSet``.

        Called (indirectly) by ``Measurer.measure_batch`` from a campaign
        thread.  Raises whatever the engine raised, in the caller.
        """
        if self._stopped.is_set():
            raise RuntimeError("measurement broker is stopped")
        sub = _Submission(measurer, indices)
        self._queue.put(sub)
        sub.done.wait()
        if sub.error is not None:
            raise sub.error
        return sub.result

    # -- pump ------------------------------------------------------------------

    def _drain_window(self, first: _Submission) -> List[_Submission]:
        window = [first]
        while True:
            try:
                nxt = self._queue.get_nowait()
            except queue.Empty:
                return window
            if nxt is None:  # stop sentinel: re-post for the main loop
                self._queue.put(None)
                return window
            window.append(nxt)

    def _run(self) -> None:
        while True:
            sub = self._queue.get()
            if sub is None:
                return
            window = self._drain_window(sub)
            with self._lock:
                self.stats["windows"] += 1
                self.stats["submissions"] += len(window)
                if len(window) > 1:
                    self.stats["batched_windows"] += 1
            for s in window:
                try:
                    s.result = s.measurer.measure_batch_direct(s.indices)
                    with self._lock:
                        self.stats["configs"] += len(s.indices)
                except BaseException as exc:  # surfaced in submit()
                    s.error = exc
                finally:
                    s.done.set()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "MeasurementBroker":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="measurement-broker", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Drain remaining submissions, then stop the pump thread."""
        if self._thread is None:
            return
        self._stopped.set()
        self._queue.put(None)
        self._thread.join()
        self._thread = None
        # Fail anything that raced the stop sentinel into the queue.
        while True:
            try:
                sub = self._queue.get_nowait()
            except queue.Empty:
                break
            if sub is not None:
                sub.error = RuntimeError("measurement broker stopped")
                sub.done.set()

    def stats_snapshot(self) -> Dict[str, int]:
        with self._lock:
            snap = dict(self.stats)
        # Live depth of the pump queue (submissions waiting for the drain
        # loop); approximate by nature, exact enough for backpressure.
        snap["queue_depth"] = self._queue.qsize()
        return snap

    def __enter__(self) -> "MeasurementBroker":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
