"""``repro.serve`` — the tuning daemon.

One long-lived process owns the simulator, the oracle/model caches and
the measurement pump, and answers tuning requests from many clients over
a line-JSON protocol.  See docs/serving.md for the protocol and
operational story.

Layout:

* :mod:`repro.serve.protocol` — wire format (requests, responses).
* :mod:`repro.serve.broker` — the shared measurement pump.
* :mod:`repro.serve.state` — campaign identity, caches, client budgets.
* :mod:`repro.serve.campaigns` — campaign execution (the CLI ``tune``
  path, bit-for-bit).
* :mod:`repro.serve.server` — the asyncio daemon (``python -m repro
  serve``).
* :mod:`repro.serve.client` — blocking client + load generator.
"""

from repro.serve.broker import MeasurementBroker
from repro.serve.campaigns import result_payload, run_campaign
from repro.serve.client import ServerRejected, TuningClient, run_load
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import TuningServer
from repro.serve.state import (
    CampaignKey,
    ClientAccount,
    ModelCache,
    ResultCache,
)

__all__ = [
    "CampaignKey",
    "ClientAccount",
    "MeasurementBroker",
    "ModelCache",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ResultCache",
    "ServerRejected",
    "TuningClient",
    "TuningServer",
    "result_payload",
    "run_campaign",
    "run_load",
]
