"""Command-line interface.

::

    python -m repro devices                      # list device models
    python -m repro benchmarks                   # list benchmarks + spaces
    python -m repro tune -k convolution -d nvidia -n 1000 -m 100
    python -m repro tune -k raycasting -d amd --iterative --budget 900
    python -m repro tune -k convolution -d nvidia --trace trace.jsonl
    python -m repro trace-summary trace.jsonl
    python -m repro predict -k convolution -d nvidia -n 500 \
        --config "wg_x=32,wg_y=4,ppt_x=2,ppt_y=2,use_image=1,use_local=0,pad=1,interleaved=1,unroll=1"
    python -m repro sweep-bench -k raycasting -d nvidia   # sweep engine timings
    python -m repro fit-bench -k convolution -d gtx980    # training engine timings
    python -m repro experiments --only fig01      # reproduction harness
    python -m repro bench-report                  # perf-gate trajectory table
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import Context, MLAutoTuner, PerformanceModel, TunerSettings
from repro.core.iterative import IterativeSettings, IterativeTuner
from repro.core.measure import Measurer
from repro.kernels import BENCHMARKS, get_benchmark
from repro.simulator.devices import DEVICES, get_device
from repro.simulator.drift import DRIFT_PROFILES
from repro.simulator.faults import FAULT_PROFILES, get_fault_profile


def _parse_config(text: str, space) -> dict:
    """Parse ``name=value,name=value`` against a parameter space."""
    values = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise SystemExit(f"bad config item {item!r}; expected name=value")
        name, _, raw = item.partition("=")
        name = name.strip()
        if name not in space:
            raise SystemExit(
                f"unknown parameter {name!r}; expected one of {list(space.names)}"
            )
        try:
            values[name] = int(raw)
        except ValueError:
            raise SystemExit(f"parameter {name!r}: non-integer value {raw!r}")
    missing = set(space.names) - set(values)
    if missing:
        raise SystemExit(f"missing parameters: {sorted(missing)}")
    return values


def _parse_pins(text, space) -> dict:
    """Parse a *partial* ``name=value`` list (pinned parameters)."""
    if not text:
        return {}
    pins = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise SystemExit(f"bad pin {item!r}; expected name=value")
        name, _, raw = item.partition("=")
        name = name.strip()
        if name not in space:
            raise SystemExit(
                f"unknown parameter {name!r}; expected one of {list(space.names)}"
            )
        try:
            value = int(raw)
        except ValueError:
            raise SystemExit(f"pin {name!r}: non-integer value {raw!r}")
        allowed = list(space.parameter(name).values)
        if value not in allowed:
            raise SystemExit(
                f"pin {name}={value} not in allowed values {allowed}"
            )
        pins[name] = value
    return pins


def _strategy_choices() -> tuple:
    from repro.core.strategies import STRATEGY_CHOICES

    return STRATEGY_CHOICES


def cmd_devices(_args) -> int:
    print(f"{'key':8s} {'name':22s} {'type':4s} {'CUs':>4s} {'SIMD':>4s} "
          f"{'GB/s':>6s} {'maxWG':>6s} {'local/CU':>9s}")
    for key, d in DEVICES.items():
        print(
            f"{key:8s} {d.name:22s} {d.device_type:4s} {d.compute_units:4d} "
            f"{d.simd_width:4d} {d.global_bandwidth_gbs:6.0f} "
            f"{d.max_workgroup_size:6d} {d.local_mem_per_cu_kb:7.0f}KB"
        )
    return 0


def cmd_benchmarks(_args) -> int:
    for name in BENCHMARKS:
        spec = get_benchmark(name)
        print(f"{name}: {spec.space.size} configurations, "
              f"{len(spec.space.parameters)} parameters, problem={spec.problem}")
    return 0


def cmd_tune(args) -> int:
    from dataclasses import asdict
    from pathlib import Path

    from repro.core.results import MeasurementDB
    from repro.experiments.reporting import engine_stats_block
    from repro.obs import NULL_TRACER, Tracer, run_manifest

    from repro.core.strategies import SearchSettings, SearchTuner

    spec = get_benchmark(args.kernel)
    device = get_device(args.device)
    rng = np.random.default_rng(args.seed)
    strategy = getattr(args, "strategy", "ml")
    if strategy != "ml" and args.iterative:
        raise SystemExit("--strategy and --iterative are mutually exclusive")
    if args.iterative:
        settings = IterativeSettings(total_budget=args.budget, rounds=args.rounds)
    elif strategy != "ml":
        # Same measurement allowance as the two-stage tuner would get.
        settings = SearchSettings(
            budget=args.n_train + args.m_candidates,
            pins=_parse_pins(args.pin, spec.space),
        )
    else:
        settings = TunerSettings(
            n_train=args.n_train,
            m_candidates=args.m_candidates,
            fit_mode=args.fit_mode,
        )
    if args.trace:
        tracer = Tracer(
            Path(args.trace),
            manifest=run_manifest(
                command="tune",
                kernel=args.kernel,
                device=device.name,
                settings=asdict(settings),
                seed=args.seed,
                iterative=bool(args.iterative),
                strategy=strategy,
                faults=args.faults,
                drift=args.drift,
            ),
        )
    else:
        tracer = NULL_TRACER
    faults = get_fault_profile(args.faults) if args.faults else None
    ctx = Context(device, seed=args.seed, tracer=tracer, faults=faults,
                  drift=args.drift)
    db = MeasurementDB(Path(args.db)) if args.db else None
    measurer = Measurer(ctx, spec, db=db) if db is not None else None

    try:
        if args.iterative:
            tuner = IterativeTuner(ctx, spec, settings, measurer=measurer)
        elif strategy != "ml":
            tuner = SearchTuner(ctx, spec, strategy, settings,
                                measurer=measurer)
        else:
            tuner = MLAutoTuner(ctx, spec, settings, measurer=measurer)
        result = tuner.tune(rng, model_seed=args.seed)
    finally:
        tracer.close()

    if db is not None:
        db.save()
    if args.trace:
        print(f"trace written to {args.trace}")

    if result.failed:
        print("tuning FAILED: not a single valid measurement "
              "(the paper's §7 failure mode); raise -n / -m or use --iterative")
        return 1
    best = spec.space[result.best_index]
    print(f"kernel            : {result.kernel}")
    print(f"device            : {result.device}")
    print(f"best configuration: {dict(best)}")
    print(f"measured time     : {result.best_time_s * 1e3:.3f} ms")
    print(f"evaluated         : {result.evaluated_fraction:.2%} of the space")
    print(f"simulated cost    : {result.total_cost_s / 60:.1f} min")
    if result.degraded:
        print(f"degraded          : yes ({result.degraded_reason})")
    if result.failure_breakdown:
        parts = ", ".join(
            f"{k}={v}" for k, v in result.failure_breakdown.items()
        )
        print(f"failure breakdown : {parts}")
    outcome = getattr(tuner, "outcome", None)
    if outcome is not None and hasattr(outcome, "leaderboard"):
        print(_leaderboard_block(outcome))
    print("engine stats")
    print(engine_stats_block(tuner.measurer.stats, ctx.ledger))
    return 0


def _leaderboard_block(outcome) -> str:
    """Render a bandit outcome's strategy-vs-strategy leaderboard."""
    lines = ["strategy leaderboard"]
    lines.append(f"  {'strategy':12s} {'best':>10s} {'pulls':>6s} "
                 f"{'measured':>9s} {'spend':>10s} {'reward/s':>12s}")
    for arm in outcome.leaderboard():
        best = (f"{arm.best_time_s * 1e3:.3f}ms"
                if np.isfinite(arm.best_time_s) else "-")
        lines.append(
            f"  {arm.name:12s} {best:>10s} {arm.pulls:6d} "
            f"{arm.n_measured:9d} {arm.spend_s:9.1f}s "
            f"{arm.mean_reward:12.6f}"
        )
    return "\n".join(lines)


def cmd_search(args) -> int:
    """Run one zoo strategy (or the bandit meta-tuner) stand-alone."""
    from dataclasses import asdict
    from pathlib import Path

    from repro.core.results import MeasurementDB
    from repro.core.strategies import SearchSettings, SearchTuner
    from repro.experiments.reporting import engine_stats_block
    from repro.obs import NULL_TRACER, Tracer, run_manifest

    spec = get_benchmark(args.kernel)
    device = get_device(args.device)
    rng = np.random.default_rng(args.seed)
    settings = SearchSettings(
        budget=args.budget,
        batch=args.batch,
        max_cost_s=args.max_cost_s,
        pins=_parse_pins(args.pin, spec.space),
    )
    if args.trace:
        tracer = Tracer(
            Path(args.trace),
            manifest=run_manifest(
                command="search",
                kernel=args.kernel,
                device=device.name,
                strategy=args.strategy,
                settings=asdict(settings),
                seed=args.seed,
                faults=args.faults,
                drift=args.drift,
            ),
        )
    else:
        tracer = NULL_TRACER
    faults = get_fault_profile(args.faults) if args.faults else None
    ctx = Context(device, seed=args.seed, tracer=tracer, faults=faults,
                  drift=args.drift)
    db = MeasurementDB(Path(args.db)) if args.db else None
    measurer = Measurer(ctx, spec, db=db) if db is not None else None
    tuner = SearchTuner(ctx, spec, args.strategy, settings, measurer=measurer)
    try:
        result = tuner.tune(rng)
    finally:
        tracer.close()
    if db is not None:
        db.save()
    if args.trace:
        print(f"trace written to {args.trace}")

    outcome = tuner.outcome
    if result.failed:
        print(f"search FAILED: strategy {args.strategy!r} found no valid "
              f"configuration in {outcome.n_proposed} proposals "
              f"(stop: {outcome.stop_reason})")
        return 1
    best = spec.space[result.best_index]
    print(f"kernel            : {result.kernel}")
    print(f"device            : {result.device}")
    print(f"strategy          : {args.strategy}")
    if settings.pins:
        pinned = ", ".join(f"{k}={v}" for k, v in settings.pins)
        print(f"pinned            : {pinned}")
    print(f"best configuration: {dict(best)}")
    print(f"measured time     : {result.best_time_s * 1e3:.3f} ms")
    print(f"proposed/measured : {outcome.n_proposed}/{outcome.n_measured} "
          f"(+{outcome.n_free} free db hits)")
    print(f"rounds            : {outcome.rounds} (stop: {outcome.stop_reason})")
    print(f"simulated cost    : {result.total_cost_s / 60:.1f} min")
    if result.degraded:
        print(f"degraded          : yes ({result.degraded_reason})")
    if hasattr(outcome, "leaderboard"):
        print(_leaderboard_block(outcome))
    print("engine stats")
    print(engine_stats_block(tuner.measurer.stats, ctx.ledger))
    return 0


def cmd_watch(args) -> int:
    from pathlib import Path

    from repro.core.online import OnlineSettings, OnlineTuner
    from repro.obs import NULL_TRACER, Tracer, run_manifest

    spec = get_benchmark(args.kernel)
    device = get_device(args.device)
    if args.trace:
        tracer = Tracer(
            Path(args.trace),
            manifest=run_manifest(
                command="watch",
                kernel=args.kernel,
                device=device.name,
                seed=args.seed,
                steps=args.steps,
                drift=args.drift,
                faults=args.faults,
            ),
        )
    else:
        tracer = NULL_TRACER
    faults = get_fault_profile(args.faults) if args.faults else None
    ctx = Context(device, seed=args.seed, tracer=tracer, faults=faults,
                  drift=args.drift)
    online = OnlineTuner(
        ctx,
        spec,
        settings=OnlineSettings(
            steps=args.steps,
            step_interval_s=args.interval,
            retune_window=args.retune_window,
            warm_start_refits=not args.cold_refits,
        ),
        tune_settings=TunerSettings(
            n_train=args.n_train, m_candidates=args.m_candidates
        ),
    )
    try:
        report = online.run(
            np.random.default_rng(args.seed), model_seed=args.seed
        )
    finally:
        tracer.close()
    if args.trace:
        print(f"trace written to {args.trace}")

    if report.initial.failed:
        print("initial tuning FAILED: nothing to monitor "
              "(raise -n / -m)")
        return 1
    best = spec.space[report.incumbent]
    print(f"kernel            : {report.kernel}")
    print(f"device            : {report.device}")
    print(f"initial pick      : index {report.initial.best_index}, "
          f"{report.initial.best_time_s * 1e3:.3f} ms")
    print(f"monitoring        : {report.steps} probes x "
          f"{args.interval:.0f}s ({report.skipped} skipped)")
    print(f"alarms / re-tunes : {report.alarms} / {len(report.retunes)}")
    for event in report.retunes:
        print(f"  step {event.step:4d} @ {event.at_s:9.1f}s: "
              f"shift x{event.ratio:.3f}, "
              f"{event.old_index} -> {event.new_index}, "
              f"cost {event.cost_s:.1f}s, "
              f"refit {event.fit_wall_s * 1e3:.0f}ms/"
              f"{event.fit_epochs}ep")
    print(f"final incumbent   : {dict(best)}")
    print(f"cost breakdown    : initial {report.initial_cost_s:.1f}s, "
          f"monitor {report.monitor_cost_s:.1f}s, "
          f"re-tune {report.retune_cost_s:.1f}s")
    return 0


def cmd_campaign(args) -> int:
    from dataclasses import asdict
    from pathlib import Path

    from repro.core.campaign import run_campaign_grid
    from repro.core.results import MeasurementDB
    from repro.obs import Tracer, run_manifest

    kernels = [k.strip() for k in args.kernels.split(",") if k.strip()]
    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    specs = [get_benchmark(k) for k in kernels]
    for d in devices:
        get_device(d)  # fail fast on typos before forking workers
    db = MeasurementDB(Path(args.db)) if args.db else None
    settings = TunerSettings(n_train=args.n_train, m_candidates=args.m_candidates)
    faults = get_fault_profile(args.faults) if args.faults else None
    tracer = None
    if args.trace:
        tracer = Tracer(
            Path(args.trace),
            manifest=run_manifest(
                command="campaign",
                kernels=kernels,
                devices=devices,
                settings=asdict(settings),
                seed=args.seed,
                faults=args.faults,
                strategy=args.strategy,
            ),
        )
    try:
        report = run_campaign_grid(
            specs,
            devices,
            settings=settings,
            db=db,
            max_workers=args.workers,
            seed=args.seed,
            tracer=tracer,
            faults=faults,
            strategy=args.strategy,
        )
    finally:
        if tracer is not None:
            tracer.close()
    print(report.report())
    if args.trace:
        print(f"trace written to {args.trace}")
    return 0


def cmd_trace_summary(args) -> int:
    from pathlib import Path

    from repro.obs import render_summary

    path = Path(args.trace)
    if not path.exists():
        print(f"no such trace file: {path}", file=sys.stderr)
        return 1
    print(render_summary(path))
    return 0


def cmd_predict(args) -> int:
    spec = get_benchmark(args.kernel)
    device = get_device(args.device)
    ctx = Context(device, seed=args.seed)
    measurer = Measurer(ctx, spec)
    rng = np.random.default_rng(args.seed)

    print(f"measuring {args.n_train} random configurations to train the model ...")
    ms = measurer.sample_and_measure(args.n_train, rng)
    model = PerformanceModel(spec.space, seed=args.seed).fit_measurements(ms)

    cfg = spec.space.config(**_parse_config(args.config, spec.space))
    pred = model.predict_indices([cfg.index])[0]
    print(f"configuration     : {dict(cfg)}")
    print(f"predicted time    : {pred * 1e3:.3f} ms")
    actual = measurer.measure(cfg.index)
    if actual is None:
        print("actual            : INVALID on this device")
    else:
        print(f"actual (measured) : {actual * 1e3:.3f} ms "
              f"(relative error {abs(pred - actual) / actual:.1%})")
    return 0


def cmd_sweep_bench(args) -> int:
    import time

    from repro.core.sweep import SweepSettings

    spec = get_benchmark(args.kernel)
    device = get_device(args.device)
    ctx = Context(device, seed=args.seed)
    measurer = Measurer(ctx, spec)
    rng = np.random.default_rng(args.seed)

    print(f"training on {args.n_train} random configurations ...")
    ms = measurer.sample_and_measure(args.n_train, rng)
    model = PerformanceModel(spec.space, seed=args.seed).fit_measurements(ms)

    n = spec.space.size
    limit = min(n, args.limit) if args.limit else n
    idx = np.arange(limit, dtype=np.int64) if limit < n else None
    print(f"sweeping {limit} of {n} configurations, top-{args.top_m} ...")

    def bench(label, settings):
        # Same fitted weights under different engine settings.
        m = PerformanceModel(spec.space, seed=args.seed, sweep=settings)
        m._model = model._model
        t0 = time.perf_counter()
        if settings is not None and not settings.enabled:
            pred = m.predict_indices_reference(
                np.arange(limit, dtype=np.int64) if idx is None else idx
            )
            top = None
        else:
            pred = m.predict_all() if idx is None else m.predict_indices(idx)
            top = m.top_m(args.top_m, idx)
        dt = time.perf_counter() - t0
        print(f"{label:24s} {dt:8.3f} s   {limit / dt:12,.0f} configs/s")
        return pred, top, dt

    ref_pred, _, ref_dt = bench(
        "reference (chunked)", SweepSettings(enabled=False)
    )
    f64_pred, f64_top, f64_dt = bench("sweeper float64", SweepSettings())
    f32_pred, f32_top, _ = bench("sweeper float32", SweepSettings(dtype="float32"))
    if args.workers > 1:
        _, mw_top, _ = bench(
            f"sweeper float64 x{args.workers}",
            SweepSettings(workers=args.workers),
        )
    else:
        mw_top = None

    rel = np.max(
        np.abs(f64_pred - ref_pred) / np.maximum(np.abs(ref_pred), 1e-300)
    )
    overlap = len(set(f32_top.tolist()) & set(f64_top.tolist())) / max(
        len(f64_top), 1
    )
    print(f"speedup (f64 vs reference) : {ref_dt / f64_dt:.2f}x")
    print(f"float64 max relative error : {rel:.3e}")
    print(f"float32 top-{args.top_m} overlap     : {overlap:.1%}")
    f32_rel = np.max(
        np.abs(f32_pred - ref_pred) / np.maximum(np.abs(ref_pred), 1e-300)
    )
    print(f"float32 max relative error : {f32_rel:.3e}")
    if mw_top is not None:
        print(f"multi-worker top-M equal   : {bool(np.array_equal(mw_top, f64_top))}")
    return 0


def cmd_fit_bench(args) -> int:
    """Benchmark the adaptive ensemble-training engine against classic."""
    from repro.ml.ensemble import EnsembleMLPRegressor

    spec = get_benchmark(args.kernel)
    device = get_device(args.device)
    ctx = Context(device, seed=args.seed)
    measurer = Measurer(ctx, spec)
    rng = np.random.default_rng(args.seed)

    print(f"measuring {args.n_train} random configurations ...")
    ms = measurer.sample_and_measure(args.n_train, rng)
    from repro.core.encoding import ConfigEncoder
    enc = ConfigEncoder(spec.space)
    X = enc.encode_indices(ms.indices)
    y = np.log(ms.times_s)
    print(f"training set: {X.shape[0]} valid samples, {X.shape[1]} features")

    def run(label, **kwargs):
        model = EnsembleMLPRegressor(seed=args.seed, **kwargs)
        model.fit(X, y)
        work = int(model.member_epochs_.sum())
        print(f"{label:22s} {model.fit_wall_s_:7.2f} s  "
              f"{len(model.loss_curve_):4d} epochs  "
              f"{work:6d} member-epochs  "
              f"stop={model.stop_reason_}  frozen={model.n_frozen_}")
        return model

    classic = run("classic", fit_mode="classic")
    adaptive = run("adaptive", fit_mode="adaptive")
    speedup = classic.fit_wall_s_ / max(adaptive.fit_wall_s_, 1e-12)
    rel = float(np.mean(np.abs(
        np.exp(adaptive.predict(X)) - np.exp(classic.predict(X))
    ) / np.exp(classic.predict(X))))
    print(f"speedup (classic/adaptive) : {speedup:.2f}x")
    print(f"mean relative divergence   : {rel:.4f}")

    t_warm = adaptive.fit_wall_s_
    cold_epochs = len(adaptive.loss_curve_)
    adaptive.fit(X, y, warm_start=True)
    print(f"warm-start refit           : {adaptive.fit_wall_s_:.2f} s, "
          f"{len(adaptive.loss_curve_)} epochs "
          f"({len(adaptive.loss_curve_) / max(cold_epochs, 1):.1%} of cold), "
          f"{t_warm / max(adaptive.fit_wall_s_, 1e-12):.1f}x faster")
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments.run_all import main as run_all_main

    forwarded = []
    if args.preset:
        forwarded += ["--preset", args.preset]
    if args.only:
        forwarded += ["--only", args.only]
    if args.out:
        forwarded += ["--out", args.out]
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    if args.serial:
        forwarded += ["--serial"]
    if args.oracle_store:
        forwarded += ["--oracle-store", args.oracle_store]
    if args.trace:
        forwarded += ["--trace", args.trace]
    if args.faults:
        forwarded += ["--faults", args.faults]
    run_all_main(forwarded)
    return 0


#: Preferred headline metric per artifact, first match wins.
_HEADLINE_KEYS = (
    "speedup", "throughput_gain", "recovered_gap", "bandit_gap",
    "cost_fraction",
)


def cmd_bench_report(args) -> int:
    """Render every ``benchmarks/BENCH_*.json`` trajectory as one table."""
    import json
    from pathlib import Path

    root = Path(args.dir)
    files = sorted(root.glob("BENCH_*.json"))
    if not files:
        print(f"no BENCH_*.json artifacts under {root}/")
        return 1
    rows = []
    for path in files:
        name = path.stem[len("BENCH_"):]
        try:
            points = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError) as e:
            rows.append((name, "-", f"unreadable: {e}", ""))
            continue
        if not isinstance(points, list):
            points = [points]
        for point in points:
            if not isinstance(point, dict):
                continue
            rev = str(point.get("git_rev", "-"))
            headline = ""
            for key in _HEADLINE_KEYS:
                if isinstance(point.get(key), (int, float)):
                    value = point[key]
                    suffix = "x" if key in ("speedup", "throughput_gain") else ""
                    headline = f"{key} {value:g}{suffix}"
                    break
            details = " ".join(
                f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in point.items()
                if k != "git_rev"
                and not headline.startswith(f"{k} ")
                and isinstance(v, (int, float, str))
            )
            rows.append((name, rev, headline, details))
    w_name = max(len("artifact"), *(len(r[0]) for r in rows))
    w_rev = max(len("rev"), *(len(r[1]) for r in rows))
    w_head = max(len("headline"), *(len(r[2]) for r in rows))
    print(f"{'artifact':{w_name}s}  {'rev':{w_rev}s}  "
          f"{'headline':{w_head}s}  details")
    for name, rev, headline, details in rows:
        print(f"{name:{w_name}s}  {rev:{w_rev}s}  {headline:{w_head}s}  "
              f"{details}")
    return 0


def cmd_serve(args) -> int:
    from repro.serve.server import main as serve_main

    forwarded = ["--host", args.host, "--port", str(args.port),
                 "--max-pending", str(args.max_pending),
                 "--workers", str(args.workers)]
    if args.stdio:
        forwarded += ["--stdio"]
    if args.client_budget is not None:
        forwarded += ["--client-budget", str(args.client_budget)]
    if args.oracle_store:
        forwarded += ["--oracle-store", args.oracle_store]
    return serve_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="ML-based auto-tuning for OpenCL performance portability "
        "(IPDPSW 2015 reproduction)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list the simulated devices").set_defaults(
        fn=cmd_devices
    )
    sub.add_parser("benchmarks", help="list the benchmarks").set_defaults(
        fn=cmd_benchmarks
    )

    tune = sub.add_parser("tune", help="run the auto-tuner")
    tune.add_argument("-k", "--kernel", required=True, choices=sorted(BENCHMARKS))
    tune.add_argument("-d", "--device", required=True)
    tune.add_argument("-n", "--n-train", type=int, default=1000)
    tune.add_argument("-m", "--m-candidates", type=int, default=100)
    tune.add_argument("--iterative", action="store_true",
                      help="round-based refinement instead of one-shot")
    tune.add_argument("--budget", type=int, default=1200,
                      help="total measurements for --iterative")
    tune.add_argument("--rounds", type=int, default=3)
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--db", default=None,
                      help="path to a MeasurementDB JSON file; known "
                           "measurements are reused, new ones persisted")
    tune.add_argument("--trace", default=None,
                      help="write a JSONL pipeline trace to this path "
                           "(inspect with 'repro trace-summary')")
    tune.add_argument("--faults", default=None,
                      help="fault-injection profile, e.g. "
                           f"{', '.join(sorted(FAULT_PROFILES))}; "
                           "fields can be overridden as "
                           "'flaky-gpu:p_hang=0.02,hang_duration_s=4'")
    tune.add_argument("--drift", default=None,
                      help="performance-drift schedule, e.g. "
                           f"{', '.join(sorted(DRIFT_PROFILES))}; "
                           "fields can be overridden as "
                           "'thermal-throttle:onset_s=600,ramp_s=120'")
    tune.add_argument("--fit-mode", choices=("adaptive", "classic"),
                      default="adaptive",
                      help="ensemble training engine: adaptive "
                           "(member-wise convergence freezing, default) "
                           "or classic (reference global-stop loop)")
    tune.add_argument("--strategy", default="ml",
                      choices=("ml",) + _strategy_choices(),
                      help="'ml' (the paper's two-stage ANN tuner, default) "
                           "or a search strategy / 'bandit' with the same "
                           "measurement budget (n_train + m_candidates)")
    tune.add_argument("--pin", default=None,
                      help="comma-separated name=value pairs held fixed "
                           "during --strategy searches")
    tune.set_defaults(fn=cmd_tune)

    sea = sub.add_parser(
        "search",
        help="model-free search of a kernel's space "
             "(strategy zoo / bandit meta-tuner, see docs/tuning_guide.md)",
    )
    sea.add_argument("-k", "--kernel", required=True, choices=sorted(BENCHMARKS))
    sea.add_argument("-d", "--device", required=True)
    sea.add_argument("--strategy", default="bandit",
                     choices=_strategy_choices(),
                     help="search strategy; 'bandit' (default) splits the "
                          "budget across all of them via UCB")
    sea.add_argument("--budget", type=int, default=1000,
                     help="total configuration proposals")
    sea.add_argument("--batch", type=int, default=64,
                     help="proposals measured per round (one wave)")
    sea.add_argument("--max-cost-s", type=float, default=None,
                     help="stop once this much simulated ledger time "
                          "has been spent")
    sea.add_argument("--pin", default=None,
                     help="comma-separated name=value pairs held fixed, "
                          "e.g. 'use_local=1,unroll=0'")
    sea.add_argument("--seed", type=int, default=0)
    sea.add_argument("--db", default=None,
                     help="MeasurementDB JSON path; known measurements are "
                          "free, new ones persisted")
    sea.add_argument("--trace", default=None,
                     help="write a JSONL trace (the strategy leaderboard "
                          "shows in 'repro trace-summary')")
    sea.add_argument("--faults", default=None,
                     help="fault-injection profile, e.g. "
                          f"{', '.join(sorted(FAULT_PROFILES))}")
    sea.add_argument("--drift", default=None,
                     help="performance-drift schedule, e.g. "
                          f"{', '.join(sorted(DRIFT_PROFILES))}")
    sea.set_defaults(fn=cmd_search)

    wat = sub.add_parser(
        "watch",
        help="tune once, then monitor the pick and re-tune on drift "
             "(see docs/robustness.md)",
    )
    wat.add_argument("-k", "--kernel", required=True, choices=sorted(BENCHMARKS))
    wat.add_argument("-d", "--device", required=True)
    wat.add_argument("-n", "--n-train", type=int, default=400)
    wat.add_argument("-m", "--m-candidates", type=int, default=40)
    wat.add_argument("--seed", type=int, default=0)
    wat.add_argument("--steps", type=int, default=120,
                     help="monitoring probes after the initial tune")
    wat.add_argument("--interval", type=float, default=30.0,
                     help="simulated seconds of serving between probes")
    wat.add_argument("--retune-window", type=int, default=32,
                     help="top-ranked candidates re-measured on alarm")
    wat.add_argument("--drift", default=None,
                     help="performance-drift schedule, e.g. "
                          f"{', '.join(sorted(DRIFT_PROFILES))}")
    wat.add_argument("--faults", default=None,
                     help="fault-injection profile, e.g. "
                          f"{', '.join(sorted(FAULT_PROFILES))}")
    wat.add_argument("--cold-refits", action="store_true",
                     help="retrain drift-response refits from random init "
                          "instead of warm-starting the incumbent weights")
    wat.add_argument("--trace", default=None,
                     help="write a JSONL pipeline trace to this path")
    wat.set_defaults(fn=cmd_watch)

    camp = sub.add_parser(
        "campaign", help="tune kernels x devices in parallel processes"
    )
    camp.add_argument("-k", "--kernels", required=True,
                      help="comma-separated benchmark names")
    camp.add_argument("-d", "--devices", required=True,
                      help="comma-separated device keys")
    camp.add_argument("-n", "--n-train", type=int, default=800)
    camp.add_argument("-m", "--m-candidates", type=int, default=80)
    camp.add_argument("--workers", type=int, default=None,
                      help="process count; 1 runs inline")
    camp.add_argument("--db", default=None,
                      help="campaign MeasurementDB path (enables resume)")
    camp.add_argument("--trace", default=None,
                      help="write a merged per-worker JSONL trace to this "
                           "path (inspect with 'repro trace-summary')")
    camp.add_argument("--faults", default=None,
                      help="fault-injection profile applied to every cell "
                           f"({', '.join(sorted(FAULT_PROFILES))})")
    camp.add_argument("--seed", type=int, default=0)
    camp.add_argument("--strategy", default="ml",
                      choices=("ml",) + _strategy_choices(),
                      help="tuner for every cell: 'ml' (default) or a "
                           "search strategy / 'bandit' of equal budget")
    camp.set_defaults(fn=cmd_campaign)

    summ = sub.add_parser(
        "trace-summary", help="per-stage time/cost breakdown of a JSONL trace"
    )
    summ.add_argument("trace", help="path to a trace written with --trace")
    summ.set_defaults(fn=cmd_trace_summary)

    pred = sub.add_parser("predict", help="train a model and predict one config")
    pred.add_argument("-k", "--kernel", required=True, choices=sorted(BENCHMARKS))
    pred.add_argument("-d", "--device", required=True)
    pred.add_argument("-n", "--n-train", type=int, default=800)
    pred.add_argument("--config", required=True,
                      help="comma-separated name=value pairs")
    pred.add_argument("--seed", type=int, default=0)
    pred.set_defaults(fn=cmd_predict)

    swb = sub.add_parser(
        "sweep-bench",
        help="benchmark the fused prediction-sweep engine vs the reference",
    )
    swb.add_argument("-k", "--kernel", default="raycasting",
                     choices=sorted(BENCHMARKS))
    swb.add_argument("-d", "--device", default="nvidia")
    swb.add_argument("-n", "--n-train", type=int, default=600)
    swb.add_argument("--top-m", type=int, default=200)
    swb.add_argument("--limit", type=int, default=None,
                     help="sweep only the first LIMIT configurations")
    swb.add_argument("--workers", type=int, default=2,
                     help="also time a multi-process sweep with this many "
                          "workers (1 disables)")
    swb.add_argument("--seed", type=int, default=0)
    swb.set_defaults(fn=cmd_sweep_bench)

    ftb = sub.add_parser(
        "fit-bench",
        help="benchmark the adaptive ensemble-training engine vs classic",
    )
    ftb.add_argument("-k", "--kernel", default="convolution",
                     choices=sorted(BENCHMARKS))
    ftb.add_argument("-d", "--device", default="gtx980")
    ftb.add_argument("-n", "--n-train", type=int, default=2000)
    ftb.add_argument("--seed", type=int, default=0)
    ftb.set_defaults(fn=cmd_fit_bench)

    exp = sub.add_parser("experiments", help="reproduction harness")
    exp.add_argument("--preset", default=None)
    exp.add_argument("--only", default=None)
    exp.add_argument("--out", default=None)
    exp.add_argument("--jobs", type=int, default=None,
                     help="run experiment units on this many worker processes")
    exp.add_argument("--serial", action="store_true",
                     help="force inline execution (overrides --jobs)")
    exp.add_argument("--oracle-store", default=None,
                     help="directory of persistent ground-truth tables "
                          "(default: $REPRO_ORACLE_STORE if set)")
    exp.add_argument("--trace", default=None,
                     help="write a JSONL trace of the run "
                          "(inspect with 'repro trace-summary')")
    exp.add_argument("--faults", default=None,
                     help="fault-injection profile applied to runtime-backed "
                          f"units ({', '.join(sorted(FAULT_PROFILES))}); "
                          "oracle-backed ground truth stays fault-free")
    exp.set_defaults(fn=cmd_experiments)

    srv = sub.add_parser(
        "serve", help="line-JSON tuning daemon (see docs/serving.md)"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0,
                     help="TCP port (0 binds an ephemeral port, printed "
                          "on startup)")
    srv.add_argument("--stdio", action="store_true",
                     help="serve one client over stdin/stdout instead of TCP")
    srv.add_argument("--max-pending", type=int, default=8,
                     help="concurrent campaigns admitted before requests "
                          "are rejected with a retry hint")
    srv.add_argument("--workers", type=int, default=4,
                     help="campaign worker threads")
    srv.add_argument("--client-budget", type=float, default=None,
                     help="per-client simulated-second allowance "
                          "(default: unlimited)")
    srv.add_argument("--oracle-store", default=None,
                     help="persistent ground-truth table directory shared "
                          "across requests")
    srv.set_defaults(fn=cmd_serve)

    rep = sub.add_parser(
        "bench-report",
        help="render benchmarks/BENCH_*.json trajectories as one table",
    )
    rep.add_argument("--dir", default="benchmarks",
                     help="directory holding the BENCH_*.json artifacts "
                          "(default: benchmarks)")
    rep.set_defaults(fn=cmd_bench_report)
    return ap


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
