"""repro — machine-learning based auto-tuning for OpenCL performance
portability.

A full reproduction of Falch & Elster, *"Machine Learning Based Auto-tuning
for Enhanced OpenCL Performance Portability"* (IPDPSW 2015), built on a
structural device performance simulator standing in for the paper's
hardware testbed.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for per-figure reproduction results.

Quick start::

    import numpy as np
    from repro import Context, MLAutoTuner, TunerSettings
    from repro.kernels import ConvolutionKernel
    from repro.simulator import NVIDIA_K40

    ctx = Context(NVIDIA_K40, seed=42)
    tuner = MLAutoTuner(ctx, ConvolutionKernel(),
                        TunerSettings(n_train=1000, m_candidates=100))
    result = tuner.tune(np.random.default_rng(42))
    print(result.best_index, result.best_time_s)
"""

from repro.core import (
    BanditMetaTuner,
    ConfigEncoder,
    CusumDetector,
    DetectorSettings,
    MeasurementDB,
    MeasurementSet,
    Measurer,
    MLAutoTuner,
    OnlineReport,
    OnlineSettings,
    OnlineTuner,
    PerformanceModel,
    SearchSettings,
    SearchTuner,
    TunerSettings,
    TuningResult,
    coordinate_descent,
    exhaustive_search,
    random_search,
    run_search,
)
from repro.obs import NULL_TRACER, Tracer, render_summary
from repro.runtime import BuildError, Context, Device, LaunchError, Platform

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Context",
    "Device",
    "Platform",
    "BuildError",
    "LaunchError",
    "MLAutoTuner",
    "TunerSettings",
    "TuningResult",
    "PerformanceModel",
    "CusumDetector",
    "DetectorSettings",
    "OnlineTuner",
    "OnlineSettings",
    "OnlineReport",
    "ConfigEncoder",
    "Measurer",
    "MeasurementSet",
    "MeasurementDB",
    "exhaustive_search",
    "random_search",
    "coordinate_descent",
    "SearchSettings",
    "SearchTuner",
    "BanditMetaTuner",
    "run_search",
    "Tracer",
    "NULL_TRACER",
    "render_summary",
]
