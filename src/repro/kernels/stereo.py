"""``stereo``: disparity between two 1024x1024 stereo images (Table 1).

Block-matching stereo: for every pixel of the left image, search a range of
candidate disparities; for each candidate, compute the sum of absolute
differences (SAD) over a support window against the shifted right image;
output the disparity minimizing the SAD.  Eleven tuning parameters
(Table 2): work-group shape, pixels per thread, image/local switches for
*each* input image, and three driver-pragma unroll factors — the disparity
loop {1,2,4,8} and the two inner difference loops {1,2,4}.  Space size
8^4 * 2^4 * 4 * 3 * 3 = 2,359,296 ("2359K") — too large to exhaust, which
is why the paper evaluates it against the best of 50K random samples
(Fig. 14).

Local-memory tiles are big here: the right-image tile needs the window halo
*plus* the whole disparity range of extra columns.  On the GPUs this
invalidates a large slice of the space (and is why the paper's stereo
auto-tuner often predicted only invalid configurations on the GPUs, §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.kernels.base import KernelSpec, padded_threads, resolve_unroll
from repro.params import ParameterSpace, boolean, choice, pow2
from repro.simulator.device import DeviceSpec
from repro.simulator.workload import WorkloadProfile


@dataclass(frozen=True)
class StereoProblem:
    """Problem size: square image edge, disparity range, SAD window edge."""

    image: int = 1024
    disparities: int = 32
    window: int = 8

    def __post_init__(self) -> None:
        if self.image < self.window or self.disparities < 1 or self.window < 1:
            raise ValueError("degenerate stereo problem")


class StereoKernel(KernelSpec):
    """The paper's stereo-vision benchmark."""

    name = "stereo"

    def __init__(self, problem: StereoProblem | None = None):
        super().__init__(problem)

    @classmethod
    def paper_problem(cls) -> StereoProblem:
        return StereoProblem(1024, 32, 8)

    def _build_space(self) -> ParameterSpace:
        return ParameterSpace(
            [
                pow2("wg_x", 1, 128, "Work-group size in x dimension"),
                pow2("wg_y", 1, 128, "Work-group size in y dimension"),
                pow2("ppt_x", 1, 128, "Output pixels per thread in x dimension"),
                pow2("ppt_y", 1, 128, "Output pixels per thread in y dimension"),
                boolean("img_left", "Use image memory for left image"),
                boolean("img_right", "Use image memory for right image"),
                boolean("local_left", "Use local memory for left image"),
                boolean("local_right", "Use local memory for right image"),
                choice("unroll_disp", (1, 2, 4, 8), "Unroll factor for disparity loop"),
                choice(
                    "unroll_diff_x",
                    (1, 2, 4),
                    "Unroll factor for difference loop in x direction",
                ),
                choice(
                    "unroll_diff_y",
                    (1, 2, 4),
                    "Unroll factor for difference loop in y direction",
                ),
            ]
        )

    def unroll_of(self, config: Mapping) -> int:
        # Combined code-growth proxy for the compile-time model.
        return int(
            config["unroll_disp"] * config["unroll_diff_x"] * config["unroll_diff_y"]
        )

    # -- timing model ---------------------------------------------------------

    def workload(self, config: Mapping, device: DeviceSpec) -> WorkloadProfile:
        p = self.problem
        wx, wy = config["wg_x"], config["wg_y"]
        px, py = config["ppt_x"], config["ppt_y"]
        img_left = bool(config["img_left"])
        img_right = bool(config["img_right"])
        local_left = bool(config["local_left"])
        local_right = bool(config["local_right"])

        gx = padded_threads(p.image, px, wx)
        gy = padded_threads(p.image, py, wy)
        threads = gx * gy
        useful = min(1.0, (p.image * p.image) / (threads * px * py))
        pixels = px * py * useful

        D, w = p.disparities, p.window
        taps = w * w
        key = (self.name, self.config_tuple(config))
        fd = resolve_unroll(
            int(config["unroll_disp"]), device, uses_driver_pragma=True, key=(*key, "d")
        )
        fx = resolve_unroll(
            int(config["unroll_diff_x"]), device, uses_driver_pragma=True, key=(*key, "x")
        )
        fy = resolve_unroll(
            int(config["unroll_diff_y"]), device, uses_driver_pragma=True, key=(*key, "y")
        )
        # Loop-control iterations per pixel: nested disparity / row / column.
        iters_per_pixel = (D / fd) * (1.0 + (w / fy) * (1.0 + w / fx))
        loop_iters = pixels * iters_per_pixel + 2.0

        # Per tap per disparity: two loads' address math, abs-diff, add; plus
        # the per-disparity min/argmin update.
        flops = pixels * D * (taps * 3.0 + 4.0) + 6.0

        regs = (
            16
            + 2 * fd
            + fx * fy
            + min(px * py, 32) * 2
        )

        comparisons = pixels * D * taps  # left/right read pairs
        global_reads = image_reads = local_reads = local_writes = 0.0
        local_bytes = 0

        tile_w = wx * px + (w - 1)
        tile_h = wy * py + (w - 1)

        def tile_cost(width):
            """Bytes of scratchpad and per-thread load share of one tile."""
            elems = width * tile_h
            return elems * 4, elems / (wx * wy)

        # Left image: one read per comparison.
        if local_left:
            add_bytes, share = tile_cost(tile_w)
            local_bytes += add_bytes
            if img_left:
                image_reads += share
            else:
                global_reads += share
            local_writes += share
            local_reads += comparisons
        elif img_left:
            image_reads += comparisons
        else:
            global_reads += comparisons

        # Right image: the tile additionally spans the disparity range.
        if local_right:
            add_bytes, share = tile_cost(tile_w + D)
            local_bytes += add_bytes
            if img_right:
                image_reads += share
            else:
                global_reads += share
            local_writes += share
            local_reads += comparisons
        elif img_right:
            image_reads += comparisons
        else:
            global_reads += comparisons

        # -- access-pattern quality ------------------------------------------
        any_local = local_left or local_right
        if any_local:
            coal = 0.9 if device.is_gpu else 0.82
        elif device.is_gpu:
            # The window sweep is row-major and adjacent threads overlap
            # heavily; blocking by ppt_x strides it.
            coal = max(0.15, 0.9 / px)
        else:
            coal = 0.85 if px >= 2 else 0.6

        footprint = 3.0 * p.image * p.image * 4  # left + right + disparity map

        return WorkloadProfile(
            global_size=(gx, gy),
            workgroup=(wx, wy),
            flops_per_thread=flops,
            global_reads=global_reads,
            global_writes=pixels,
            image_reads=image_reads,
            local_reads=local_reads,
            local_writes=local_writes,
            constant_reads=0.0,
            local_mem_per_wg_bytes=local_bytes,
            registers_per_thread=int(regs),
            coalesced_fraction=coal,
            spatial_locality=0.8,
            footprint_bytes=footprint,
            loop_iterations_per_thread=loop_iters,
            uses_driver_unroll=True,
            unroll_factor=self.unroll_of(config),
            barriers_per_workgroup=2.0 * (int(local_left) + int(local_right)),
            wg_footprint_bytes=(2 * tile_w + D) * tile_h * 4.0,
        )

    # -- functional implementation -------------------------------------------

    def make_inputs(self, rng: np.random.Generator) -> dict:
        p = self.problem
        right = rng.integers(0, 256, size=(p.image, p.image), dtype=np.int64)
        # Build the left image as the right image shifted by a spatially
        # varying true disparity, so the benchmark output is meaningful.
        shift = rng.integers(0, p.disparities, size=(p.image,))
        left = np.empty_like(right)
        for row in range(p.image):
            d = int(shift[row])
            left[row] = np.roll(right[row], d)
        return {"left": left, "right": right}

    @staticmethod
    def _sad_map(left: np.ndarray, right: np.ndarray, d: int, w: int) -> np.ndarray:
        """SAD of the w x w window at every pixel for one disparity ``d``.

        Window anchored at the pixel (extending down-right); out-of-range
        columns of the shifted right image clamp to the edge, mirroring
        CLK_ADDRESS_CLAMP_TO_EDGE.  Integer arithmetic -> every evaluation
        order gives identical results.
        """
        n = left.shape[0]
        cols = np.clip(np.arange(n) - d, 0, n - 1)
        shifted = right[:, cols]
        diff = np.abs(left - shifted)
        # Box sum via padded cumsum (exact in int64).
        c = np.cumsum(np.cumsum(diff, axis=0), axis=1)
        c = np.pad(c, ((1, 0), (1, 0)))
        y = np.arange(n - w + 1)
        x = np.arange(n - w + 1)
        total = (
            c[np.ix_(y + w, x + w)]
            - c[np.ix_(y, x + w)]
            - c[np.ix_(y + w, x)]
            + c[np.ix_(y, x)]
        )
        # Pixels whose window would leave the image keep the border SAD.
        out = np.empty_like(diff)
        out[: n - w + 1, : n - w + 1] = total
        out[n - w + 1 :, :] = out[n - w, :][None, :]
        out[:, n - w + 1 :] = out[:, n - w][:, None]
        return out

    def reference(self, inputs: dict) -> np.ndarray:
        """Winner-takes-all disparity map (lowest disparity wins ties)."""
        p = self.problem
        best_sad = None
        best_d = None
        for d in range(p.disparities):
            sad = self._sad_map(inputs["left"], inputs["right"], d, p.window)
            if best_sad is None:
                best_sad = sad.copy()
                best_d = np.zeros_like(sad, dtype=np.int64)
            else:
                better = sad < best_sad
                best_sad[better] = sad[better]
                best_d[better] = d
        return best_d

    def run(self, config: Mapping, inputs: dict) -> np.ndarray:
        """Config path: block the image by work-group tiles and chunk the
        disparity loop by ``unroll_disp``.  Integer SADs make every loop
        structure exact, so the argmin (ties to the lowest d, as in the
        reference's strict ``<`` update) is identical."""
        p = self.problem
        out = np.empty((p.image, p.image), dtype=np.int64)
        block_w = config["wg_x"] * config["ppt_x"]
        block_h = config["wg_y"] * config["ppt_y"]
        fd = int(config["unroll_disp"])

        best_sad = np.full((p.image, p.image), np.iinfo(np.int64).max, dtype=np.int64)
        best_d = np.zeros((p.image, p.image), dtype=np.int64)
        d = 0
        while d < p.disparities:
            chunk = min(fd, p.disparities - d)
            for k in range(chunk):
                sad = self._sad_map(inputs["left"], inputs["right"], d + k, p.window)
                better = sad < best_sad
                best_sad[better] = sad[better]
                best_d[better] = d + k
            d += chunk

        # The blocking only partitions which thread owns which pixel; copy
        # out tile by tile to exercise the same traversal the kernel uses.
        for y0 in range(0, p.image, block_h):
            y1 = min(y0 + block_h, p.image)
            for x0 in range(0, p.image, block_w):
                x1 = min(x0 + block_w, p.image)
                out[y0:y1, x0:x1] = best_d[y0:y1, x0:x1]
        return out
