"""``raycasting``: volume visualization, 512^3 volume -> 1024^2 image (Table 1).

Each work-item marches one or more rays front-to-back through the volume,
sampling a scalar field, mapping samples through a 256-entry RGBA transfer
function, and alpha-compositing.  Ten tuning parameters (Table 2): work-group
shape, rays per thread, four memory-space switches (image memory for the
volume, image/local/constant memory for the transfer function), interleaved
reads, and a *manual* (macro-based) unroll factor {1,2,4,8,16} for the ray
traversal loop.  Space size 8^4 * 2^5 * 5 = 655,360 ("655K").

The manual unrolling is the paper's explanation for why raycasting is the
best-predicted benchmark on the AMD GPU (§7): it does not depend on the
driver honouring a pragma, so its effect is consistent —
``resolve_unroll`` is called with ``uses_driver_pragma=False``.

Memory-space interactions follow the paper's §5.1 combination rule: if both
image and local memory are selected for the transfer function, it is loaded
*via* image memory and then cached in local memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.kernels.base import KernelSpec, padded_threads, resolve_unroll
from repro.params import ParameterSpace, boolean, choice, pow2
from repro.simulator.device import DeviceSpec
from repro.simulator.workload import WorkloadProfile


@dataclass(frozen=True)
class RaycastingProblem:
    """Problem size: cubic volume edge, square output edge, TF resolution."""

    volume: int = 512
    image: int = 1024
    tf_size: int = 256

    def __post_init__(self) -> None:
        if self.volume < 2 or self.image < 1 or self.tf_size < 2:
            raise ValueError("degenerate raycasting problem")

    @property
    def steps(self) -> int:
        """Samples along one ray (orthographic march through the volume)."""
        return self.volume


class RaycastingKernel(KernelSpec):
    """The paper's volume-visualization benchmark."""

    name = "raycasting"

    def __init__(self, problem: RaycastingProblem | None = None):
        super().__init__(problem)

    @classmethod
    def paper_problem(cls) -> RaycastingProblem:
        return RaycastingProblem(512, 1024, 256)

    def _build_space(self) -> ParameterSpace:
        return ParameterSpace(
            [
                pow2("wg_x", 1, 128, "Work-group size in x dimension"),
                pow2("wg_y", 1, 128, "Work-group size in y dimension"),
                pow2("ppt_x", 1, 128, "Output pixels per thread in x dimension"),
                pow2("ppt_y", 1, 128, "Output pixels per thread in y dimension"),
                boolean("img_data", "Use image memory for data"),
                boolean("img_tf", "Use image memory for transfer function"),
                boolean("local_tf", "Use local memory for transfer function"),
                boolean("const_tf", "Use constant memory for transfer function"),
                boolean("interleaved", "Interleaved memory reads"),
                choice(
                    "unroll",
                    (1, 2, 4, 8, 16),
                    "Unroll factor for ray traversal loop",
                ),
            ]
        )

    def unroll_of(self, config: Mapping) -> int:
        return int(config["unroll"])

    # -- timing model ---------------------------------------------------------

    def workload(self, config: Mapping, device: DeviceSpec) -> WorkloadProfile:
        p = self.problem
        wx, wy = config["wg_x"], config["wg_y"]
        px, py = config["ppt_x"], config["ppt_y"]
        img_data = bool(config["img_data"])
        img_tf = bool(config["img_tf"])
        local_tf = bool(config["local_tf"])
        const_tf = bool(config["const_tf"])
        interleaved = bool(config["interleaved"])

        gx = padded_threads(p.image, px, wx)
        gy = padded_threads(p.image, py, wy)
        threads = gx * gy
        useful = min(1.0, (p.image * p.image) / (threads * px * py))
        rays = px * py * useful  # average rays per launched thread

        steps = p.steps
        # Manual macro unrolling: always effective, on every driver.
        f = resolve_unroll(
            self.unroll_of(config),
            device,
            uses_driver_pragma=False,
            key=(self.name, self.config_tuple(config)),
        )
        loop_iters = rays * (steps / f) + 2.0

        # Per step: trilinear-ish sample address math, TF index computation,
        # front-to-back compositing (4 channels).
        flops = rays * steps * 16.0 + 8.0

        # Registers: ray state + compositing accumulators + unroll scratch.
        regs = 18 + 3 * f + min(px * py, 32) * 2

        global_reads = image_reads = local_reads = local_writes = 0.0
        constant_reads = 0.0
        local_bytes = 0

        # Volume samples: one fetch per step per ray.
        samples = rays * steps
        if img_data:
            image_reads += samples
        else:
            global_reads += samples

        # Transfer-function lookups: one per step per ray.
        tf_lookups = rays * steps
        tf_bytes = p.tf_size * 4 * 4  # RGBA float4 entries
        if local_tf:
            # Cooperative copy at kernel start (via image if also selected),
            # then all lookups hit the scratchpad.
            local_bytes += tf_bytes
            share = (p.tf_size * 4) / (wx * wy)
            if img_tf:
                image_reads += share
            else:
                global_reads += share
            local_writes += share
            local_reads += tf_lookups
        elif const_tf:
            constant_reads += tf_lookups
        elif img_tf:
            image_reads += tf_lookups
        else:
            global_reads += tf_lookups

        # -- access-pattern quality ------------------------------------------
        # Along a ray, consecutive samples are a full slice apart in a
        # linear volume (z-major): terrible per-thread locality.  Across the
        # warp, interleaved rays read neighbouring voxels of the same slice:
        # that is where coalescing comes from.
        if device.is_gpu:
            coal = 0.9 if interleaved else max(0.12, 1.0 / px)
        else:
            coal = 0.8 if (not interleaved or wx == 1) else max(0.2, 1.0 / wx)

        # Texture path thrives on the 3D locality of neighbouring rays; the
        # linear-global path sees only slice-level reuse.
        locality = 0.75 if img_data else 0.38

        footprint = float(p.volume) ** 3 * 4 + p.image * p.image * 16 + tf_bytes

        return WorkloadProfile(
            global_size=(gx, gy),
            workgroup=(wx, wy),
            flops_per_thread=flops,
            global_reads=global_reads,
            global_writes=rays * 4.0,  # RGBA store per pixel
            image_reads=image_reads,
            local_reads=local_reads,
            local_writes=local_writes,
            constant_reads=constant_reads,
            local_mem_per_wg_bytes=local_bytes,
            registers_per_thread=int(regs),
            coalesced_fraction=coal,
            spatial_locality=locality,
            footprint_bytes=footprint,
            loop_iterations_per_thread=loop_iters,
            uses_driver_unroll=False,
            unroll_factor=f,
            barriers_per_workgroup=1.0 if local_tf else 0.0,
            wg_footprint_bytes=(wx * px) * (wy * py) * 4.0 * 2.0,
        )

    # -- functional implementation -------------------------------------------

    def make_inputs(self, rng: np.random.Generator) -> dict:
        p = self.problem
        return {
            "volume": rng.random((p.volume, p.volume, p.volume), dtype=np.float32),
            "tf": rng.random((p.tf_size, 4), dtype=np.float32),
        }

    def reference(self, inputs: dict) -> np.ndarray:
        """Front-to-back alpha compositing of every pixel's axis-aligned ray.

        The output image is sampled from the volume's (y, x) extent scaled
        to the image resolution using nearest-neighbour coordinates.
        """
        p = self.problem
        volume = inputs["volume"]
        tf = inputs["tf"].astype(np.float32)
        ys, xs = self._ray_coords()
        color = np.zeros((p.image, p.image, 3), dtype=np.float32)
        alpha = np.zeros((p.image, p.image), dtype=np.float32)
        for z in range(p.steps):
            self._composite_step(volume, tf, ys, xs, z, color, alpha)
        return np.concatenate([color, alpha[..., None]], axis=2)

    def _ray_coords(self):
        p = self.problem
        ys = (np.arange(p.image) * p.volume) // p.image
        xs = (np.arange(p.image) * p.volume) // p.image
        return ys, xs

    def _composite_step(self, volume, tf, ys, xs, z, color, alpha):
        """One march step for a (sub)image; mutates color/alpha in place."""
        p = self.problem
        sample = volume[z][np.ix_(ys, xs)]
        idx = np.minimum(
            (sample * p.tf_size).astype(np.int64), p.tf_size - 1
        )
        entry = tf[idx]  # (..., 4)
        a = entry[..., 3] * np.float32(0.05)  # opacity scale
        trans = (np.float32(1.0) - alpha) * a
        color += trans[..., None] * entry[..., :3]
        alpha += trans

    def run(self, config: Mapping, inputs: dict) -> np.ndarray:
        """Config path: tile the image into work-group blocks and chunk the
        traversal loop by the unroll factor.  Per-ray compositing order is
        unchanged, so the result matches the reference exactly."""
        p = self.problem
        volume = inputs["volume"]
        tf = inputs["tf"].astype(np.float32)
        ys, xs = self._ray_coords()
        out = np.empty((p.image, p.image, 4), dtype=np.float32)

        block_w = config["wg_x"] * config["ppt_x"]
        block_h = config["wg_y"] * config["ppt_y"]
        f = int(config["unroll"])

        for y0 in range(0, p.image, block_h):
            y1 = min(y0 + block_h, p.image)
            for x0 in range(0, p.image, block_w):
                x1 = min(x0 + block_w, p.image)
                color = np.zeros((y1 - y0, x1 - x0, 3), dtype=np.float32)
                alpha = np.zeros((y1 - y0, x1 - x0), dtype=np.float32)
                z = 0
                # Unrolled main loop: f steps per iteration...
                while z + f <= p.steps:
                    for k in range(f):
                        self._composite_step(
                            volume, tf, ys[y0:y1], xs[x0:x1], z + k, color, alpha
                        )
                    z += f
                # ...plus the remainder loop the macro expansion emits.
                while z < p.steps:
                    self._composite_step(
                        volume, tf, ys[y0:y1], xs[x0:x1], z, color, alpha
                    )
                    z += 1
                out[y0:y1, x0:x1, :3] = color
                out[y0:y1, x0:x1, 3] = alpha
        return out
