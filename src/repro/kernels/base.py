"""Common machinery for the parameterized benchmarks.

A :class:`KernelSpec` is what the runtime and the auto-tuner program
against: it owns the parameter space and can, for any configuration,
produce a workload profile for the simulator and execute a functionally
equivalent NumPy implementation.
"""

from __future__ import annotations

import abc
import math
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.params import Configuration, ParameterSpace
from repro.simulator.device import DeviceSpec
from repro.simulator.hashing import unit_uniform
from repro.simulator.workload import WorkloadBatch, WorkloadProfile


def resolve_unroll(
    requested: int,
    device: DeviceSpec,
    uses_driver_pragma: bool,
    key: tuple,
) -> int:
    """Unroll factor actually achieved on ``device``.

    Manual (macro) unrolling — raycasting in the paper — always takes
    effect.  Driver-pragma unrolling — convolution and stereo — is honoured
    with probability-like ``driver_unroll_reliability``, decided
    *deterministically* per (device, kernel, config) so the quirk is part of
    the true time.  The paper blames exactly this mechanism for the AMD
    accuracy gap (§7).
    """
    if requested < 1:
        raise ValueError("unroll factor must be >= 1")
    if requested == 1 or not uses_driver_pragma:
        return requested
    honoured = unit_uniform(device.name, "driver-unroll", *key)
    if honoured < device.driver_unroll_reliability:
        return requested
    return 1


def padded_threads(pixels: int, per_thread: int, wg: int) -> int:
    """Launched work-items along one axis.

    ``ceil(pixels / per_thread)`` threads are needed; OpenCL requires the
    global size to be a multiple of the work-group size, so the launch is
    padded up — the padding threads exit immediately but still occupy SIMD
    lanes and scheduler slots (this is why absurd shapes like 128 pixels per
    thread with 128-wide work-groups are *slow* rather than invalid).
    """
    needed = math.ceil(pixels / per_thread)
    return math.ceil(needed / wg) * wg


class KernelSpec(abc.ABC):
    """One parameterized benchmark.

    Subclasses define the paper's parameter space and the two views of a
    configuration: timing (``workload``) and semantics (``run``).

    Parameters
    ----------
    problem:
        Problem-size object (kernel-specific dataclass).  Defaults to the
        paper's sizes; tests pass small ones.  The *timing* model always
        reflects the problem the spec was built with.
    """

    #: Benchmark name as in Table 1.
    name: str = ""

    def __init__(self, problem=None):
        self.problem = problem if problem is not None else self.paper_problem()
        self._space = self._build_space()

    # -- to implement -------------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def paper_problem(cls):
        """The problem size used in the paper (Table 1)."""

    @abc.abstractmethod
    def _build_space(self) -> ParameterSpace:
        """Construct the Table 2 parameter space."""

    @abc.abstractmethod
    def workload(self, config: Mapping, device: DeviceSpec) -> WorkloadProfile:
        """Workload profile of ``config`` on ``device`` (for the simulator)."""

    @abc.abstractmethod
    def make_inputs(self, rng: np.random.Generator) -> dict:
        """Random input arrays for the functional implementation."""

    @abc.abstractmethod
    def reference(self, inputs: dict) -> np.ndarray:
        """Ground-truth output, computed the obvious way."""

    @abc.abstractmethod
    def run(self, config: Mapping, inputs: dict) -> np.ndarray:
        """Config-dependent functional implementation.

        Must return the same values as :meth:`reference` for every valid
        configuration — the candidates differ in *how*, not *what*.
        """

    # -- provided ------------------------------------------------------------

    @property
    def space(self) -> ParameterSpace:
        """The tuning-parameter space (Table 2)."""
        return self._space

    def config_tuple(self, config: Mapping) -> tuple:
        """Stable identity of a configuration for hashing/jitter."""
        if isinstance(config, Configuration):
            return config.as_tuple()
        return tuple(config[n] for n in self._space.names)

    def unroll_of(self, config: Mapping) -> int:
        """Requested unroll factor of a configuration (1 when the benchmark
        has no unroll parameter); used by the compile-time model."""
        return 1

    def config_tuples(self, indices: Sequence[int]) -> List[tuple]:
        """Config value-tuples of many flat indices (Python ints, so the
        jitter hashes keyed on them match the scalar path bit for bit)."""
        return self._space.tuples_of(indices)

    def workload_batch(
        self,
        indices: Sequence[int],
        device: DeviceSpec,
        config_tuples: Optional[Sequence[tuple]] = None,
    ) -> WorkloadBatch:
        """Workload profiles of many configurations as one column batch.

        The base implementation loops over :meth:`workload` and stacks the
        scalar profiles — correct for every kernel, fast for none.
        Benchmarks override this with a fully vectorized construction
        (convolution does); the override must produce bit-identical columns,
        which the batch-engine property tests enforce.  ``config_tuples``
        lets callers share the decoded tuples with the executor's jitter
        pass instead of decoding twice.
        """
        profiles = [self.workload(self._space[int(i)], device) for i in indices]
        return WorkloadBatch.from_profiles(profiles)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(space={self._space.size}, problem={self.problem})"
