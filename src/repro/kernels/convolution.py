"""``convolution``: 2048x2048 image, 5x5 box filter (Table 1).

The stencil benchmark.  Nine tuning parameters (Table 2): work-group shape,
output pixels per thread, and five boolean switches — image memory, local
memory, padding, interleaved reads, driver-pragma loop unrolling.  Space
size 8^4 * 2^5 = 131,072 ("131K"), small enough that the paper (and our
Fig. 11-13 harness) exhaustively measures it to know the global optimum.

Workload-model highlights:

* **local memory** turns 25 neighbourhood reads per pixel into one
  cooperative tile load (with a 2-pixel halo) plus 25 cheap local reads;
  the tile must fit the scratchpad or the build fails;
* **image memory** routes reads through the texture samplers — a win on
  GPUs, a disaster on the CPU's emulation path *unless* combined with local
  memory (one emulated fetch per tile element instead of 25 per pixel) —
  this is exactly the clustering the paper sees on the Intel i7 (Fig. 8);
* **interleaved reads** give coalesced access on GPUs; on the CPU the
  non-interleaved (blocked) layout is what vectorizes and prefetches well;
* **padding** removes per-tap boundary clamping arithmetic;
* **unrolling** eliminates inner-loop overhead but raises register demand,
  and only takes effect when the driver honours the pragma
  (:func:`repro.kernels.base.resolve_unroll`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.kernels.base import KernelSpec, padded_threads, resolve_unroll
from repro.params import ParameterSpace, boolean, pow2
from repro.simulator.device import DeviceSpec
from repro.simulator.hashing import HashPrefix
from repro.simulator.workload import WorkloadBatch, WorkloadProfile


@dataclass(frozen=True)
class ConvolutionProblem:
    """Problem size: image dimensions and (odd) filter width."""

    width: int = 2048
    height: int = 2048
    ksize: int = 5

    def __post_init__(self) -> None:
        if self.ksize % 2 != 1 or self.ksize < 3:
            raise ValueError("ksize must be odd and >= 3")
        if self.width < self.ksize or self.height < self.ksize:
            raise ValueError("image smaller than the filter")

    @property
    def halo(self) -> int:
        return self.ksize - 1

    @property
    def taps(self) -> int:
        return self.ksize * self.ksize


class ConvolutionKernel(KernelSpec):
    """The paper's stencil benchmark."""

    name = "convolution"

    def __init__(self, problem: ConvolutionProblem | None = None):
        super().__init__(problem)

    @classmethod
    def paper_problem(cls) -> ConvolutionProblem:
        return ConvolutionProblem(2048, 2048, 5)

    def _build_space(self) -> ParameterSpace:
        return ParameterSpace(
            [
                pow2("wg_x", 1, 128, "Work-group size in x dimension"),
                pow2("wg_y", 1, 128, "Work-group size in y dimension"),
                pow2("ppt_x", 1, 128, "Output pixels per thread in x dimension"),
                pow2("ppt_y", 1, 128, "Output pixels per thread in y dimension"),
                boolean("use_image", "Use image memory"),
                boolean("use_local", "Use local memory"),
                boolean("pad", "Add padding to image"),
                boolean("interleaved", "Interleaved memory reads"),
                boolean("unroll", "Unroll loops"),
            ]
        )

    def unroll_of(self, config: Mapping) -> int:
        # The boolean pragma requests full unrolling of the 5x5 tap loops.
        return self.problem.taps if config["unroll"] else 1

    # -- timing model ---------------------------------------------------------

    def workload(self, config: Mapping, device: DeviceSpec) -> WorkloadProfile:
        p = self.problem
        wx, wy = config["wg_x"], config["wg_y"]
        px, py = config["ppt_x"], config["ppt_y"]
        use_image = bool(config["use_image"])
        use_local = bool(config["use_local"])
        pad = bool(config["pad"])
        interleaved = bool(config["interleaved"])

        gx = padded_threads(p.width, px, wx)
        gy = padded_threads(p.height, py, wy)
        threads = gx * gy
        # Fraction of launched threads with real pixels to produce; padding
        # threads exit after the bounds check but still burn a few ops.
        useful = (p.width * p.height) / (threads * px * py)
        useful = min(1.0, useful)
        pixels = px * py * useful  # average output pixels per launched thread

        taps = p.taps
        effective_unroll = resolve_unroll(
            self.unroll_of(config),
            device,
            uses_driver_pragma=True,
            key=(self.name, self.config_tuple(config)),
        )
        # Remaining loop-control iterations per pixel after unrolling.
        iters_per_pixel = taps / effective_unroll
        loop_iters = pixels * iters_per_pixel + 2.0  # +outer block loop

        # Arithmetic: multiply-accumulate + addressing per tap, plus
        # clamp-to-edge bounds handling when the image is not padded.
        ops_per_tap = 2.6 if pad else 4.1
        flops = pixels * (taps * ops_per_tap + 6.0) + 4.0

        # Registers: accumulators for the per-thread block, unroll scratch.
        block = px * py
        regs = 12 + min(block, 64) * 2 + (10 if effective_unroll > 1 else 0)

        # -- memory traffic ---------------------------------------------------
        global_reads = image_reads = local_reads = local_writes = 0.0
        local_bytes = 0
        tile_w = wx * px + p.halo
        tile_h = wy * py + p.halo
        if use_local:
            local_bytes = tile_w * tile_h * 4
            tile_share = (tile_w * tile_h) / (wx * wy)  # loads per thread
            if use_image:
                image_reads = tile_share
            else:
                global_reads = tile_share
            local_writes = tile_share
            local_reads = pixels * taps
        else:
            if use_image:
                image_reads = pixels * taps
            else:
                global_reads = pixels * taps
        global_writes = pixels  # one output store per pixel

        # -- access-pattern quality ------------------------------------------
        if use_local:
            # Cooperative row-major tile loads are contiguous by construction.
            coal = 0.92 if device.is_gpu else 0.85
        elif device.is_gpu:
            # Interleaved: lane i reads column base+i -> coalesced.
            # Blocked: lane i starts px columns from lane i-1 -> strided.
            coal = 0.95 if interleaved else max(0.12, 1.0 / px)
        else:
            # CPU: the blocked layout is the vectorizable/prefetchable one.
            coal = 0.88 if (not interleaved or wx == 1) else max(0.2, 1.0 / wx)

        pad_growth = (p.width + p.halo) * (p.height + p.halo) / (p.width * p.height)
        in_bytes = p.width * p.height * 4 * (pad_growth if pad else 1.0)
        footprint = in_bytes + p.width * p.height * 4  # input + output

        return WorkloadProfile(
            global_size=(gx, gy),
            workgroup=(wx, wy),
            flops_per_thread=flops,
            global_reads=global_reads,
            global_writes=global_writes,
            image_reads=image_reads,
            local_reads=local_reads,
            local_writes=local_writes,
            constant_reads=0.0,
            local_mem_per_wg_bytes=local_bytes,
            registers_per_thread=int(regs),
            coalesced_fraction=coal,
            spatial_locality=0.85,
            footprint_bytes=footprint,
            loop_iterations_per_thread=loop_iters,
            uses_driver_unroll=True,
            unroll_factor=self.unroll_of(config),
            barriers_per_workgroup=2.0 if use_local else 0.0,
            wg_footprint_bytes=tile_w * tile_h * 4.0,
        )

    def workload_batch(
        self,
        indices: Sequence[int],
        device: DeviceSpec,
        config_tuples: Optional[Sequence[tuple]] = None,
    ) -> WorkloadBatch:
        """Vectorized :meth:`workload` over many flat indices.

        Mirrors the scalar computation operation for operation (same
        literals, same association order) so every column is bit-identical
        to stacking scalar profiles; the driver-unroll coin flips reuse the
        scalar hash via a pre-hashed key prefix.
        """
        p = self.problem
        vm = self.space.int_values_matrix(indices)
        wx, wy, px, py = vm[:, 0], vm[:, 1], vm[:, 2], vm[:, 3]
        use_image = vm[:, 4] == 1
        use_local = vm[:, 5] == 1
        pad = vm[:, 6] == 1
        interleaved = vm[:, 7] == 1
        unrolled = vm[:, 8] == 1

        # padded_threads, both axes.
        gx = (np.ceil(np.ceil(p.width / px) / wx) * wx).astype(np.int64)
        gy = (np.ceil(np.ceil(p.height / py) / wy) * wy).astype(np.int64)
        threads = gx * gy
        useful = np.minimum(1.0, (p.width * p.height) / (threads * px * py))
        pixels = px * py * useful

        taps = p.taps
        requested = np.where(unrolled, taps, 1)
        effective_unroll = requested.copy()
        pending = np.nonzero(requested > 1)[0]
        if pending.size:
            if config_tuples is None:
                config_tuples = self.space.tuples_of(indices)
            hp = HashPrefix(device.name, "driver-unroll", self.name)
            rel = device.driver_unroll_reliability
            for k in pending.tolist():
                if not hp.uniform(tuple(config_tuples[k])) < rel:
                    effective_unroll[k] = 1
        iters_per_pixel = taps / effective_unroll
        loop_iters = pixels * iters_per_pixel + 2.0

        ops_per_tap = np.where(pad, 2.6, 4.1)
        flops = pixels * (taps * ops_per_tap + 6.0) + 4.0

        block = px * py
        regs = 12 + np.minimum(block, 64) * 2 + np.where(effective_unroll > 1, 10, 0)

        tile_w = wx * px + p.halo
        tile_h = wy * py + p.halo
        local_bytes = np.where(use_local, tile_w * tile_h * 4, 0)
        tile_share = (tile_w * tile_h) / (wx * wy)
        pix_taps = pixels * taps
        cooperative = np.where(use_local, tile_share, 0.0)
        direct = np.where(use_local, 0.0, pix_taps)
        image_reads = np.where(use_image, cooperative + direct, 0.0)
        global_reads = np.where(use_image, 0.0, cooperative + direct)
        local_writes = cooperative
        local_reads = np.where(use_local, pix_taps, 0.0)
        global_writes = pixels

        if device.is_gpu:
            coal = np.where(
                use_local,
                0.92,
                np.where(interleaved, 0.95, np.maximum(0.12, 1.0 / px)),
            )
        else:
            coal = np.where(
                use_local,
                0.85,
                np.where(
                    ~interleaved | (wx == 1), 0.88, np.maximum(0.2, 1.0 / wx)
                ),
            )

        pad_growth = (p.width + p.halo) * (p.height + p.halo) / (p.width * p.height)
        in_bytes = p.width * p.height * 4 * np.where(pad, pad_growth, 1.0)
        footprint = in_bytes + p.width * p.height * 4

        n = vm.shape[0]
        return WorkloadBatch(
            gx=gx,
            gy=gy,
            wx=wx,
            wy=wy,
            flops_per_thread=flops,
            global_reads=global_reads,
            global_writes=global_writes.astype(np.float64),
            image_reads=image_reads,
            local_reads=local_reads,
            local_writes=local_writes,
            constant_reads=np.zeros(n),
            local_mem_per_wg_bytes=local_bytes,
            registers_per_thread=regs,
            coalesced_fraction=coal,
            spatial_locality=np.full(n, 0.85),
            footprint_bytes=footprint,
            loop_iterations_per_thread=loop_iters,
            unroll_factor=requested,
            barriers_per_workgroup=np.where(use_local, 2.0, 0.0),
            wg_footprint_bytes=tile_w * tile_h * 4.0,
            uses_driver_unroll=True,
        )

    # -- functional implementation -------------------------------------------

    def make_inputs(self, rng: np.random.Generator) -> dict:
        p = self.problem
        return {
            "image": rng.random((p.height, p.width), dtype=np.float32),
        }

    def reference(self, inputs: dict) -> np.ndarray:
        """Box filter with clamp-to-edge borders, accumulated in (dy, dx)
        tap order (the order every config path also uses)."""
        p = self.problem
        img = inputs["image"]
        r = p.ksize // 2
        padded = np.pad(img, r, mode="edge").astype(np.float32)
        acc = np.zeros_like(img, dtype=np.float32)
        for dy in range(p.ksize):
            for dx in range(p.ksize):
                acc = acc + padded[dy : dy + p.height, dx : dx + p.width]
        return acc * np.float32(1.0 / p.taps)

    def run(self, config: Mapping, inputs: dict) -> np.ndarray:
        """Config-dependent path: tile the output by work-group blocks and
        either pre-pad the image (``pad=1``) or clamp indices per tile
        (``pad=0``).  Interleaving and unrolling only permute *which thread*
        computes a pixel, not the per-pixel tap order, so results match the
        reference bit-for-bit."""
        p = self.problem
        img = inputs["image"]
        r = p.ksize // 2
        out = np.empty((p.height, p.width), dtype=np.float32)

        block_w = config["wg_x"] * config["ppt_x"]
        block_h = config["wg_y"] * config["ppt_y"]

        if config["pad"]:
            padded = np.pad(img, r, mode="edge").astype(np.float32)

            def tile_source(y0, y1, x0, x1, dy, dx):
                return padded[y0 + dy : y1 + dy, x0 + dx : x1 + dx]

        else:
            ys = np.arange(p.height)
            xs = np.arange(p.width)

            def tile_source(y0, y1, x0, x1, dy, dx):
                yy = np.clip(ys[y0:y1] + dy - r, 0, p.height - 1)
                xx = np.clip(xs[x0:x1] + dx - r, 0, p.width - 1)
                return img[np.ix_(yy, xx)]

        inv = np.float32(1.0 / p.taps)
        for y0 in range(0, p.height, block_h):
            y1 = min(y0 + block_h, p.height)
            for x0 in range(0, p.width, block_w):
                x1 = min(x0 + block_w, p.width)
                acc = np.zeros((y1 - y0, x1 - x0), dtype=np.float32)
                for dy in range(p.ksize):
                    for dx in range(p.ksize):
                        acc = acc + tile_source(y0, y1, x0, x1, dy, dx)
                out[y0:y1, x0:x1] = acc * inv
        return out
