"""The paper's three parameterized OpenCL benchmarks (Table 1 / Table 2).

Each benchmark is a :class:`~repro.kernels.base.KernelSpec` bundling:

* its tuning-parameter space (Table 2) — sizes 131,072 (convolution),
  655,360 (raycasting) and 2,359,296 (stereo), matching the paper's
  "131K, 655K and 2359K";
* a *workload model*: configuration + device → :class:`WorkloadProfile`
  for the performance simulator (how the tuning parameters change traffic,
  registers, locality, unrolling...);
* a *functional* NumPy implementation whose execution path honours the
  configuration (blocking, padding, loop chunking) so that the paper's
  "functionally equivalent candidates" claim is testable: every valid
  configuration must produce the same output as the reference.
"""

from repro.kernels.base import KernelSpec, resolve_unroll
from repro.kernels.convolution import ConvolutionKernel
from repro.kernels.raycasting import RaycastingKernel
from repro.kernels.stereo import StereoKernel

#: Benchmark registry keyed by paper name.
BENCHMARKS = {
    "convolution": ConvolutionKernel,
    "raycasting": RaycastingKernel,
    "stereo": StereoKernel,
}


def get_benchmark(name: str, **kwargs) -> KernelSpec:
    """Instantiate a benchmark by its paper name."""
    try:
        cls = BENCHMARKS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}") from None
    return cls(**kwargs)


__all__ = [
    "KernelSpec",
    "resolve_unroll",
    "ConvolutionKernel",
    "RaycastingKernel",
    "StereoKernel",
    "BENCHMARKS",
    "get_benchmark",
]
