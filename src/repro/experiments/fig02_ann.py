"""Figure 2: the ANN topology (illustrative in the paper).

Regenerates the companion facts: the paper's network shape (single hidden
layer, 30 sigmoid neurons, linear output), its parameter count for each
benchmark's feature width, and a worked forward pass of a single neuron —
the weighted sum + activation of the figure's lower panel.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.encoding import ConfigEncoder
from repro.experiments.reporting import header, kv_block
from repro.kernels import BENCHMARKS, get_benchmark
from repro.ml import MLPRegressor, Sigmoid


def run() -> Dict:
    info = {}
    for name in BENCHMARKS:
        spec = get_benchmark(name)
        enc = ConfigEncoder(spec.space)
        m = MLPRegressor(hidden=(30,), activation="sigmoid", epochs=1, seed=0)
        X = np.zeros((2, enc.n_features))
        m.fit(X, np.zeros(2))
        info[name] = {
            "features": enc.n_features,
            "feature_names": list(enc.feature_names),
            "parameters": m.n_parameters,
            "topology": m.describe(),
        }
    # Single-neuron worked example (Fig. 2, lower panel).
    w = np.array([0.5, -1.0, 0.25])
    x = np.array([1.0, 0.5, 2.0])
    z = float(w @ x)
    info["neuron_example"] = {"weights": w, "inputs": x, "z": z,
                             "y": float(Sigmoid.value(np.array([z]))[0])}
    return info


def format_text(results: Dict) -> str:
    lines = [header("Figure 2 - the paper's network, instantiated per benchmark")]
    for name in BENCHMARKS:
        r = results[name]
        lines.append("")
        lines.append(
            kv_block(
                {
                    "benchmark": name,
                    "input features": r["features"],
                    "topology": r["topology"],
                    "trainable parameters": r["parameters"],
                    "features": ", ".join(r["feature_names"]),
                }
            )
        )
    ex = results["neuron_example"]
    lines.append("")
    lines.append(
        "single neuron: y = sigmoid(w.x) = "
        f"sigmoid({ex['z']:.3f}) = {ex['y']:.4f}"
    )
    return "\n".join(lines)


def main() -> None:
    print(format_text(run()))


if __name__ == "__main__":
    main()
