"""Figures 4-6: mean prediction error vs. number of training samples.

For each (benchmark, device), measure a pool of random configurations,
train the bagged-ANN model on increasing prefixes, and evaluate the mean
relative error on a disjoint held-out set of valid configurations — exactly
the paper's protocol ("we compared the predictions against actual execution
times for valid parameter configurations not used during training",
averaged over several retrained networks).

Paper's anchors at 4000 training configurations:
  Intel i7     6.1% - 8.3%
  Nvidia K40  12.5% - 14.7%
  AMD 7970    12.6% - 21.2%  (raycasting clearly best)
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.measure import Measurer
from repro.core.model import PerformanceModel
from repro.experiments.ascii_plot import line_plot
from repro.experiments.presets import get_preset
from repro.experiments.reporting import header, pct, table
from repro.kernels import BENCHMARKS, get_benchmark
from repro.runtime import Context
from repro.simulator.devices import DEVICES, MAIN_DEVICES

#: Paper error bands at N=4000 per device (min across benchmarks, max).
PAPER_ERROR_AT_4000 = {
    "intel": (0.061, 0.083),
    "nvidia": (0.125, 0.147),
    "amd": (0.126, 0.212),
}


def error_curve(
    benchmark: str,
    device_key: str,
    training_sizes: Sequence[int],
    holdout: int,
    repeats: int = 1,
    seed: int = 0,
    faults=None,
) -> Dict:
    """Mean relative error at each training size for one (benchmark, device).

    The measurement pool is sampled once; each repeat reshuffles which
    samples form each training prefix (the paper: "we built several neural
    networks using different configurations for each training size and
    report the mean").

    ``faults`` (a profile spec/instance, as ``Context`` accepts) runs the
    measurement pool through the resilient pipeline — the error curve of
    a flaky rig instead of a perfect one.  None is bit-identical to the
    fault-free path.
    """
    spec = get_benchmark(benchmark)
    device = DEVICES[device_key]
    max_n = max(training_sizes)
    rng = np.random.default_rng(seed)

    ctx = Context(device, seed=seed, faults=faults)
    measurer = Measurer(ctx, spec)
    # Oversample: invalid configurations are dropped, and the holdout must
    # stay disjoint from every training prefix.
    want = max_n + holdout
    pool = measurer.sample_and_measure(int(want * 1.15) + 50, rng)
    if pool.n_valid < max_n + holdout:
        extra = measurer.sample_and_measure(want, rng)
        pool = pool.merged_with(extra)
    idx, times = pool.indices, pool.times_s

    hold_idx, hold_t = idx[-holdout:], times[-holdout:]
    train_idx, train_t = idx[:-holdout], times[:-holdout]

    errors = {n: [] for n in training_sizes}
    for r in range(repeats):
        order = np.random.default_rng(seed + 1000 + r).permutation(train_idx.shape[0])
        for n in training_sizes:
            take = order[: min(n, train_idx.shape[0])]
            model = PerformanceModel(spec.space, seed=seed + r)
            model.fit(train_idx[take], train_t[take])
            errors[n].append(model.relative_error(hold_idx, hold_t))
    return {
        "benchmark": benchmark,
        "device": device_key,
        "sizes": tuple(training_sizes),
        "errors": {n: float(np.mean(v)) for n, v in errors.items()},
        "invalid_fraction": pool.invalid_fraction,
    }


def run(
    preset=None,
    devices=MAIN_DEVICES,
    benchmarks=tuple(BENCHMARKS),
    seed: int = 0,
    faults=None,
) -> Dict:
    p = get_preset(preset)
    curves = {}
    for device in devices:
        for benchmark in benchmarks:
            curves[(device, benchmark)] = error_curve(
                benchmark,
                device,
                p.training_sizes,
                p.holdout,
                repeats=p.repeats,
                seed=seed,
                faults=faults,
            )
    return {
        "preset": p.name,
        "sizes": p.training_sizes,
        "curves": curves,
        "devices": tuple(devices),
        "benchmarks": tuple(benchmarks),
    }


FIGURE_BY_DEVICE = {"intel": "Figure 4", "nvidia": "Figure 5", "amd": "Figure 6"}


def format_text(results: Dict) -> str:
    lines = []
    sizes = results["sizes"]
    for device in results["devices"]:
        fig = FIGURE_BY_DEVICE.get(device, f"model error on {device}")
        lines.append(
            header(f"{fig} - mean prediction error vs training samples ({device})")
        )
        rows = []
        for n in sizes:
            row = [n]
            for benchmark in results["benchmarks"]:
                row.append(pct(results["curves"][(device, benchmark)]["errors"][n]))
            rows.append(row)
        lines.append(table(rows, headers=("N", *results["benchmarks"])))
        lines.append("")
        lines.append(
            line_plot(
                list(sizes),
                {
                    b: [results["curves"][(device, b)]["errors"][n] for n in sizes]
                    for b in results["benchmarks"]
                },
                logx=True,
                title=f"mean relative error vs N ({device}; log-x)",
            )
        )
        if device in PAPER_ERROR_AT_4000:
            lo, hi = PAPER_ERROR_AT_4000[device]
            lines.append(
                f"paper at N=4000: {pct(lo)} - {pct(hi)} across benchmarks"
            )
        lines.append("")
    return "\n".join(lines)


def main() -> None:
    print(format_text(run()))


if __name__ == "__main__":
    main()
