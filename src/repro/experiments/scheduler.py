"""Parallel experiment scheduler: ``run_all`` decomposed into units.

The paper's evaluation is a grid of independent computations — per-device
tuner grids (Figs. 11-13), per-(benchmark, device) large-space cells
(Fig. 14), per-device error curves (Figs. 4-7) — that the harness used to
run strictly serially inside each experiment's ``run()``.  This module
turns the grid inside out:

* :func:`build_plan` flattens the requested experiments into
  :class:`Unit` objects — picklable (kind, payload) pairs plus explicit
  dependencies.  Ground-truth warm-up (computing a device's full
  convolution table into the shared
  :class:`~repro.experiments.oracle_store.OracleStore`) is its own unit,
  a prerequisite of every unit that reads the table, so each table is
  computed exactly once per store lifetime no matter how many
  experiments need it.
* :func:`execute_plan` runs the units — inline (``jobs <= 1``) against
  one shared :class:`~repro.experiments.oracle_store.OracleProvider`, or
  on a :class:`~concurrent.futures.ProcessPoolExecutor` using the
  campaign-grid worker pattern: a module-level worker function, per-worker
  JSONL traces merged back into the parent tracer tagged with the unit id,
  and store hit/miss counters summed across workers.
* :func:`merge_results` reassembles per-unit results into exactly the
  dict each experiment's ``run()`` returns.  Every unit seeds its own
  generators from the explicit (seed, unit) recipe the experiments already
  use, so the merged output — and hence the rendered text — is
  bit-identical between serial and parallel execution by construction.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments import (
    fig01_motivation,
    fig04_06_model_error,
    fig07_nvidia_generations,
    fig08_10_scatter,
    fig11_13_autotuner,
    fig14_large_spaces,
    sec7_discussion,
)
from repro.experiments.oracle_store import OracleProvider, OracleStore
from repro.experiments.presets import Preset
from repro.kernels import BENCHMARKS, get_benchmark
from repro.obs import NULL_TRACER, Tracer, run_manifest
from repro.simulator.devices import DEVICES, MAIN_DEVICES


@dataclass(frozen=True)
class Unit:
    """One independently runnable piece of an experiment.

    ``payload`` must be picklable (it crosses the process boundary);
    ``deps`` are uids that must complete first (only meaningful when the
    units share state through an oracle store or an in-process provider).
    """

    uid: str
    exp_id: str
    kind: str
    payload: tuple
    deps: Tuple[str, ...] = ()
    #: Fault-profile spec string applied to runtime-backed units (the ones
    #: that measure through ``Context``/``Measurer``).  Oracle-backed
    #: ground-truth units ignore it: the oracle is evaluation machinery and
    #: must stay noise- and fault-free.  None (default) = fault-free.
    faults: Optional[str] = None


@dataclass(frozen=True)
class UnitOutcome:
    uid: str
    result: object
    wall_s: float


# -- unit runners --------------------------------------------------------------
#
# Every runner is a module-level function of (payload, preset, seed,
# provider) so the worker process can resolve it from UNIT_RUNNERS by
# kind.  Runners must reproduce *exactly* the computation the experiment's
# own run() performs for that slice, including rng seeding.


def _run_warmup(payload, p: Preset, seed: int, provider: OracleProvider, faults=None):
    kernel, device_key = payload
    provider.oracle(get_benchmark(kernel), DEVICES[device_key]).full_table()
    return None


def _run_fig01(payload, p: Preset, seed: int, provider: OracleProvider, faults=None):
    (devices,) = payload
    return fig01_motivation.run(devices=devices, seed=seed, oracles=provider)


def _run_fig11_grid(payload, p: Preset, seed: int, provider: OracleProvider, faults=None):
    (device,) = payload
    return fig11_13_autotuner.tuner_grid_for_device(
        device,
        p.tuner_sizes,
        p.tuner_m,
        repeats=max(p.repeats, 2),
        seed=seed,
        oracles=provider,
    )


def _run_fig14_cell(payload, p: Preset, seed: int, provider: OracleProvider, faults=None):
    benchmark, device = payload
    return fig14_large_spaces.tune_large_space(
        benchmark,
        device,
        n_train=p.fig14_train,
        m_candidates=p.fig14_m,
        random_budget=p.fig14_random_budget,
        seed=seed,
        oracles=provider,
    )


def _run_fig0406_curve(payload, p: Preset, seed: int, provider: OracleProvider, faults=None):
    device, benchmark = payload
    return fig04_06_model_error.error_curve(
        benchmark, device, p.training_sizes, p.holdout, repeats=p.repeats,
        seed=seed, faults=faults,
    )


def _run_fig07_curve(payload, p: Preset, seed: int, provider: OracleProvider, faults=None):
    (device,) = payload
    return fig04_06_model_error.error_curve(
        "convolution", device, p.training_sizes, p.holdout,
        repeats=p.repeats, seed=seed, faults=faults,
    )


def _run_fig0810_scatter(payload, p: Preset, seed: int, provider: OracleProvider, faults=None):
    (device,) = payload
    return fig08_10_scatter.scatter_for_device(device, seed=seed, faults=faults)


def _run_sec7_sensitivity(payload, p: Preset, seed: int, provider: OracleProvider, faults=None):
    (device,) = payload
    return sec7_discussion.memory_sensitivity_for_device(
        device, seed=seed, n_base=p.sec7_n_base, oracles=provider
    )


def _run_sec7_amd(payload, p: Preset, seed: int, provider: OracleProvider, faults=None):
    (benchmark,) = payload
    return sec7_discussion.amd_unroll_error(
        benchmark, seed=seed, n_train=p.sec7_n_train, holdout=p.sec7_holdout
    )


def _run_sec7_invalid(payload, p: Preset, seed: int, provider: OracleProvider, faults=None):
    return sec7_discussion.invalid_fraction_by_device(
        seed=seed, n=p.sec7_invalid_n, oracles=provider
    )


def _run_experiment(payload, p: Preset, seed: int, provider: OracleProvider, faults=None):
    """Fallback for experiments that run as a single unit."""
    from repro.experiments.run_all import EXPERIMENTS

    (exp_id,) = payload
    _, run_fn, _ = EXPERIMENTS[exp_id]
    return run_fn(p, seed, faults)


UNIT_RUNNERS: Dict[str, Callable] = {
    "warmup": _run_warmup,
    "fig01": _run_fig01,
    "fig11-grid": _run_fig11_grid,
    "fig14-cell": _run_fig14_cell,
    "fig04-06-curve": _run_fig0406_curve,
    "fig07-curve": _run_fig07_curve,
    "fig08-10-scatter": _run_fig0810_scatter,
    "sec7-sensitivity": _run_sec7_sensitivity,
    "sec7-amd": _run_sec7_amd,
    "sec7-invalid": _run_sec7_invalid,
    "experiment": _run_experiment,
}


# -- planning ------------------------------------------------------------------


def build_plan(
    wanted: Sequence[str], p: Preset, seed: int, warmup: bool = True,
    faults: Optional[str] = None,
) -> List[Unit]:
    """Units (in a valid topological order) for the requested experiments.

    ``warmup`` inserts explicit full-table units as prerequisites of the
    table readers; pass False when units cannot share tables (parallel
    execution without a store), where a warm-up would just be discarded
    work in a throwaway process.

    ``faults`` (a profile spec string, e.g. ``"flaky-gpu"``) is stamped on
    every unit and applied by the runtime-backed runners; it used to be
    silently dropped here — ``--faults`` existed only on ``tune`` and
    ``campaign``, so scheduled experiment campaigns always ran fault-free
    no matter what the user configured.
    """
    from repro.experiments.run_all import EXPERIMENTS

    units: List[Unit] = []
    warmed: Dict[str, Unit] = {}

    def warm(kernel: str, device: str) -> Tuple[str, ...]:
        if not warmup:
            return ()
        uid = f"warmup/{kernel}@{device}"
        if uid not in warmed:
            # Warm-ups build ground truth: never fault-injected.
            warmed[uid] = Unit(uid, "warmup", "warmup", (kernel, device))
            units.append(warmed[uid])
        return (uid,)

    for exp_id in EXPERIMENTS:
        if exp_id not in wanted:
            continue
        if exp_id == "fig01":
            deps = sum((warm("convolution", d) for d in MAIN_DEVICES), ())
            units.append(
                Unit("fig01/matrix", exp_id, "fig01", (tuple(MAIN_DEVICES),), deps)
            )
        elif exp_id == "fig11-13":
            for d in MAIN_DEVICES:
                units.append(
                    Unit(f"fig11-13/{d}", exp_id, "fig11-grid", (d,),
                         warm("convolution", d))
                )
        elif exp_id == "fig14":
            for b in fig14_large_spaces.BENCHMARKS:
                for d in MAIN_DEVICES:
                    units.append(Unit(f"fig14/{b}@{d}", exp_id, "fig14-cell", (b, d)))
        elif exp_id == "fig04-06":
            for d in MAIN_DEVICES:
                for b in BENCHMARKS:
                    units.append(
                        Unit(f"fig04-06/{b}@{d}", exp_id, "fig04-06-curve", (d, b))
                    )
        elif exp_id == "fig07":
            for d in fig07_nvidia_generations.NVIDIA_GENERATIONS:
                units.append(Unit(f"fig07/{d}", exp_id, "fig07-curve", (d,)))
        elif exp_id == "fig08-10":
            for d in MAIN_DEVICES:
                units.append(Unit(f"fig08-10/{d}", exp_id, "fig08-10-scatter", (d,)))
        elif exp_id == "sec7":
            for d in sec7_discussion.SENSITIVITY_DEVICES:
                units.append(
                    Unit(f"sec7/sensitivity@{d}", exp_id, "sec7-sensitivity", (d,))
                )
            for b in sec7_discussion.UNROLL_BENCHMARKS:
                units.append(Unit(f"sec7/amd@{b}", exp_id, "sec7-amd", (b,)))
            units.append(Unit("sec7/invalid", exp_id, "sec7-invalid", ()))
        else:
            units.append(Unit(f"{exp_id}", exp_id, "experiment", (exp_id,)))
    if faults:
        units = [
            u if u.kind == "warmup" else replace(u, faults=faults)
            for u in units
        ]
    return units


# -- result merging ------------------------------------------------------------


def merge_results(
    exp_id: str, outcomes: Dict[str, UnitOutcome], p: Preset
) -> object:
    """Reassemble one experiment's ``run()`` dict from its unit results.

    Pure bookkeeping over the uid-keyed outcome map — independent of unit
    completion order, which is what makes parallel output bit-identical to
    serial.
    """
    def part(uid: str):
        return outcomes[uid].result

    if exp_id == "fig01":
        return part("fig01/matrix")
    if exp_id == "fig11-13":
        return {
            "preset": p.name,
            "devices": tuple(MAIN_DEVICES),
            "grids": {d: part(f"fig11-13/{d}") for d in MAIN_DEVICES},
        }
    if exp_id == "fig14":
        return {
            "preset": p.name,
            "devices": tuple(MAIN_DEVICES),
            "benchmarks": fig14_large_spaces.BENCHMARKS,
            "cells": {
                (b, d): part(f"fig14/{b}@{d}")
                for b in fig14_large_spaces.BENCHMARKS
                for d in MAIN_DEVICES
            },
        }
    if exp_id == "fig04-06":
        return {
            "preset": p.name,
            "sizes": p.training_sizes,
            "curves": {
                (d, b): part(f"fig04-06/{b}@{d}")
                for d in MAIN_DEVICES
                for b in BENCHMARKS
            },
            "devices": tuple(MAIN_DEVICES),
            "benchmarks": tuple(BENCHMARKS),
        }
    if exp_id == "fig07":
        return {
            "preset": p.name,
            "sizes": p.training_sizes,
            "curves": {
                d: part(f"fig07/{d}")
                for d in fig07_nvidia_generations.NVIDIA_GENERATIONS
            },
        }
    if exp_id == "fig08-10":
        return {
            "devices": tuple(MAIN_DEVICES),
            "scatter": {d: part(f"fig08-10/{d}") for d in MAIN_DEVICES},
        }
    if exp_id == "sec7":
        return {
            "amd_n_train": p.sec7_n_train,
            "sensitivity": {
                d: part(f"sec7/sensitivity@{d}")
                for d in sec7_discussion.SENSITIVITY_DEVICES
            },
            "amd_errors": {
                b: part(f"sec7/amd@{b}")
                for b in sec7_discussion.UNROLL_BENCHMARKS
            },
            "invalid": part("sec7/invalid"),
        }
    return part(exp_id)


# -- execution -----------------------------------------------------------------


def _record_store_stats(tracer, stats: Dict[str, int]) -> None:
    for key, value in stats.items():
        if value:
            tracer.count(f"oracle_store.{key}", value)


def _run_unit_worker(args) -> tuple:
    """Run one unit in a worker process; module-level so pools can pickle it.

    Builds its own provider (store-backed when a store root is given) and,
    when tracing, writes a private JSONL trace the parent merges afterwards
    (a file sink cannot be shared across processes).  Store counters land
    in the worker trace's closing counters record, which ``merge_file``
    sums into the parent tracer — so fleet-wide hit/miss totals survive the
    process boundary.
    """
    unit_tuple, preset, seed, store_root, trace_path = args
    uid, exp_id, kind, payload, faults = unit_tuple
    provider = OracleProvider(OracleStore(store_root) if store_root else None)
    if trace_path:
        tracer = Tracer(
            trace_path,
            manifest=run_manifest(unit=uid, experiment=exp_id, seed=seed),
        )
    else:
        tracer = NULL_TRACER
    t0 = time.perf_counter()
    try:
        with tracer.span(f"unit:{uid}", kind=kind, experiment=exp_id):
            result = UNIT_RUNNERS[kind](payload, preset, seed, provider, faults)
        provider.flush()
    finally:
        _record_store_stats(tracer, provider.stats_snapshot())
        tracer.close()
    return uid, result, time.perf_counter() - t0


def execute_plan(
    units: Sequence[Unit],
    p: Preset,
    seed: int,
    jobs: Optional[int] = None,
    store=None,
    tracer=NULL_TRACER,
    progress=None,
) -> Dict[str, UnitOutcome]:
    """Run every unit; returns uid -> :class:`UnitOutcome`.

    ``jobs=None`` or ``<= 1`` runs inline against one shared provider
    (deterministic debugging, zero multiprocessing overhead — the right
    choice on single-core machines).  ``jobs >= 2`` fans out over a
    process pool, submitting a unit as soon as its dependencies are done.
    Either way the outcome map, and anything merged from it, is identical.
    """
    if store is not None and not isinstance(store, OracleStore):
        store = OracleStore(store)
    known = {u.uid for u in units}
    for u in units:
        missing = [d for d in u.deps if d not in known]
        if missing:
            raise ValueError(f"unit {u.uid} depends on unknown units {missing}")

    def note(uid: str, wall: float) -> None:
        tracer.count("runall.units")
        if progress is not None:
            print(f"[run_all] unit {uid}: done in {wall:.1f}s",
                  file=progress, flush=True)

    outcomes: Dict[str, UnitOutcome] = {}
    if jobs is None or jobs <= 1:
        provider = OracleProvider(store)
        for u in units:  # build_plan order is topological
            t0 = time.perf_counter()
            with tracer.span(f"unit:{u.uid}", kind=u.kind, experiment=u.exp_id):
                result = UNIT_RUNNERS[u.kind](u.payload, p, seed, provider, u.faults)
            # Persist partial tables eagerly so a crash loses one unit of
            # work at most, and later processes start warm.
            provider.flush()
            wall = time.perf_counter() - t0
            outcomes[u.uid] = UnitOutcome(u.uid, result, wall)
            note(u.uid, wall)
        _record_store_stats(tracer, provider.stats_snapshot())
        return outcomes

    tmpdir = Path(tempfile.mkdtemp(prefix="repro-runall-"))
    trace_paths: Dict[str, str] = {}
    try:
        args_by_uid = {}
        for u in units:
            trace_path = (
                str(tmpdir / f"{u.uid.replace('/', '_')}.trace.jsonl")
                if tracer.enabled
                else None
            )
            if trace_path:
                trace_paths[u.uid] = trace_path
            args_by_uid[u.uid] = (
                (u.uid, u.exp_id, u.kind, u.payload, u.faults),
                p,
                seed,
                str(store.root) if store is not None else None,
                trace_path,
            )

        pending: List[Unit] = list(units)
        in_flight = {}
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            while pending or in_flight:
                for u in list(pending):
                    if all(d in outcomes for d in u.deps):
                        pending.remove(u)
                        fut = pool.submit(_run_unit_worker, args_by_uid[u.uid])
                        in_flight[fut] = u
                if not in_flight:
                    stuck = [u.uid for u in pending]
                    raise RuntimeError(f"unit plan deadlocked on {stuck}")
                ready, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for fut in ready:
                    in_flight.pop(fut)
                    uid, result, wall = fut.result()
                    outcomes[uid] = UnitOutcome(uid, result, wall)
                    note(uid, wall)

        # Merge worker traces in plan order (deterministic output).
        for u in units:
            path = trace_paths.get(u.uid)
            if path and Path(path).exists():
                tracer.merge_file(path, worker=u.uid)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    return outcomes
