"""Text rendering of experiment results (the paper's rows and series)."""

from __future__ import annotations

from typing import Mapping, Sequence


def rule(char: str = "-", width: int = 72) -> str:
    return char * width


def header(title: str) -> str:
    return f"{rule('=')}\n{title}\n{rule('=')}"


def table(rows: Sequence[Sequence], headers: Sequence[str]) -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[j]) for r in cells) for j in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def series(xs: Sequence, ys: Sequence, fmt: str = "{:.3f}") -> str:
    """One 'figure series' as aligned x/y rows."""
    return table(
        [(x, fmt.format(y) if y == y else "missing") for x, y in zip(xs, ys)],
        headers=("x", "y"),
    )


def pct(value: float) -> str:
    """Percentage with the paper's one-decimal style; NaN -> 'missing'."""
    if value != value:  # NaN
        return "missing"
    return f"{100.0 * value:.1f}%"


def ms(value_s: float) -> str:
    if value_s != value_s:
        return "missing"
    return f"{value_s * 1e3:.3f} ms"


def kv_block(pairs: Mapping) -> str:
    width = max(len(str(k)) for k in pairs)
    return "\n".join(f"{str(k).ljust(width)} : {v}" for k, v in pairs.items())


def engine_stats_block(stats, ledger=None) -> str:
    """Observability summary of a measurement engine run.

    ``stats`` is a :class:`repro.core.measure.EngineStats`; ``ledger``
    optionally a :class:`repro.simulator.noise.CostLedger` to append the
    simulated-cost split.
    """
    pairs = {
        "measurements": stats.n_requested,
        "simulated": stats.n_simulated,
        "cache hits": stats.n_cache_hits,
        "db hits": stats.n_db_hits,
        "invalid": stats.n_invalid,
        "cache hit rate": pct(stats.cache_hit_rate),
        "throughput": f"{stats.configs_per_sec:,.0f} configs/s",
    }
    # Fault/resilience counters only exist on runs with an armed injector;
    # the block is unchanged for fault-free runs.
    for label, n in (
        ("transient faults", stats.n_transient),
        ("timeouts", stats.n_timeouts),
        ("retries", stats.n_retries),
        ("quarantined", stats.n_quarantined),
        ("measurement waves", stats.n_waves),
    ):
        if n:
            pairs[label] = n
    if ledger is not None:
        cost = (
            f"{ledger.total_s:.1f} s "
            f"(compile {ledger.compile_s:.1f}, run {ledger.run_s:.1f}, "
            f"failed {ledger.failed_s:.1f}"
        )
        if ledger.retry_s:
            cost += f", retry backoff {ledger.retry_s:.1f}"
        pairs["simulated cost"] = cost + ")"
    return kv_block(pairs)
