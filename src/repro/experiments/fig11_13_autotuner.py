"""Figures 11-13: auto-tuner result quality vs. the global optimum.

For convolution (whose 131K space we exhaust for ground truth), sweep the
number of training configurations N and the stage-two size M, and report
the average slowdown of the tuner's pick relative to the global optimum.

Paper anchors: at N=2000, M=200 the tuner lands 3.5% / 8.7% / 5.8% above
the optimum on Intel / Nvidia / AMD after evaluating only 1.7% of the
space; at N=500, M=100 it is 13.0% / 29.7% / 29.3% off.  Cells are missing
when every stage-two candidate was invalid (§7's failure mode).

Since the M best-predicted configurations are nested (top-10 of a model is
a prefix of its top-200), each (device, N, repeat) trains one model and
evaluates all M values from prefixes — the same data the paper's grid
shows, at a fraction of the cost.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.model import PerformanceModel
from repro.core.sweep import SweepSettings
from repro.experiments.oracle_store import OracleProvider
from repro.experiments.presets import get_preset
from repro.experiments.reporting import header, table
from repro.kernels import ConvolutionKernel
from repro.simulator.devices import DEVICES, MAIN_DEVICES

FIGURE_BY_DEVICE = {"nvidia": "Figure 11", "intel": "Figure 12", "amd": "Figure 13"}

#: Paper anchors: device -> {(N, M): slowdown}.
PAPER_ANCHORS = {
    "intel": {(2000, 200): 1.035, (500, 100): 1.130},
    "nvidia": {(2000, 200): 1.087, (500, 100): 1.297},
    "amd": {(2000, 200): 1.058, (500, 100): 1.293},
}


def tuner_grid_for_device(
    device_key: str,
    sizes: Sequence[int],
    m_values: Sequence[int],
    repeats: int,
    seed: int,
    min_valid_train: int = 30,
    sweep: Optional[SweepSettings] = None,
    oracles: Optional[OracleProvider] = None,
) -> Dict:
    provider = oracles if oracles is not None else OracleProvider()
    spec = ConvolutionKernel()
    oracle = provider.oracle(spec, DEVICES[device_key])
    _, opt_time = oracle.global_optimum()

    m_values = sorted(m_values)
    m_max = m_values[-1]
    slowdowns = {(n, m): [] for n in sizes for m in m_values}
    failures = {(n, m): 0 for n in sizes for m in m_values}

    for r in range(repeats):
        rng = np.random.default_rng(seed + 7919 * r)
        for n in sizes:
            train_idx = spec.space.sample_indices(n, rng)
            measured = oracle.measure(train_idx, rng)
            ok = ~np.isnan(measured)
            if ok.sum() < max(min_valid_train, 11):
                for m in m_values:
                    failures[(n, m)] += 1
                continue
            model = PerformanceModel(spec.space, seed=seed + r, sweep=sweep)
            model.fit(train_idx[ok], measured[ok])
            # One fused whole-space sweep serves every M (tops are nested).
            top = model.top_m(m_max)
            stage2 = oracle.measure(top, rng)
            for m in m_values:
                prefix = stage2[:m]
                if np.all(np.isnan(prefix)):
                    failures[(n, m)] += 1
                    continue
                pick = top[int(np.nanargmin(prefix))]
                slowdowns[(n, m)].append(oracle.time_of(pick) / opt_time)

    mean = {
        key: (float(np.mean(v)) if v else float("nan"))
        for key, v in slowdowns.items()
    }
    return {
        "device": device_key,
        "sizes": tuple(sizes),
        "m_values": tuple(m_values),
        "slowdown": mean,
        "failures": failures,
        "optimum_s": opt_time,
    }


def run(
    preset=None,
    devices=MAIN_DEVICES,
    seed: int = 0,
    sweep: Optional[SweepSettings] = None,
    oracles: Optional[OracleProvider] = None,
) -> Dict:
    p = get_preset(preset)
    # Single tuning runs are high-variance (one random sample, one model);
    # always average at least two, as the paper averages several networks.
    repeats = max(p.repeats, 2)
    grids = {
        d: tuner_grid_for_device(
            d, p.tuner_sizes, p.tuner_m, repeats=repeats, seed=seed, sweep=sweep,
            oracles=oracles,
        )
        for d in devices
    }
    return {"preset": p.name, "devices": tuple(devices), "grids": grids}


def format_text(results: Dict) -> str:
    lines = []
    for d in results["devices"]:
        g = results["grids"][d]
        fig = FIGURE_BY_DEVICE.get(d, f"tuner grid on {d}")
        lines.append(
            header(f"{fig} - tuner slowdown vs global optimum ({d}, convolution)")
        )
        rows = []
        for n in g["sizes"]:
            row = [n]
            for m in g["m_values"]:
                s = g["slowdown"][(n, m)]
                row.append("missing" if s != s else f"{s:.3f}")
            rows.append(row)
        lines.append(table(rows, headers=("N \\ M", *g["m_values"])))
        anchors = PAPER_ANCHORS.get(d, {})
        for (n, m), paper_s in anchors.items():
            ours = g["slowdown"].get((n, m), float("nan"))
            ours_txt = "missing" if ours != ours else f"{ours:.3f}"
            lines.append(f"paper anchor N={n}, M={m}: {paper_s:.3f}; measured {ours_txt}")
        lines.append("")
    return "\n".join(lines)


def main() -> None:
    print(format_text(run()))


if __name__ == "__main__":
    main()
