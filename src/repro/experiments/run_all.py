"""Regenerate every table and figure; optionally write EXPERIMENTS.md.

Usage::

    python -m repro.experiments.run_all                 # print everything
    python -m repro.experiments.run_all --preset full   # the paper's grids
    python -m repro.experiments.run_all --out EXPERIMENTS.md
    python -m repro.experiments.run_all --only fig01,fig14
    python -m repro.experiments.run_all --jobs 4 --oracle-store .oracle

Execution goes through :mod:`repro.experiments.scheduler`: experiments
decompose into independent units (per-device grids, per-cell tuning runs,
ground-truth warm-ups), which run inline or on a process pool —
``--jobs``/``--serial`` — with bit-identical output either way.
``--oracle-store DIR`` persists ground-truth tables across runs, so the
expensive full tables are computed once ever (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from repro.experiments import (
    cost_accounting,
    sec7_discussion,
    fig01_motivation,
    fig02_ann,
    fig04_06_model_error,
    fig07_nvidia_generations,
    fig08_10_scatter,
    fig11_13_autotuner,
    fig14_large_spaces,
    tables,
)
from repro.experiments.presets import get_preset
from repro.obs import NULL_TRACER

#: Experiment registry: id -> (title, run(preset, seed, faults) -> results,
#: format).  ``faults`` only reaches the experiments that measure through
#: ``Context``/``Measurer``; oracle-backed ground truth stays fault-free.
EXPERIMENTS: Dict[str, Tuple[str, Callable, Callable]] = {
    "tables": (
        "Tables 1-2: benchmarks and parameter spaces",
        lambda preset, seed, faults=None: tables.run(),
        tables.format_text,
    ),
    "fig01": (
        "Figure 1: cross-device slowdowns",
        lambda preset, seed, faults=None: fig01_motivation.run(seed=seed),
        fig01_motivation.format_text,
    ),
    "fig02": (
        "Figure 2: network topology",
        lambda preset, seed, faults=None: fig02_ann.run(),
        fig02_ann.format_text,
    ),
    "fig04-06": (
        "Figures 4-6: model error vs training size",
        lambda preset, seed, faults=None: fig04_06_model_error.run(
            preset=preset, seed=seed, faults=faults
        ),
        fig04_06_model_error.format_text,
    ),
    "fig07": (
        "Figure 7: Nvidia generations",
        lambda preset, seed, faults=None: fig07_nvidia_generations.run(
            preset=preset, seed=seed, faults=faults
        ),
        fig07_nvidia_generations.format_text,
    ),
    "fig08-10": (
        "Figures 8-10: predicted vs actual scatter",
        lambda preset, seed, faults=None: fig08_10_scatter.run(
            seed=seed, faults=faults
        ),
        fig08_10_scatter.format_text,
    ),
    "fig11-13": (
        "Figures 11-13: tuner slowdown grid",
        lambda preset, seed, faults=None: fig11_13_autotuner.run(
            preset=preset, seed=seed
        ),
        fig11_13_autotuner.format_text,
    ),
    "fig14": (
        "Figure 14: large spaces",
        lambda preset, seed, faults=None: fig14_large_spaces.run(
            preset=preset, seed=seed
        ),
        fig14_large_spaces.format_text,
    ),
    "cost": (
        "S6: tuning-cost accounting",
        lambda preset, seed, faults=None: cost_accounting.run(
            seed=seed, faults=faults
        ),
        cost_accounting.format_text,
    ),
    "sec7": (
        "S7: discussion mechanisms quantified",
        lambda preset, seed, faults=None: sec7_discussion.run(
            preset=preset, seed=seed
        ),
        sec7_discussion.format_text,
    ),
}


def run_all(
    preset=None,
    seed: int = 0,
    only=None,
    stream="stdout",
    jobs: Optional[int] = None,
    oracle_store=None,
    tracer=None,
    faults=None,
) -> Dict[str, str]:
    """Run (a subset of) the experiments; returns id -> rendered text.

    ``stream="stdout"`` resolves to the *current* sys.stdout at call time
    (binding it as a default would capture whatever stdout was at import);
    pass None to suppress printing, or any file-like object.

    ``jobs`` >= 2 fans the scheduler's units out over a process pool; the
    rendered output is bit-identical to serial (``jobs=None``/``1``).
    ``oracle_store`` (a directory path or :class:`OracleStore`) persists
    ground-truth tables across runs and processes.  ``tracer`` receives
    per-unit spans, per-experiment wall gauges and oracle-store counters.
    ``faults`` (a fault-profile spec, e.g. ``"flaky-gpu"``) is stamped
    onto every runtime-backed unit so the measurement paths exercise the
    resilient pipeline; oracle-backed ground truth ignores it.
    """
    from repro.experiments.scheduler import (
        build_plan,
        execute_plan,
        merge_results,
    )

    if stream == "stdout":
        stream = sys.stdout
    if tracer is None:
        tracer = NULL_TRACER
    p = get_preset(preset)
    wanted = set(only) if only else set(EXPERIMENTS)
    unknown = wanted - set(EXPERIMENTS)
    if unknown:
        raise KeyError(f"unknown experiment ids {sorted(unknown)}; "
                       f"known: {sorted(EXPERIMENTS)}")

    serial = jobs is None or jobs <= 1
    # Warm-up units pay off only where a computed table can be shared:
    # always in serial mode (one provider), only via the store in parallel.
    units = build_plan(
        sorted(wanted, key=list(EXPERIMENTS).index),
        p,
        seed,
        warmup=serial or oracle_store is not None,
        faults=faults,
    )
    t0 = time.perf_counter()
    with tracer.span("run_all", preset=p.name, units=len(units), jobs=jobs or 1):
        outcomes = execute_plan(
            units, p, seed, jobs=jobs, store=oracle_store, tracer=tracer,
            progress=sys.stderr,
        )
    total_wall = time.perf_counter() - t0

    unit_walls: Dict[str, float] = {}
    for u in units:
        unit_walls[u.exp_id] = unit_walls.get(u.exp_id, 0.0) + outcomes[u.uid].wall_s

    rendered = {}
    for exp_id, (title, _run_fn, fmt_fn) in EXPERIMENTS.items():
        if exp_id not in wanted:
            continue
        text = fmt_fn(merge_results(exp_id, outcomes, p))
        rendered[exp_id] = text
        wall = unit_walls.get(exp_id, 0.0)
        tracer.gauge(f"runall.{exp_id}.wall_s", round(wall, 6))
        print(f"[run_all] {exp_id}: {title}: done in {wall:.1f}s",
              file=sys.stderr, flush=True)
        if stream is not None:
            print(text, file=stream)
            print("", file=stream)
    if "warmup" in unit_walls:
        tracer.gauge("runall.warmup.wall_s", round(unit_walls["warmup"], 6))
    tracer.gauge("runall.total_wall_s", round(total_wall, 6))
    return rendered


def write_experiments_md(path: str, rendered: Dict[str, str], preset_name: str) -> None:
    parts = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerated by `python -m repro.experiments.run_all --out EXPERIMENTS.md`"
        f" (preset: `{preset_name}`).",
        "",
        "Absolute times come from the device performance simulator (see"
        " DESIGN.md §2); the claims being reproduced are the *shapes*: who"
        " wins, by what factor, where the curves flatten, and which cells"
        " go missing.",
        "",
    ]
    for exp_id, text in rendered.items():
        parts.append(f"## {EXPERIMENTS[exp_id][0]}")
        parts.append("")
        parts.append("```text")
        parts.append(text)
        parts.append("```")
        parts.append("")
    with open(path, "w") as fh:
        fh.write("\n".join(parts))


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--preset", default=None, help="fast (default) or full")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--only", default=None, help="comma-separated experiment ids")
    ap.add_argument("--out", default=None, help="also write a markdown report")
    ap.add_argument("--jobs", type=int, default=None,
                    help="run units on this many worker processes (>= 2); "
                         "default runs inline")
    ap.add_argument("--serial", action="store_true",
                    help="force inline execution (overrides --jobs)")
    ap.add_argument("--oracle-store", default=None,
                    help="directory of persistent ground-truth tables "
                         "(default: $REPRO_ORACLE_STORE if set); tables are "
                         "computed once ever and memory-mapped afterwards")
    ap.add_argument("--faults", default=None,
                    help="fault-profile spec applied to runtime-backed "
                         "units (e.g. flaky-gpu or "
                         "'noisy-rig:p_outlier=0.2'); ground-truth oracle "
                         "units always stay fault-free")
    ap.add_argument("--trace", default=None,
                    help="write a JSONL trace of the run (per-unit spans, "
                         "per-experiment timings; see 'repro trace-summary')")
    args = ap.parse_args(argv)
    only = args.only.split(",") if args.only else None
    p = get_preset(args.preset)
    jobs = 1 if args.serial else args.jobs
    store = args.oracle_store or os.environ.get("REPRO_ORACLE_STORE") or None
    tracer = None
    if args.trace:
        from repro.obs import Tracer, run_manifest

        tracer = Tracer(
            args.trace,
            manifest=run_manifest(
                command="run_all", preset=p.name, seed=args.seed,
                only=only, jobs=jobs or 1, oracle_store=store,
                faults=args.faults,
            ),
        )
    try:
        rendered = run_all(
            preset=p, seed=args.seed, only=only, jobs=jobs,
            oracle_store=store, tracer=tracer, faults=args.faults,
        )
    finally:
        if tracer is not None:
            tracer.close()
    if args.trace:
        print(f"[run_all] trace written to {args.trace}", file=sys.stderr)
    if args.out:
        write_experiments_md(args.out, rendered, p.name)
        print(f"[run_all] wrote {args.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
