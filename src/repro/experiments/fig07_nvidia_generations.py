"""Figure 7: model accuracy for convolution across Nvidia GPU generations.

The paper trains the convolution model on a C2070 (Fermi), a K40 (Kepler)
and a GTX980 (Maxwell), and finds the K40 and C2070 similar with the
GTX980 slightly worse.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.fig04_06_model_error import error_curve
from repro.experiments.presets import get_preset
from repro.experiments.reporting import header, pct, table

NVIDIA_GENERATIONS = ("c2070", "nvidia", "gtx980")  # Fermi, Kepler, Maxwell
LABELS = {"c2070": "C2070", "nvidia": "K40", "gtx980": "GTX980"}


def run(preset=None, seed: int = 0, faults=None) -> Dict:
    p = get_preset(preset)
    curves = {
        dev: error_curve(
            "convolution", dev, p.training_sizes, p.holdout, repeats=p.repeats,
            seed=seed, faults=faults,
        )
        for dev in NVIDIA_GENERATIONS
    }
    return {"preset": p.name, "sizes": p.training_sizes, "curves": curves}


def format_text(results: Dict) -> str:
    lines = [
        header("Figure 7 - convolution prediction error across Nvidia generations")
    ]
    rows = []
    for n in results["sizes"]:
        rows.append(
            [n]
            + [pct(results["curves"][d]["errors"][n]) for d in NVIDIA_GENERATIONS]
        )
    lines.append(
        table(rows, headers=("N", *(LABELS[d] for d in NVIDIA_GENERATIONS)))
    )
    last = max(results["sizes"])
    k40 = results["curves"]["nvidia"]["errors"][last]
    c2070 = results["curves"]["c2070"]["errors"][last]
    gtx = results["curves"]["gtx980"]["errors"][last]
    lines.append(
        "paper: K40 ~ C2070, GTX980 slightly worse; measured at "
        f"N={last}: K40 {pct(k40)}, C2070 {pct(c2070)}, GTX980 {pct(gtx)}"
    )
    return "\n".join(lines)


def main() -> None:
    print(format_text(run()))


if __name__ == "__main__":
    main()
