"""Strategy-vs-strategy leaderboard: the search zoo at equal budget.

Every strategy in the zoo — plus the UCB bandit meta-tuner that splits
its budget across all of them — searches the same kernel on the same
device under the same simulated-seconds cap, and the picks are scored
against the oracle optimum.  This is the §5.1 comparison the paper makes
qualitatively ("neither random search nor hill climbing is reliable
across devices"), run as a reproducible experiment::

    python -m repro.experiments.search_zoo
    python -m repro.experiments.search_zoo --budget-s 600 --seed 3

The bandit's job is visible in the output: it rarely wins outright, but
it tracks the per-device winner and never sits at the bottom — on a new
device you don't know which single strategy the bottom one will be.
"""

from __future__ import annotations

import argparse
from typing import Dict

from repro.experiments.reporting import header, ms, table
from repro.kernels import get_benchmark
from repro.simulator.devices import DEVICES, MAIN_DEVICES

#: Default equal-budget cap, in simulated seconds.  Roughly what the
#: paper's small (N=500) ANN tuning run spends on convolution.
DEFAULT_BUDGET_S = 300.0


def run(
    kernel: str = "convolution",
    devices=MAIN_DEVICES,
    budget_s: float = DEFAULT_BUDGET_S,
    batch: int = 48,
    seed: int = 0,
) -> Dict:
    """Run every strategy and the bandit on each device at equal budget.

    Returns
    -------
    dict with ``rows``: device -> strategy -> {"best_s", "vs_opt",
    "proposed", "measured", "spend_s"} (the bandit appears as
    ``"bandit"``), plus ``optimum_s`` per device.
    """
    import numpy as np

    from repro.core.measure import Measurer
    from repro.core.strategies import (
        DEFAULT_ARMS,
        BanditMetaTuner,
        SearchSettings,
        make_strategy,
        run_search,
    )
    from repro.experiments.oracle import TrueTimeOracle
    from repro.runtime import Context

    spec = get_benchmark(kernel)
    settings = SearchSettings(budget=10**9, batch=batch, max_cost_s=budget_s)
    rows: Dict[str, Dict[str, Dict]] = {}
    optima: Dict[str, float] = {}
    for dev in devices:
        oracle = TrueTimeOracle(spec, DEVICES[dev])
        _, opt = oracle.global_optimum()
        optima[dev] = opt
        rows[dev] = {}
        for name in DEFAULT_ARMS:
            m = Measurer(Context(DEVICES[dev], seed=seed), spec)
            out = run_search(
                m, make_strategy(name, m, settings),
                np.random.default_rng(seed), settings,
            )
            true = oracle.time_of(out.best_index) if out.best_index >= 0 else float("nan")
            rows[dev][name] = {
                "best_s": true,
                "vs_opt": true / opt,
                "proposed": out.n_proposed,
                "measured": out.n_measured,
                "spend_s": m.context.ledger.total_s,
            }
        m = Measurer(Context(DEVICES[dev], seed=seed), spec)
        out = BanditMetaTuner(m, settings, explore=0.5).run(
            np.random.default_rng(seed)
        )
        true = oracle.time_of(out.best_index) if out.best_index >= 0 else float("nan")
        rows[dev]["bandit"] = {
            "best_s": true,
            "vs_opt": true / opt,
            "proposed": out.n_proposed,
            "measured": out.n_measured,
            "spend_s": m.context.ledger.total_s,
        }
    return {
        "kernel": kernel,
        "devices": tuple(devices),
        "budget_s": budget_s,
        "seed": seed,
        "optimum_s": optima,
        "rows": rows,
    }


def format_text(results: Dict) -> str:
    lines = [
        header(
            f"Search-strategy leaderboard - {results['kernel']}, "
            f"{results['budget_s']:.0f} simulated-second budget, "
            f"seed {results['seed']}"
        )
    ]
    for dev in results["devices"]:
        per = results["rows"][dev]
        ranked = sorted(per.items(), key=lambda kv: kv[1]["vs_opt"])
        body = [
            (
                name,
                ms(r["best_s"]),
                f"{r['vs_opt']:.3f}x",
                r["proposed"],
                r["measured"],
                f"{r['spend_s']:.0f}",
            )
            for name, r in ranked
        ]
        lines.append("")
        lines.append(
            f"{dev} (oracle optimum {ms(results['optimum_s'][dev])})\n"
            + table(
                body,
                headers=(
                    "strategy", "best", "vs opt", "proposed", "measured",
                    "spend s",
                ),
            )
        )
        bandit_rank = [name for name, _ in ranked].index("bandit") + 1
        lines.append(f"bandit rank: {bandit_rank}/{len(ranked)}")
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernel", default="convolution")
    parser.add_argument("--budget-s", type=float, default=DEFAULT_BUDGET_S)
    parser.add_argument("--batch", type=int, default=48)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    print(
        format_text(
            run(
                kernel=args.kernel,
                budget_s=args.budget_s,
                batch=args.batch,
                seed=args.seed,
            )
        )
    )


if __name__ == "__main__":
    main()
