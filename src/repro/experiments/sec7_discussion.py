"""§7 "Further Discussions": the paper's three explanations, quantified.

The paper explains its accuracy patterns with three mechanisms and leaves
them qualitative; this experiment measures each one:

1. **Memory parameters matter less on the CPU** ("all the logical memory
   spaces are mapped to the same physical memory") — compared via
   parameter sensitivities of the memory-space switches on the i7 vs the
   GPUs (with the known exception: ``use_image`` stays huge on the CPU
   because of the emulated-texture cliff, which is the Fig. 8 cluster).
2. **Driver unrolling hurts AMD accuracy** — model error on the AMD GPU
   for the pragma-unrolled benchmarks (convolution, stereo) vs the
   macro-unrolled one (raycasting).
3. **Fewer invalid configurations on the CPU** — invalid fraction of a
   random sample per device.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.sensitivity import parameter_sensitivity, sensitivity_report
from repro.experiments.fig04_06_model_error import error_curve
from repro.experiments.oracle_store import OracleProvider
from repro.experiments.presets import get_preset
from repro.experiments.reporting import header, pct, table
from repro.kernels import ConvolutionKernel
from repro.simulator.devices import DEVICES

MEMORY_PARAMS = ("use_image", "use_local")
COMPUTE_PARAMS = ("wg_x", "wg_y", "ppt_x", "ppt_y")

SENSITIVITY_DEVICES = ("intel", "nvidia", "amd")
UNROLL_BENCHMARKS = ("convolution", "raycasting", "stereo")


def memory_sensitivity_for_device(
    key: str, seed: int = 0, n_base: int = 120,
    oracles: Optional[OracleProvider] = None,
) -> Dict:
    provider = oracles if oracles is not None else OracleProvider()
    spec = ConvolutionKernel()
    oracle = provider.oracle(spec, DEVICES[key])
    rng = np.random.default_rng(seed)
    return parameter_sensitivity(oracle.times_for, spec.space, rng, n_base=n_base)


def memory_sensitivity_by_device(
    seed: int = 0, n_base: int = 120, oracles: Optional[OracleProvider] = None
) -> Dict:
    return {
        key: memory_sensitivity_for_device(
            key, seed=seed, n_base=n_base, oracles=oracles
        )
        for key in SENSITIVITY_DEVICES
    }


def amd_unroll_gap(seed: int = 0, n_train: int = 2000, holdout: int = 300) -> Dict:
    errors = {}
    for benchmark in UNROLL_BENCHMARKS:
        errors[benchmark] = amd_unroll_error(
            benchmark, seed=seed, n_train=n_train, holdout=holdout
        )
    return errors


def amd_unroll_error(
    benchmark: str, seed: int = 0, n_train: int = 2000, holdout: int = 300
) -> float:
    c = error_curve(benchmark, "amd", (n_train,), holdout, repeats=1, seed=seed)
    return c["errors"][n_train]


def invalid_fraction_by_device(
    seed: int = 0, n: int = 3000, oracles: Optional[OracleProvider] = None
) -> Dict:
    """Invalid fraction of one random sample, per device.

    An invalid configuration is exactly a NaN true time, so the check
    rides the oracle's vectorized (and, when store-backed, persistent)
    ``times_for`` instead of a scalar ``validate`` loop.
    """
    provider = oracles if oracles is not None else OracleProvider()
    spec = ConvolutionKernel()
    rng = np.random.default_rng(seed)
    idx = spec.space.sample_indices(n, rng)
    out = {}
    for key in SENSITIVITY_DEVICES:
        oracle = provider.oracle(spec, DEVICES[key])
        out[key] = float(np.isnan(oracle.times_for(idx)).mean())
    return out


def run(preset=None, seed: int = 0, oracles: Optional[OracleProvider] = None) -> Dict:
    p = get_preset(preset)
    return {
        "amd_n_train": p.sec7_n_train,
        "sensitivity": memory_sensitivity_by_device(
            seed=seed, n_base=p.sec7_n_base, oracles=oracles
        ),
        "amd_errors": amd_unroll_gap(
            seed=seed, n_train=p.sec7_n_train, holdout=p.sec7_holdout
        ),
        "invalid": invalid_fraction_by_device(
            seed=seed, n=p.sec7_invalid_n, oracles=oracles
        ),
    }


def format_text(results: Dict) -> str:
    lines = [header("S7 discussion - the paper's three mechanisms, quantified")]

    lines.append("")
    lines.append("(1) parameter sensitivity (e-folds of runtime), convolution:")
    for key, sens in results["sensitivity"].items():
        lines.append(f"\n  {key}:")
        lines.append("    " + sensitivity_report(sens).replace("\n", "\n    "))
    code_params = ("pad", "interleaved", "unroll")
    code_cpu = np.mean([results["sensitivity"]["intel"][p] for p in code_params])
    code_gpu = np.mean(
        [results["sensitivity"][d][p] for d in ("nvidia", "amd") for p in code_params]
    )
    wg_cpu = np.mean([results["sensitivity"]["intel"][p] for p in ("wg_x", "wg_y")])
    wg_gpu = np.mean(
        [results["sensitivity"][d][p] for d in ("nvidia", "amd") for p in ("wg_x", "wg_y")]
    )
    lines.append(
        f"\n  code-generation knobs (pad/interleaved/unroll) move runtime "
        f"{code_gpu / max(code_cpu, 1e-9):.1f}x more on the GPUs than on the CPU, "
        f"and work-group shape {wg_gpu / max(wg_cpu, 1e-9):.1f}x more — the §7 "
        "'less effect on the CPU' claim.  The exception the paper itself "
        "flags: use_image/use_local stay huge on the CPU because emulated "
        "textures are catastrophic unless cached locally (the Fig. 8 cluster)."
    )

    lines.append("")
    lines.append(
        f"(2) AMD model error by benchmark (N={results.get('amd_n_train', 2000)}):"
    )
    lines.append(
        table(
            [(b, pct(e)) for b, e in results["amd_errors"].items()],
            headers=("benchmark", "error"),
        )
    )
    lines.append(
        "  raycasting unrolls manually (macros); convolution/stereo depend "
        "on the AMD driver's unreliable pragma (§7)."
    )

    lines.append("")
    lines.append("(3) invalid fraction of a random sample (convolution):")
    lines.append(
        table(
            [(d, pct(f)) for d, f in results["invalid"].items()],
            headers=("device", "invalid"),
        )
    )
    return "\n".join(lines)


def main() -> None:
    print(format_text(run()))


if __name__ == "__main__":
    main()
