"""Terminal rendering of the paper's figures (no plotting dependencies).

Two primitives cover everything the paper draws:

* :func:`line_plot` — multi-series curves (Figs. 4-7, 11-13 as N-vs-error
  or N-vs-slowdown series);
* :func:`scatter_plot` — log-log predicted-vs-actual clouds with the
  diagonal marked (Figs. 8-10);
* :func:`bar_chart` — horizontal bars (Figs. 1 and 14).

Each returns a plain string; NaNs are skipped (the paper's "missing
results").
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

#: Glyphs assigned to successive series of a line/scatter plot.
SERIES_GLYPHS = "ox+*#@%&"


def _finite(values) -> list:
    return [v for v in values if v == v and not math.isinf(v)]


def _scale(value, lo, hi, cells):
    if hi <= lo:
        return 0
    pos = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(pos * (cells - 1)))))


def line_plot(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    logx: bool = False,
    title: str = "",
) -> str:
    """Curves on a shared x axis; one glyph per named series."""
    if not series:
        raise ValueError("need at least one series")
    xs = [math.log10(v) for v in x] if logx else list(x)
    all_y = _finite([v for ys in series.values() for v in ys])
    if not all_y:
        raise ValueError("no finite data to plot")
    ylo, yhi = min(all_y), max(all_y)
    if yhi == ylo:
        yhi = ylo + 1.0
    xlo, xhi = min(xs), max(xs)

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), glyph in zip(series.items(), SERIES_GLYPHS):
        for xv, yv in zip(xs, ys):
            if yv != yv or math.isinf(yv):
                continue
            col = _scale(xv, xlo, xhi, width)
            row = height - 1 - _scale(yv, ylo, yhi, height)
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{yhi:12.4g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row))
    lines.append(f"{ylo:12.4g} +" + "-" * width)
    lines.append(
        " " * 14 + f"{x[0]:<10g}" + " " * max(0, width - 20) + f"{x[-1]:>10g}"
    )
    legend = "  ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), SERIES_GLYPHS)
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def scatter_plot(
    actual: Sequence[float],
    predicted: Sequence[float],
    width: int = 56,
    height: int = 22,
    title: str = "",
) -> str:
    """Log-log scatter with the y=x diagonal drawn as ``.``."""
    pairs = [
        (a, p)
        for a, p in zip(actual, predicted)
        if a == a and p == p and a > 0 and p > 0
    ]
    if not pairs:
        raise ValueError("no positive finite pairs to plot")
    la = [math.log10(a) for a, _ in pairs]
    lp = [math.log10(p) for _, p in pairs]
    lo = min(min(la), min(lp))
    hi = max(max(la), max(lp))
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    # Diagonal first so points overwrite it.
    for col in range(width):
        v = lo + (hi - lo) * col / (width - 1)
        row = height - 1 - _scale(v, lo, hi, height)
        grid[row][col] = "."
    for a, p in zip(la, lp):
        col = _scale(a, lo, hi, width)
        row = height - 1 - _scale(p, lo, hi, height)
        grid[row][col] = "o"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{10 ** hi:10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{10 ** lo:10.3g} +" + "-" * width)
    lines.append(" " * 12 + f"{10 ** lo:<10.3g}" + " " * max(0, width - 20) + f"{10 ** hi:>10.3g}")
    lines.append(" " * 12 + "x: actual, y: predicted, .: y=x (log-log)")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    fmt: str = "{:.2f}",
    missing: str = "missing",
) -> str:
    """Horizontal bars; NaN renders as the ``missing`` marker."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    finite = _finite(values)
    if not finite:
        raise ValueError("no finite values")
    vmax = max(finite)
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, v in zip(labels, values):
        if v != v or math.isinf(v):
            lines.append(f"{str(label).ljust(label_w)} | {missing}")
            continue
        n = int(round(width * v / vmax)) if vmax > 0 else 0
        lines.append(
            f"{str(label).ljust(label_w)} | {'#' * n} {fmt.format(v)}"
        )
    return "\n".join(lines)
