"""Persistent, memory-mapped ground-truth tables for the experiment suite.

Every experiment that needs exhaustive or sampled *true* times builds a
:class:`~repro.experiments.oracle.TrueTimeOracle`; before this store, each
one recomputed the same tables from scratch — the full 131K-configuration
convolution table was rebuilt per device *per experiment*.  The store makes
a table a compute-once artifact:

* **full tables** are one ``<slug>.full.npy`` per (kernel, device) plus a
  ``<slug>.meta.json`` sidecar identifying the table (kernel, device,
  problem, space size, :data:`~repro.simulator.SIMULATOR_VERSION`).  They
  are written atomically (the MeasurementDB recipe: tempfile in the target
  directory + flush + fsync + ``os.replace``) and opened read-only with
  ``np.load(..., mmap_mode="r")`` so concurrent experiment processes share
  the pages zero-copy;
* **partial tables** (sampled subsets of the huge raycasting/stereo
  spaces) are ``<slug>.partial.npz`` archives of (indices, times) pairs
  with the same embedded metadata; writers merge with whatever is on disk
  before replacing, so concurrent warmers lose no entries and a reader
  never observes a torn file.

Unreadable, truncated or foreign archives raise :class:`OracleStoreError`
naming the offending file; a *stale* archive (simulator-version mismatch)
is silently treated as a miss and recomputed — stale true times must never
leak into results.  ``stats`` counts hits/misses/stale loads per store so
the scheduler can assert the "each table computed exactly once" contract.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.simulator import SIMULATOR_VERSION

#: Version of the on-disk layout itself (file naming + sidecar schema).
STORE_LAYOUT_VERSION = 1


class OracleStoreError(RuntimeError):
    """A persisted table exists but cannot be trusted (corrupt / foreign).

    The message always names the offending file so the fix — delete it or
    point the store elsewhere — is obvious.  Version *staleness* is not an
    error: stale archives are treated as misses and recomputed.
    """


def _slug(text: str) -> str:
    """Filesystem-safe fragment of a kernel/device name."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text).strip("_") or "x"


def _atomic_write_bytes(path: Path, write_fn) -> None:
    """Write a file atomically: tempfile + fsync + ``os.replace``.

    ``write_fn(fh)`` receives the open binary handle.  Concurrent writers
    of the same path each land a complete file; the last replace wins and
    readers only ever see a fully written archive.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            write_fn(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class OracleKey:
    """Identity of one persisted table: (kernel, device, problem, space).

    The simulator version is deliberately *not* part of the identity — a
    version mismatch means "same table, stale contents" (recompute), while
    an identity mismatch means "this is not your file" (error).
    """

    __slots__ = ("kernel", "device", "problem", "space_size")

    def __init__(self, kernel: str, device: str, problem: str, space_size: int):
        self.kernel = kernel
        self.device = device
        self.problem = problem
        self.space_size = int(space_size)

    @classmethod
    def for_pair(cls, spec, device) -> "OracleKey":
        return cls(spec.name, device.name, repr(spec.problem), spec.space.size)

    @property
    def slug(self) -> str:
        return f"{_slug(self.kernel)}@{_slug(self.device)}"

    def meta(self) -> Dict:
        return {
            "layout": STORE_LAYOUT_VERSION,
            "kernel": self.kernel,
            "device": self.device,
            "problem": self.problem,
            "space_size": self.space_size,
            "simulator_version": SIMULATOR_VERSION,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OracleKey({self.kernel}@{self.device}, n={self.space_size})"


class OracleStore:
    """One directory of persisted true-time tables.

    Safe for concurrent readers and writers across processes: reads only
    ever see complete archives (atomic replace), and partial-table writers
    merge with the on-disk state before replacing.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Serializes stat updates; file-level safety comes from atomic
        # replace, but the counters are plain dict arithmetic.
        self._lock = threading.Lock()
        #: hit/miss/stale accounting, keyed like tracer counters.
        self.stats: Dict[str, int] = {
            "full_hit": 0,
            "full_miss": 0,
            "full_stale": 0,
            "full_saved": 0,
            "partial_hit": 0,
            "partial_miss": 0,
            "partial_entries_loaded": 0,
            "partial_entries_saved": 0,
        }

    def _bump(self, key: str, n: int = 1) -> None:
        with self._lock:
            self.stats[key] += n

    # -- paths -----------------------------------------------------------------

    def full_path(self, key: OracleKey) -> Path:
        return self.root / f"{key.slug}.full.npy"

    def meta_path(self, key: OracleKey) -> Path:
        return self.root / f"{key.slug}.meta.json"

    def partial_path(self, key: OracleKey) -> Path:
        return self.root / f"{key.slug}.partial.npz"

    # -- metadata validation ---------------------------------------------------

    def _check_meta(self, meta: Dict, key: OracleKey, path: Path) -> bool:
        """True if usable, False if stale; raises on identity mismatch."""
        for field in ("kernel", "device", "problem", "space_size"):
            if meta.get(field) != getattr(key, field):
                raise OracleStoreError(
                    f"oracle-store archive {path} belongs to "
                    f"{meta.get('kernel')}@{meta.get('device')} "
                    f"(space {meta.get('space_size')}), not "
                    f"{key.kernel}@{key.device} (space {key.space_size}); "
                    "delete the file or use a different --oracle-store"
                )
        return meta.get("simulator_version") == SIMULATOR_VERSION

    # -- full tables -----------------------------------------------------------

    def load_full(
        self, key: OracleKey, count_miss: bool = True
    ) -> Optional[np.ndarray]:
        """The persisted full table as a read-only memory map, or None.

        None means "miss" (absent or stale — recompute and save).  Corrupt
        or foreign archives raise :class:`OracleStoreError` instead.
        ``count_miss=False`` makes an absent table free in the stats — for
        opportunistic probes ("is there a full table I could reuse?") that
        carry no recompute obligation.
        """
        path, meta_path = self.full_path(key), self.meta_path(key)
        if not path.exists() or not meta_path.exists():
            if count_miss:
                self._bump("full_miss")
            return None
        try:
            meta = json.loads(meta_path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            raise OracleStoreError(
                f"oracle-store sidecar {meta_path} is unreadable: {exc}"
            ) from exc
        if not self._check_meta(meta, key, path):
            self._bump("full_stale")
            self._bump("full_miss")
            return None
        try:
            table = np.load(path, mmap_mode="r", allow_pickle=False)
        except Exception as exc:
            raise OracleStoreError(
                f"oracle-store archive {path} is corrupt or truncated: {exc}"
            ) from exc
        if table.shape != (key.space_size,):
            raise OracleStoreError(
                f"oracle-store archive {path} has shape {table.shape}, "
                f"expected ({key.space_size},)"
            )
        self._bump("full_hit")
        return table

    def save_full(self, key: OracleKey, times: np.ndarray) -> Path:
        """Persist a full table atomically (array first, sidecar last)."""
        times = np.ascontiguousarray(times, dtype=np.float64)
        if times.shape != (key.space_size,):
            raise ValueError(
                f"full table shape {times.shape} != ({key.space_size},)"
            )
        path = self.full_path(key)
        _atomic_write_bytes(path, lambda fh: np.save(fh, times))
        # The sidecar is the commit point: readers require both files.
        meta_blob = json.dumps(key.meta(), indent=2).encode()
        _atomic_write_bytes(self.meta_path(key), lambda fh: fh.write(meta_blob))
        self._bump("full_saved")
        return path

    # -- partial tables --------------------------------------------------------

    def load_partial(
        self, key: OracleKey
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Persisted (indices, times) of a sampled table, or None."""
        path = self.partial_path(key)
        if not path.exists():
            self._bump("partial_miss")
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                meta = json.loads(str(npz["meta"]))
                indices = np.asarray(npz["indices"], dtype=np.int64)
                times = np.asarray(npz["times"], dtype=np.float64)
        except OracleStoreError:
            raise
        except Exception as exc:
            raise OracleStoreError(
                f"oracle-store archive {path} is corrupt or truncated: {exc}"
            ) from exc
        if not self._check_meta(meta, key, path):
            self._bump("partial_miss")
            return None
        if indices.shape != times.shape or indices.ndim != 1:
            raise OracleStoreError(
                f"oracle-store archive {path} has mismatched arrays "
                f"({indices.shape} vs {times.shape})"
            )
        if indices.size and (indices.min() < 0 or indices.max() >= key.space_size):
            raise OracleStoreError(
                f"oracle-store archive {path} has indices outside "
                f"[0, {key.space_size})"
            )
        self._bump("partial_hit")
        self._bump("partial_entries_loaded", int(indices.size))
        return indices, times

    def save_partial(
        self, key: OracleKey, indices: np.ndarray, times: np.ndarray
    ) -> Path:
        """Persist a sampled table, merging with whatever is on disk.

        Concurrent writers each merge-then-replace: the final file is one
        writer's complete merged view (never torn), so entries from the
        loser of the race are at worst recomputed later, never corrupted.
        """
        indices = np.asarray(indices, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        if indices.shape != times.shape or indices.ndim != 1:
            raise ValueError("indices and times must be 1-D and aligned")
        try:
            existing = self.load_partial(key)
        except OracleStoreError:
            existing = None  # overwrite a corrupt archive with good data
        if existing is not None:
            old_idx, old_t = existing
            # New entries win on overlap (np.unique keeps first occurrence).
            indices = np.concatenate([indices, old_idx])
            times = np.concatenate([times, old_t])
        uniq, first = np.unique(indices, return_index=True)
        indices, times = uniq, times[first]
        path = self.partial_path(key)
        meta_blob = json.dumps(key.meta())
        _atomic_write_bytes(
            path,
            lambda fh: np.savez(fh, meta=meta_blob, indices=indices, times=times),
        )
        self._bump("partial_entries_saved", int(indices.size))
        return path

    # -- accounting ------------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.stats)


class OracleProvider:
    """Shared cache of :class:`TrueTimeOracle` objects, optionally store-backed.

    Experiments used to each build their own oracle; the provider hands out
    one oracle per (kernel, problem, device) so tables computed by one
    experiment serve the rest of the run, and — when a store directory is
    given — persist across processes and sessions.
    """

    def __init__(self, store=None) -> None:
        if store is not None and not isinstance(store, OracleStore):
            store = OracleStore(store)
        self.store: Optional[OracleStore] = store
        self._oracles: Dict[Tuple[str, str, str], "TrueTimeOracle"] = {}

    def oracle(self, spec, device) -> "TrueTimeOracle":
        from repro.experiments.oracle import TrueTimeOracle

        key = (spec.name, repr(spec.problem), device.name)
        oracle = self._oracles.get(key)
        if oracle is None:
            oracle = TrueTimeOracle(spec, device, store=self.store)
            self._oracles[key] = oracle
        return oracle

    def flush(self) -> None:
        """Persist every oracle's un-saved partial entries to the store."""
        if self.store is None:
            return
        for oracle in self._oracles.values():
            oracle.save_partial()

    def stats_snapshot(self) -> Dict[str, int]:
        return self.store.stats_snapshot() if self.store is not None else {}
