"""Experiment presets: the paper's full grids, and fast subsets.

The paper averages several retrained networks per point over up to 4000
training samples; a faithful full run takes tens of minutes on one core.
``FAST`` keeps the same axes with coarser grids and fewer repetitions so
the whole reproduction finishes in minutes; ``FULL`` is the paper's grid.
Selected via the ``REPRO_PRESET`` environment variable or per call.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: The paper's Figs. 4-6 x-axis.
PAPER_TRAINING_SIZES = (
    100, 200, 300, 400, 500, 600, 700, 800, 900, 1000,
    1500, 2000, 2500, 3000, 3500, 4000,
)

#: The paper's Figs. 11-13 axes.
PAPER_TUNER_SIZES = (100, 200, 300, 400, 500, 1000, 2000)
PAPER_TUNER_M = (10, 50, 100, 150, 200)


@dataclass(frozen=True)
class Preset:
    """Grid sizes and repetition counts for the harness."""

    name: str
    #: Figs. 4-7 training-size axis.
    training_sizes: tuple
    #: Held-out configurations for error evaluation.
    holdout: int
    #: Model retrainings averaged per point.
    repeats: int
    #: Figs. 11-13 axes.
    tuner_sizes: tuple
    tuner_m: tuple
    #: Fig. 14 budgets.
    fig14_train: int
    fig14_m: int
    fig14_random_budget: int
    #: §7 discussion budgets (defaulted: both paper presets use the same
    #: values; the micro presets in benchmarks/tests shrink them).
    sec7_n_train: int = 2000
    sec7_holdout: int = 300
    sec7_n_base: int = 120
    sec7_invalid_n: int = 3000


FAST = Preset(
    name="fast",
    training_sizes=(100, 300, 500, 1000, 2000, 4000),
    holdout=400,
    repeats=1,
    tuner_sizes=(200, 500, 1000, 2000),
    tuner_m=(10, 50, 100, 200),
    fig14_train=1500,
    fig14_m=150,
    fig14_random_budget=20000,
)

FULL = Preset(
    name="full",
    training_sizes=PAPER_TRAINING_SIZES,
    holdout=500,
    repeats=3,
    tuner_sizes=PAPER_TUNER_SIZES,
    tuner_m=PAPER_TUNER_M,
    fig14_train=3000,
    fig14_m=300,
    fig14_random_budget=50000,
)

_PRESETS = {"fast": FAST, "full": FULL}


def get_preset(name: str | Preset | None = None) -> Preset:
    """Resolve a preset by name, REPRO_PRESET, or default (fast)."""
    if isinstance(name, Preset):
        return name
    key = name or os.environ.get("REPRO_PRESET", "fast")
    try:
        return _PRESETS[key.lower()]
    except KeyError:
        raise KeyError(f"unknown preset {key!r}; known: {sorted(_PRESETS)}") from None
