"""Per-figure reproduction harness.

One module per table/figure of the paper's evaluation (see DESIGN.md §4 for
the index).  Every module exposes

* ``run(preset=..., seed=...) -> dict`` — compute the experiment's data;
* ``format_text(results) -> str`` — render the same rows/series the paper
  reports, as text;
* a ``main()`` CLI entry point.

``python -m repro.experiments.run_all`` regenerates every experiment and
writes EXPERIMENTS.md.
"""

from repro.experiments.oracle import TrueTimeOracle
from repro.experiments.oracle_store import OracleProvider, OracleStore
from repro.experiments.presets import FAST, FULL, get_preset

__all__ = [
    "TrueTimeOracle",
    "OracleProvider",
    "OracleStore",
    "FAST",
    "FULL",
    "get_preset",
]
