"""§6 cost accounting: gathering data dwarfs training.

The paper: for convolution on the K40, training the model with 2000
samples takes ~1 minute; *gathering* the 2000 samples takes ~30 minutes,
because each sample pays kernel compilation and the wasted attempts on
invalid configurations, not just kernel runtime.

We run the stage-one campaign through the runtime facade (whose ledger
charges compiles, runs and failures in simulated wall-clock) and time the
actual model training on this machine.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.core.measure import Measurer
from repro.core.model import PerformanceModel
from repro.experiments.reporting import header, kv_block
from repro.kernels import ConvolutionKernel
from repro.runtime import Context
from repro.simulator.devices import DEVICES

PAPER_GATHER_MIN = 30.0
PAPER_TRAIN_MIN = 1.0


def run(
    device_key: str = "nvidia", n_train: int = 2000, seed: int = 0, faults=None
) -> Dict:
    spec = ConvolutionKernel()
    ctx = Context(DEVICES[device_key], seed=seed, faults=faults)
    measurer = Measurer(ctx, spec, repeats=3)
    ms = measurer.sample_and_measure(n_train, np.random.default_rng(seed))

    t0 = time.perf_counter()
    PerformanceModel(spec.space, seed=seed).fit_measurements(ms)
    train_wall_s = time.perf_counter() - t0

    ledger = ctx.ledger
    return {
        "device": device_key,
        "n_train": n_train,
        "n_valid": ms.n_valid,
        "n_invalid": ms.n_invalid,
        "compile_s": ledger.compile_s,
        "run_s": ledger.run_s,
        "failed_s": ledger.failed_s,
        "gather_total_s": ledger.total_s,
        "train_wall_s": train_wall_s,
    }


def format_text(results: Dict) -> str:
    lines = [header("S6 cost accounting - gathering vs training (convolution)")]
    gather_min = results["gather_total_s"] / 60.0
    lines.append(
        kv_block(
            {
                "device": results["device"],
                "samples requested": results["n_train"],
                "valid / invalid": f"{results['n_valid']} / {results['n_invalid']}",
                "compile time": f"{results['compile_s'] / 60:.1f} min",
                "kernel run time": f"{results['run_s'] / 60:.1f} min",
                "failed-attempt time": f"{results['failed_s'] / 60:.1f} min",
                "total gathering": f"{gather_min:.1f} min (paper: ~{PAPER_GATHER_MIN:.0f} min)",
                "model training": f"{results['train_wall_s']:.1f} s wall "
                f"(paper: ~{PAPER_TRAIN_MIN:.0f} min on 2015 hardware)",
                "gather / train ratio": f"{results['gather_total_s'] / max(results['train_wall_s'], 1e-9):.0f}x",
            }
        )
    )
    return "\n".join(lines)


def main() -> None:
    print(format_text(run()))


if __name__ == "__main__":
    main()
