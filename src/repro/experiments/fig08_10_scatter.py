"""Figures 8-10: predicted vs. actual execution times (convolution).

The paper scatter-plots 100 held-out configurations per device on log-log
axes and notes a tight diagonal plus, on the Intel i7, a distinct cluster
caused by image-memory-without-local-memory configurations (emulated
texture fetches on the CPU).

We emit the (actual, predicted) pairs, log-space correlation, and an
explicit check of the Intel clustering: the mean slowdown of
image-without-local configurations over the rest.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.measure import Measurer
from repro.core.model import PerformanceModel
from repro.experiments.ascii_plot import scatter_plot
from repro.experiments.reporting import header, kv_block, table
from repro.kernels import ConvolutionKernel
from repro.runtime import Context
from repro.simulator.devices import DEVICES, MAIN_DEVICES

FIGURE_BY_DEVICE = {"intel": "Figure 8", "nvidia": "Figure 9", "amd": "Figure 10"}


def scatter_for_device(
    device_key: str, n_train: int = 2000, n_points: int = 100, seed: int = 0,
    faults=None,
) -> Dict:
    """Train one model (no averaging, as in the paper's scatter figures)
    and predict ``n_points`` held-out configurations.  ``faults`` routes
    the measurement pool through the resilient pipeline (None is the
    fault-free path, bit-identical to omitting the argument)."""
    spec = ConvolutionKernel()
    ctx = Context(DEVICES[device_key], seed=seed, faults=faults)
    measurer = Measurer(ctx, spec)
    rng = np.random.default_rng(seed)
    pool = measurer.sample_and_measure(int((n_train + n_points) * 1.9) + 100, rng)
    idx, times = pool.indices, pool.times_s

    hold_idx, hold_t = idx[-n_points:], times[-n_points:]
    model = PerformanceModel(spec.space, seed=seed)
    model.fit(idx[:n_train], times[:n_train])
    pred = model.predict_indices(hold_idx)

    corr = float(np.corrcoef(np.log(hold_t), np.log(pred))[0, 1])

    # The Fig. 8 clustering diagnostic: image without local memory.
    flags = np.array(
        [
            (spec.space[int(i)]["use_image"], spec.space[int(i)]["use_local"])
            for i in hold_idx
        ]
    )
    cluster = (flags[:, 0] == 1) & (flags[:, 1] == 0)
    cluster_ratio = float("nan")
    if cluster.any() and (~cluster).any():
        cluster_ratio = float(
            np.median(hold_t[cluster]) / np.median(hold_t[~cluster])
        )

    return {
        "device": device_key,
        "actual_s": hold_t,
        "predicted_s": pred,
        "log_correlation": corr,
        "cluster_median_slowdown": cluster_ratio,
        "n_train": n_train,
    }


def run(devices=MAIN_DEVICES, n_train: int = 2000, seed: int = 0, faults=None) -> Dict:
    return {
        "devices": tuple(devices),
        "scatter": {
            d: scatter_for_device(d, n_train=n_train, seed=seed, faults=faults)
            for d in devices
        },
    }


def format_text(results: Dict, max_rows: int = 100) -> str:
    lines = []
    for d in results["devices"]:
        s = results["scatter"][d]
        fig = FIGURE_BY_DEVICE.get(d, f"scatter on {d}")
        lines.append(header(f"{fig} - predicted vs actual execution time ({d})"))
        rows = [
            (f"{a * 1e3:.3f}", f"{p * 1e3:.3f}")
            for a, p in zip(s["actual_s"][:max_rows], s["predicted_s"][:max_rows])
        ]
        lines.append(table(rows, headers=("actual (ms)", "predicted (ms)")))
        info = {
            "log-space correlation": f"{s['log_correlation']:.3f}",
            "image-without-local median slowdown": (
                "n/a"
                if s["cluster_median_slowdown"] != s["cluster_median_slowdown"]
                else f"{s['cluster_median_slowdown']:.1f}x"
            ),
        }
        lines.append(kv_block(info))
        lines.append("")
        lines.append(
            scatter_plot(
                list(s["actual_s"]),
                list(s["predicted_s"]),
                title=f"{fig} (log-log)",
            )
        )
        lines.append("")
    lines.append(
        "paper: points hug the diagonal on log axes; on the Intel i7 the "
        "image-without-local configurations form a distinctly slower cluster."
    )
    return "\n".join(lines)


def main() -> None:
    print(format_text(run()))


if __name__ == "__main__":
    main()
