"""Figure 1: the motivational cross-device slowdown experiment.

The paper exhaustively tunes ``convolution`` on each of the three devices,
then runs each device's best configuration on the other two.  Headline
numbers: the best Nvidia configuration is 17.1x slower than the best Intel
configuration on the Intel i7; the two GPUs see ~3x both ways.

Ours does exactly that (the 131K-point space is exhaustible), on true
(noise-free) times.  Cells can legitimately come out "invalid" when one
device's optimum violates another device's resource limits (e.g. a
1024-thread work-group on the HD 7970's 256 limit) — the paper's own
figures have analogous missing results.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.ascii_plot import bar_chart
from repro.experiments.oracle_store import OracleProvider
from repro.experiments.reporting import header, ms, table
from repro.kernels import ConvolutionKernel
from repro.simulator.devices import DEVICES, MAIN_DEVICES

#: The paper's headline cell: best-K40-config-on-i7 slowdown.
PAPER_NVIDIA_ON_INTEL = 17.1
#: The paper's GPU<->GPU slowdowns ("approximately 3").
PAPER_GPU_GPU = 3.0


def run(devices=MAIN_DEVICES, seed: int = 0, oracles: OracleProvider | None = None) -> Dict:
    """Exhaustive per-device optima + the cross-evaluation matrix.

    ``oracles`` shares ground-truth tables with the rest of a run (and,
    when store-backed, across processes and sessions).

    Returns
    -------
    dict with ``best`` (device -> (index, time, config dict)) and
    ``matrix`` (target -> source -> slowdown or None-if-invalid).
    """
    provider = oracles if oracles is not None else OracleProvider()
    spec = ConvolutionKernel()
    oracles = {d: provider.oracle(spec, DEVICES[d]) for d in devices}
    best = {}
    for d, oracle in oracles.items():
        idx, t = oracle.global_optimum()
        best[d] = {"index": idx, "time_s": t, "config": dict(spec.space[idx])}

    matrix: Dict[str, Dict[str, float | None]] = {}
    for target in devices:
        matrix[target] = {}
        for source in devices:
            t = oracles[target].time_of(best[source]["index"])
            if t != t:  # NaN: the foreign optimum cannot run here
                matrix[target][source] = None
            else:
                matrix[target][source] = t / best[target]["time_s"]
    return {"best": best, "matrix": matrix, "devices": tuple(devices)}


def format_text(results: Dict) -> str:
    devices = results["devices"]
    lines = [header("Figure 1 - cross-device slowdown of per-device optima (convolution)")]
    rows = []
    for d in devices:
        b = results["best"][d]
        rows.append((d, ms(b["time_s"]), b["config"]))
    lines.append(table(rows, headers=("device", "best time", "best configuration")))
    lines.append("")
    rows = []
    for target in devices:
        row = [target]
        for source in devices:
            s = results["matrix"][target][source]
            row.append("invalid" if s is None else f"{s:.2f}x")
        rows.append(row)
    lines.append(
        table(rows, headers=("on \\ config of", *devices))
    )
    lines.append("")
    labels, values = [], []
    for target in devices:
        for source in devices:
            s_val = results["matrix"][target][source]
            labels.append(f"{source}-config on {target}")
            values.append(float("nan") if s_val is None else s_val)
    lines.append(bar_chart(labels, values, title="slowdown vs own optimum", missing="invalid"))
    nvidia_on_intel = results["matrix"].get("intel", {}).get("nvidia")
    lines.append("")
    lines.append(
        f"paper: best-Nvidia-on-Intel = {PAPER_NVIDIA_ON_INTEL}x, GPU<->GPU ~ {PAPER_GPU_GPU}x; "
        f"measured best-Nvidia-on-Intel = "
        + ("invalid" if nvidia_on_intel is None else f"{nvidia_on_intel:.1f}x")
    )
    return "\n".join(lines)


def main() -> None:
    print(format_text(run()))


if __name__ == "__main__":
    main()
