"""Figure 14: tuning the large spaces (raycasting, stereo).

Exhaustive ground truth is out of reach (655K / 2.36M configurations;
"time constraints prevented us", §6), so the paper compares the tuner's
pick (N=3000 stage-one samples, M=300 stage-two candidates — 0.5% / 0.1%
of the spaces) against the best of 50K *random* measured configurations.
Values near (occasionally below) 1.0 mean the tuner matches a 17x-larger
random-search budget; stereo on the GPUs is reported *missing* because the
model predicted almost only invalid configurations there.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.model import PerformanceModel
from repro.core.sweep import SweepSettings
from repro.experiments.oracle_store import OracleProvider
from repro.experiments.presets import get_preset
from repro.experiments.reporting import header, table
from repro.kernels import get_benchmark
from repro.simulator.devices import DEVICES, MAIN_DEVICES

BENCHMARKS = ("raycasting", "stereo")


def tune_large_space(
    benchmark: str,
    device_key: str,
    n_train: int,
    m_candidates: int,
    random_budget: int,
    seed: int = 0,
    sweep: Optional[SweepSettings] = None,
    oracles: Optional[OracleProvider] = None,
) -> Dict:
    provider = oracles if oracles is not None else OracleProvider()
    spec = get_benchmark(benchmark)
    oracle = provider.oracle(spec, DEVICES[device_key])
    rng = np.random.default_rng(seed)

    # Stage one + model.
    train_idx = spec.space.sample_indices(n_train, rng)
    measured = oracle.measure(train_idx, rng)
    ok = ~np.isnan(measured)
    result: Dict = {
        "benchmark": benchmark,
        "device": device_key,
        "n_train": n_train,
        "m": m_candidates,
        "random_budget": random_budget,
        "train_invalid_fraction": float(np.isnan(measured).mean()),
    }
    if ok.sum() < 11:
        result.update(slowdown=float("nan"), failed=True, reason="too few valid samples")
        return result
    model = PerformanceModel(spec.space, seed=seed, sweep=sweep)
    model.fit(train_idx[ok], measured[ok])

    # Stage two: one fused streaming sweep of the whole space.
    top = model.top_m(m_candidates)
    stage2 = oracle.measure(top, rng)
    stage2_invalid = int(np.isnan(stage2).sum())
    result["stage2_invalid"] = stage2_invalid
    if np.all(np.isnan(stage2)):
        # The paper's stereo-on-GPU outcome: no prediction at all.
        result.update(slowdown=float("nan"), failed=True, reason="all stage-2 invalid")
        return result
    pick = int(top[int(np.nanargmin(stage2))])
    tuned_time = oracle.time_of(pick)

    # Reference: best of `random_budget` random measured configurations.
    rand_idx = spec.space.sample_indices(random_budget, rng)
    rand_measured = oracle.measure(rand_idx, rng)
    ref_pick = int(rand_idx[int(np.nanargmin(rand_measured))])
    ref_time = oracle.time_of(ref_pick)

    result.update(
        failed=False,
        tuned_time_s=tuned_time,
        random_best_time_s=ref_time,
        slowdown=tuned_time / ref_time,
    )
    return result


def run(
    preset=None,
    devices=MAIN_DEVICES,
    seed: int = 0,
    sweep: Optional[SweepSettings] = None,
    oracles: Optional[OracleProvider] = None,
) -> Dict:
    p = get_preset(preset)
    cells = {}
    for benchmark in BENCHMARKS:
        for device in devices:
            cells[(benchmark, device)] = tune_large_space(
                benchmark,
                device,
                n_train=p.fig14_train,
                m_candidates=p.fig14_m,
                random_budget=p.fig14_random_budget,
                seed=seed,
                sweep=sweep,
                oracles=oracles,
            )
    return {
        "preset": p.name,
        "devices": tuple(devices),
        "benchmarks": BENCHMARKS,
        "cells": cells,
    }


def format_text(results: Dict) -> str:
    lines = [
        header(
            "Figure 14 - large-space tuner vs best of "
            "random search (raycasting, stereo)"
        )
    ]
    rows = []
    for device in results["devices"]:
        row = [device]
        for benchmark in results["benchmarks"]:
            c = results["cells"][(benchmark, device)]
            if c.get("failed"):
                row.append(f"missing ({c['reason']})")
            else:
                row.append(f"{c['slowdown']:.3f}")
        rows.append(row)
    lines.append(table(rows, headers=("device", *results["benchmarks"])))
    any_cell = next(iter(results["cells"].values()))
    lines.append(
        f"(tuner: N={any_cell['n_train']}, M={any_cell['m']}; reference: best of "
        f"{any_cell['random_budget']} random configurations)"
    )
    lines.append(
        "paper: slowdowns near 1.0, sometimes slightly below; stereo missing on "
        "the GPUs because the model predicted mostly invalid configurations."
    )
    return "\n".join(lines)


def main() -> None:
    print(format_text(run()))


if __name__ == "__main__":
    main()
