"""Tables 1 and 2: benchmark descriptions and tuning-parameter spaces.

These are descriptive tables; regenerating them verifies that our
parameterizations match the paper exactly — in particular the space sizes
the paper quotes: 131K (convolution), 655K (raycasting), 2359K (stereo).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.reporting import header, table
from repro.kernels import BENCHMARKS, get_benchmark

#: Table 1 wording.
DESCRIPTIONS = {
    "convolution": "convolution of 2048x2048 2D image with 5x5 box filter, "
    "example of stencil computation",
    "raycasting": "volume visualization generating 1024x1024 2D image from "
    "512x512x512 3D volume data",
    "stereo": "computing disparity between two 1024x1024 stereo images to "
    "determine distances to objects",
}

#: The space sizes quoted in §5.1.
PAPER_SPACE_SIZES = {"convolution": 131072, "raycasting": 655360, "stereo": 2359296}


def run() -> Dict:
    out = {}
    for name in BENCHMARKS:
        spec = get_benchmark(name)
        out[name] = {
            "description": DESCRIPTIONS[name],
            "space_size": spec.space.size,
            "paper_size": PAPER_SPACE_SIZES[name],
            "parameters": [
                (p.name, p.description, p.values) for p in spec.space.parameters
            ],
        }
    return out


def format_text(results: Dict) -> str:
    lines = [header("Table 1 - benchmarks")]
    lines.append(
        table(
            [(n, r["description"]) for n, r in results.items()],
            headers=("benchmark", "description"),
        )
    )
    lines.append("")
    lines.append(header("Table 2 - tuning parameters"))
    for name, r in results.items():
        lines.append("")
        match = "OK" if r["space_size"] == r["paper_size"] else "MISMATCH"
        lines.append(
            f"{name}: space size {r['space_size']} "
            f"(paper: {r['paper_size']}) [{match}]"
        )
        lines.append(
            table(
                [
                    (pname, desc, ",".join(str(v) for v in values))
                    for pname, desc, values in r["parameters"]
                ],
                headers=("parameter", "description", "possible values"),
            )
        )
    return "\n".join(lines)


def main() -> None:
    print(format_text(run()))


if __name__ == "__main__":
    main()
