"""Ground-truth access to the simulator, bypassing the runtime facade.

Experiments repeatedly need *true* (noise-free) times — for global optima
(Figs. 1, 11-13) and for scoring tuner picks — and sometimes for tens of
thousands of configurations.  Going through Program/Kernel objects would
only add object churn, so the oracle calls the pure simulator functions
directly and memoizes.  This is evaluation machinery: the auto-tuner itself
never sees true times, only noisy measurements through the runtime.

Memoization is fully vectorized: a dense value array plus a boolean
presence mask over the space (instead of a per-int Python dict), so
``times_for`` on fig14-scale index sets is a couple of numpy gathers.
When a :class:`~repro.experiments.oracle_store.OracleStore` is attached,
full tables load as read-only memory maps computed once *ever* and partial
tables persist across processes and sessions (see ``oracle_store``).
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.kernels.base import KernelSpec
from repro.simulator.device import DeviceSpec
from repro.simulator.executor import execute_batch, simulate_kernel_time
from repro.simulator.validity import validate

#: Chunk size for vectorized true-time sweeps.
ORACLE_CHUNK = 1 << 15

# -- keyed measurement noise ---------------------------------------------------
#
# ``measure`` draws its noise from a counter-based generator keyed on
# (call key, index, repeat) rather than consuming ``rng`` positionally.
# Positional draws made the noise depend on where an index sat in the
# request: measure([a, b]) and measure([b, a]) from identical generator
# states disagreed on both entries.  With keyed noise the contract is:
#
# * one ``rng`` draw per call (the call key), so successive calls stay
#   independent;
# * within a call, noise is a pure function of (call key, index, repeat):
#   permuting the index set permutes the results, and duplicate indices
#   receive identical values.

_U64 = np.uint64
_GAMMA = _U64(0x9E3779B97F4A7C15)
_MIX_A = _U64(0xBF58476D1CE4E5B9)
_MIX_B = _U64(0x94D049BB133111EB)


def _splitmix64(z: np.ndarray) -> np.ndarray:
    z = (z ^ (z >> _U64(30))) * _MIX_A
    z = (z ^ (z >> _U64(27))) * _MIX_B
    return z ^ (z >> _U64(31))


def _unit_open(h: np.ndarray) -> np.ndarray:
    """uint64 hash -> float64 uniform on the *open* interval (0, 1)."""
    return ((h >> _U64(11)).astype(np.float64) + 0.5) * (2.0 ** -53)


def keyed_standard_normal(
    call_key: int, indices: np.ndarray, repeats: int
) -> np.ndarray:
    """(repeats, n) standard normals, a pure function of (key, index, repeat).

    splitmix64 streams turned Gaussian via Box-Muller; vectorized over
    both axes.  Equal indices get equal columns.
    """
    idx = np.asarray(indices, dtype=np.int64).astype(np.uint64)
    key = _U64(int(call_key) & 0xFFFFFFFFFFFFFFFF)
    lanes = (np.arange(repeats, dtype=np.uint64) + _U64(1)) * _GAMMA
    seed = _splitmix64(_splitmix64(idx ^ key)[None, :] ^ lanes[:, None])
    u1 = _unit_open(_splitmix64(seed ^ _MIX_A))
    u2 = _unit_open(_splitmix64(seed ^ _MIX_B))
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


class TrueTimeOracle:
    """Noise-free times of one (kernel, device) pair, lazily memoized.

    ``times_for`` computes on demand; ``full_table`` materializes the whole
    space (only sensible for convolution-sized spaces).  Invalid
    configurations are NaN.  ``store`` (an
    :class:`~repro.experiments.oracle_store.OracleStore`) makes both layers
    persistent.
    """

    def __init__(
        self, spec: KernelSpec, device: DeviceSpec, store=None
    ):
        self.spec = spec
        self.device = device
        self.store = store
        self._key = None
        if store is not None:
            from repro.experiments.oracle_store import OracleKey

            self._key = OracleKey.for_pair(spec, device)
        self._full: Optional[np.ndarray] = None
        # Vectorized partial cache: dense values + presence mask, allocated
        # lazily (the stereo space is 2.36M entries = 21 MB of float64).
        self._times: Optional[np.ndarray] = None
        self._mask: Optional[np.ndarray] = None
        self._dirty = 0  # partial entries computed since the last save
        self._probed_full = False

    def _compute(self, index: int) -> float:
        config = self.spec.space[index]
        profile = self.spec.workload(config, self.device)
        if not validate(profile, self.device):
            return float("nan")
        return simulate_kernel_time(
            profile,
            self.device,
            jitter_key=(self.spec.name, config.as_tuple()),
        )

    def time_of(self, index: int) -> float:
        """True time of one configuration (NaN if invalid)."""
        index = int(index)
        if self._full is not None:
            return float(self._full[index])
        return float(self.times_for(np.array([index], dtype=np.int64))[0])

    def _compute_batch(self, indices: np.ndarray) -> np.ndarray:
        """True times of many configurations via the batch executor.

        Bit-identical to looping :meth:`_compute` (the batch-engine
        property tests pin this), just vectorized; chunked so the whole
        131K convolution space fits comfortably in memory.
        """
        out = np.empty(indices.shape[0], dtype=np.float64)
        for start in range(0, indices.shape[0], ORACLE_CHUNK):
            chunk = indices[start : start + ORACLE_CHUNK]
            tuples = self.spec.config_tuples(chunk)
            wb = self.spec.workload_batch(chunk, self.device, config_tuples=tuples)
            be = execute_batch(
                wb, self.device, kernel_name=self.spec.name, config_tuples=tuples
            )
            out[start : start + chunk.shape[0]] = be.times
        return out

    def _maybe_adopt_stored_full(self) -> None:
        """Opportunistically memory-map a persisted full table.

        A sampled-times request is cheaper served from an existing full
        table than by computing a partial one; the probe is a pair of
        stat calls plus an mmap open, and an absent table costs nothing
        (``count_miss=False`` — no recompute obligation was implied).
        """
        if (
            self._probed_full
            or self.store is None
            or self.spec.space.size > 1_000_000
        ):
            return
        self._probed_full = True
        from repro.experiments.oracle_store import OracleStoreError

        try:
            self._full = self.store.load_full(self._key, count_miss=False)
        except OracleStoreError as exc:
            print(f"[oracle] ignoring bad archive: {exc}", file=sys.stderr)

    def _ensure_partial(self) -> None:
        """Allocate the mask/value arrays; pre-seed them from the store."""
        if self._times is not None:
            return
        size = self.spec.space.size
        self._times = np.empty(size, dtype=np.float64)
        self._mask = np.zeros(size, dtype=bool)
        if self.store is not None:
            from repro.experiments.oracle_store import OracleStoreError

            try:
                persisted = self.store.load_partial(self._key)
            except OracleStoreError as exc:
                print(f"[oracle] ignoring bad archive: {exc}", file=sys.stderr)
                persisted = None
            if persisted is not None:
                idx, times = persisted
                self._times[idx] = times
                self._mask[idx] = True

    def times_for(self, indices: Sequence[int]) -> np.ndarray:
        """True times for many configurations (NaN where invalid)."""
        idx = np.asarray(indices, dtype=np.int64)
        if self._full is None and self._times is None:
            self._maybe_adopt_stored_full()
        if self._full is not None:
            return np.asarray(self._full[idx], dtype=np.float64)
        self._ensure_partial()
        unknown = idx[~self._mask[idx]]
        if unknown.size:
            missing = np.unique(unknown)
            self._times[missing] = self._compute_batch(missing)
            self._mask[missing] = True
            self._dirty += int(missing.size)
        return self._times[idx].astype(np.float64, copy=True)

    def full_table(self) -> np.ndarray:
        """True times of the *entire* space.

        Feasible for convolution (131K) in seconds; refuses spaces past a
        million points — use ``times_for`` / ``global_optimum_sampled``
        there, as the paper itself resorts to sampling for those.  With a
        store attached the table is computed at most once per store
        lifetime and served as a read-only memory map afterwards.
        """
        if self._full is None:
            size = self.spec.space.size
            if size > 1_000_000:
                raise ValueError(
                    f"space of {size} too large to exhaust; the paper also "
                    "could not ('time constraints prevented us', §6)"
                )
            table = None
            if self.store is not None:
                from repro.experiments.oracle_store import OracleStoreError

                try:
                    table = self.store.load_full(self._key)
                except OracleStoreError as exc:
                    print(
                        f"[oracle] ignoring bad archive: {exc}", file=sys.stderr
                    )
            if table is None:
                table = self._compute_batch(np.arange(size, dtype=np.int64))
                if self.store is not None:
                    self.store.save_full(self._key, table)
            self._full = table
        return self._full

    def save_partial(self) -> int:
        """Persist un-saved partial entries to the store; returns how many.

        A no-op without a store, with nothing new, or once the full table
        exists (``full_table`` already persisted the superset).
        """
        if self.store is None or self._dirty == 0 or self._full is not None:
            return 0
        idx = np.nonzero(self._mask)[0]
        self.store.save_partial(self._key, idx, self._times[idx])
        saved, self._dirty = self._dirty, 0
        return saved

    def global_optimum(self) -> Tuple[int, float]:
        """(index, true time) of the global optimum via full enumeration."""
        table = self.full_table()
        idx = int(np.nanargmin(table))
        return idx, float(table[idx])

    def best_among(self, indices: Sequence[int]) -> Tuple[int, float]:
        """(index, true time) of the best valid configuration in a subset."""
        times = self.times_for(indices)
        if np.all(np.isnan(times)):
            raise ValueError("no valid configuration in subset")
        j = int(np.nanargmin(times))
        return int(np.asarray(indices)[j]), float(times[j])

    # -- noisy views (for fair comparisons against the tuner) -----------------

    def measure(
        self, indices: Sequence[int], rng: np.random.Generator, repeats: int = 3
    ) -> np.ndarray:
        """Vectorized best-of-``repeats`` noisy measurements (NaN invalid).

        The noise is keyed, not positional: ``rng`` is consumed exactly
        once per call (a 64-bit call key), and each entry's noise is a
        pure function of (call key, configuration index, repeat).  Calling
        with a permuted index set therefore returns permuted results, and
        duplicate indices within one call measure identically.
        """
        idx = np.asarray(indices, dtype=np.int64)
        true = self.times_for(idx)
        sigma = self.device.timing_noise_sigma
        call_key = int(rng.integers(0, np.iinfo(np.int64).max, dtype=np.int64))
        z = keyed_standard_normal(call_key, idx, repeats)
        return true * np.exp(sigma * z).min(axis=0)
