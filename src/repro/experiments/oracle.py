"""Ground-truth access to the simulator, bypassing the runtime facade.

Experiments repeatedly need *true* (noise-free) times — for global optima
(Figs. 1, 11-13) and for scoring tuner picks — and sometimes for tens of
thousands of configurations.  Going through Program/Kernel objects would
only add object churn, so the oracle calls the pure simulator functions
directly and memoizes.  This is evaluation machinery: the auto-tuner itself
never sees true times, only noisy measurements through the runtime.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.base import KernelSpec
from repro.simulator.device import DeviceSpec
from repro.simulator.executor import execute_batch, simulate_kernel_time
from repro.simulator.validity import validate

#: Chunk size for vectorized true-time sweeps.
ORACLE_CHUNK = 1 << 15


class TrueTimeOracle:
    """Noise-free times of one (kernel, device) pair, lazily memoized.

    ``times_for`` computes on demand; ``full_table`` materializes the whole
    space (only sensible for convolution-sized spaces).  Invalid
    configurations are NaN.
    """

    def __init__(self, spec: KernelSpec, device: DeviceSpec):
        self.spec = spec
        self.device = device
        self._cache: Dict[int, float] = {}
        self._full: Optional[np.ndarray] = None

    def _compute(self, index: int) -> float:
        config = self.spec.space[index]
        profile = self.spec.workload(config, self.device)
        if not validate(profile, self.device):
            return float("nan")
        return simulate_kernel_time(
            profile,
            self.device,
            jitter_key=(self.spec.name, config.as_tuple()),
        )

    def time_of(self, index: int) -> float:
        """True time of one configuration (NaN if invalid)."""
        index = int(index)
        if self._full is not None:
            return float(self._full[index])
        if index not in self._cache:
            self._cache[index] = self._compute(index)
        return self._cache[index]

    def _compute_batch(self, indices: np.ndarray) -> np.ndarray:
        """True times of many configurations via the batch executor.

        Bit-identical to looping :meth:`_compute` (the batch-engine
        property tests pin this), just vectorized; chunked so the whole
        131K convolution space fits comfortably in memory.
        """
        out = np.empty(indices.shape[0], dtype=np.float64)
        for start in range(0, indices.shape[0], ORACLE_CHUNK):
            chunk = indices[start : start + ORACLE_CHUNK]
            tuples = self.spec.config_tuples(chunk)
            wb = self.spec.workload_batch(chunk, self.device, config_tuples=tuples)
            be = execute_batch(
                wb, self.device, kernel_name=self.spec.name, config_tuples=tuples
            )
            out[start : start + chunk.shape[0]] = be.times
        return out

    def times_for(self, indices: Sequence[int]) -> np.ndarray:
        """True times for many configurations (NaN where invalid)."""
        idx = np.asarray(indices, dtype=np.int64)
        if self._full is not None:
            return self._full[idx]
        missing = np.asarray(
            sorted({int(i) for i in idx.tolist() if int(i) not in self._cache}),
            dtype=np.int64,
        )
        if missing.size:
            computed = self._compute_batch(missing)
            for i, t in zip(missing.tolist(), computed.tolist()):
                self._cache[i] = t
        return np.array([self._cache[int(i)] for i in idx], dtype=np.float64)

    def full_table(self) -> np.ndarray:
        """True times of the *entire* space.

        Feasible for convolution (131K) in seconds; refuses spaces past a
        million points — use ``times_for`` / ``global_optimum_sampled``
        there, as the paper itself resorts to sampling for those.
        """
        if self._full is None:
            size = self.spec.space.size
            if size > 1_000_000:
                raise ValueError(
                    f"space of {size} too large to exhaust; the paper also "
                    "could not ('time constraints prevented us', §6)"
                )
            self._full = self._compute_batch(np.arange(size, dtype=np.int64))
        return self._full

    def global_optimum(self) -> Tuple[int, float]:
        """(index, true time) of the global optimum via full enumeration."""
        table = self.full_table()
        idx = int(np.nanargmin(table))
        return idx, float(table[idx])

    def best_among(self, indices: Sequence[int]) -> Tuple[int, float]:
        """(index, true time) of the best valid configuration in a subset."""
        times = self.times_for(indices)
        if np.all(np.isnan(times)):
            raise ValueError("no valid configuration in subset")
        j = int(np.nanargmin(times))
        return int(np.asarray(indices)[j]), float(times[j])

    # -- noisy views (for fair comparisons against the tuner) -----------------

    def measure(
        self, indices: Sequence[int], rng: np.random.Generator, repeats: int = 3
    ) -> np.ndarray:
        """Vectorized best-of-``repeats`` noisy measurements (NaN invalid)."""
        true = self.times_for(indices)
        sigma = self.device.timing_noise_sigma
        noise = np.exp(
            sigma * rng.standard_normal((repeats, true.shape[0]))
        ).min(axis=0)
        return true * noise
