"""Ground-truth access to the simulator, bypassing the runtime facade.

Experiments repeatedly need *true* (noise-free) times — for global optima
(Figs. 1, 11-13) and for scoring tuner picks — and sometimes for tens of
thousands of configurations.  Going through Program/Kernel objects would
only add object churn, so the oracle calls the pure simulator functions
directly and memoizes.  This is evaluation machinery: the auto-tuner itself
never sees true times, only noisy measurements through the runtime.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.base import KernelSpec
from repro.simulator.device import DeviceSpec
from repro.simulator.executor import simulate_kernel_time
from repro.simulator.validity import validate


class TrueTimeOracle:
    """Noise-free times of one (kernel, device) pair, lazily memoized.

    ``times_for`` computes on demand; ``full_table`` materializes the whole
    space (only sensible for convolution-sized spaces).  Invalid
    configurations are NaN.
    """

    def __init__(self, spec: KernelSpec, device: DeviceSpec):
        self.spec = spec
        self.device = device
        self._cache: Dict[int, float] = {}
        self._full: Optional[np.ndarray] = None

    def _compute(self, index: int) -> float:
        config = self.spec.space[index]
        profile = self.spec.workload(config, self.device)
        if not validate(profile, self.device):
            return float("nan")
        return simulate_kernel_time(
            profile,
            self.device,
            jitter_key=(self.spec.name, config.as_tuple()),
        )

    def time_of(self, index: int) -> float:
        """True time of one configuration (NaN if invalid)."""
        index = int(index)
        if self._full is not None:
            return float(self._full[index])
        if index not in self._cache:
            self._cache[index] = self._compute(index)
        return self._cache[index]

    def times_for(self, indices: Sequence[int]) -> np.ndarray:
        """True times for many configurations (NaN where invalid)."""
        return np.array([self.time_of(i) for i in indices], dtype=np.float64)

    def full_table(self) -> np.ndarray:
        """True times of the *entire* space.

        Feasible for convolution (131K) in seconds; refuses spaces past a
        million points — use ``times_for`` / ``global_optimum_sampled``
        there, as the paper itself resorts to sampling for those.
        """
        if self._full is None:
            size = self.spec.space.size
            if size > 1_000_000:
                raise ValueError(
                    f"space of {size} too large to exhaust; the paper also "
                    "could not ('time constraints prevented us', §6)"
                )
            self._full = np.array(
                [self._compute(i) for i in range(size)], dtype=np.float64
            )
        return self._full

    def global_optimum(self) -> Tuple[int, float]:
        """(index, true time) of the global optimum via full enumeration."""
        table = self.full_table()
        idx = int(np.nanargmin(table))
        return idx, float(table[idx])

    def best_among(self, indices: Sequence[int]) -> Tuple[int, float]:
        """(index, true time) of the best valid configuration in a subset."""
        times = self.times_for(indices)
        if np.all(np.isnan(times)):
            raise ValueError("no valid configuration in subset")
        j = int(np.nanargmin(times))
        return int(np.asarray(indices)[j]), float(times[j])

    # -- noisy views (for fair comparisons against the tuner) -----------------

    def measure(
        self, indices: Sequence[int], rng: np.random.Generator, repeats: int = 3
    ) -> np.ndarray:
        """Vectorized best-of-``repeats`` noisy measurements (NaN invalid)."""
        true = self.times_for(indices)
        sigma = self.device.timing_noise_sigma
        noise = np.exp(
            sigma * rng.standard_normal((repeats, true.shape[0]))
        ).min(axis=0)
        return true * noise
