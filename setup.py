"""Legacy setup shim.

The environment has no ``wheel`` package, so PEP 660 editable installs
(``pip install -e .``) cannot build; with this shim present,
``pip install -e . --no-build-isolation --no-use-pep517`` falls back to
``setup.py develop``, which works offline.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
