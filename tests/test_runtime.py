"""Tests for the OpenCL-flavoured runtime facade."""

import numpy as np
import pytest

from repro.kernels import ConvolutionKernel
from repro.runtime import BuildError, Context, Device, LaunchError, Platform, Program
from repro.simulator import AMD_HD7970, INTEL_I7_3770, NVIDIA_K40
from repro.simulator.noise import FAILED_BUILD_COST_S


@pytest.fixture(scope="module")
def spec():
    return ConvolutionKernel()


def make_config(spec, **overrides):
    base = dict(
        wg_x=32, wg_y=4, ppt_x=2, ppt_y=2, use_image=0, use_local=0,
        pad=1, interleaved=1, unroll=0,
    )
    base.update(overrides)
    return spec.space.config(**base)


class TestPlatform:
    def test_lists_all_devices(self):
        devs = Platform().devices()
        assert len(devs) == 5
        assert {d.name for d in devs} >= {"Nvidia K40", "AMD HD 7970"}

    def test_device_lookup(self):
        assert Platform().device("amd").spec is AMD_HD7970


class TestBuildAndLaunch:
    def test_valid_config_runs(self, spec):
        ctx = Context(NVIDIA_K40, seed=0)
        kernel = Program(ctx, spec, make_config(spec)).build()
        event = kernel.enqueue().wait()
        assert event.duration_s > 0
        assert event.duration_ms == pytest.approx(event.duration_s * 1e3)
        assert event.true_duration_s > 0

    def test_oversized_workgroup_fails_to_build(self, spec):
        ctx = Context(AMD_HD7970, seed=0)
        cfg = make_config(spec, wg_x=32, wg_y=32)  # 1024 > 256
        with pytest.raises(BuildError, match="work-group"):
            Program(ctx, spec, cfg).build()

    def test_local_overflow_fails_to_build(self, spec):
        ctx = Context(NVIDIA_K40, seed=0)
        cfg = make_config(spec, use_local=1, wg_x=64, wg_y=16, ppt_x=8, ppt_y=8)
        with pytest.raises(BuildError, match="local memory"):
            Program(ctx, spec, cfg).build()

    def test_register_pressure_fails_at_launch(self, spec):
        ctx = Context(NVIDIA_K40, seed=0)
        # 32x32 group, large blocking: regs/thread high, wg passes build.
        cfg = make_config(spec, wg_x=32, wg_y=32, ppt_x=32, ppt_y=8, unroll=1)
        kernel = Program(ctx, spec, cfg).build()
        with pytest.raises(LaunchError, match="register"):
            kernel.enqueue()

    def test_kernel_property_requires_build(self, spec):
        ctx = Context(NVIDIA_K40, seed=0)
        prog = Program(ctx, spec, make_config(spec))
        with pytest.raises(RuntimeError):
            prog.kernel
        prog.build()
        assert prog.kernel is not None


class TestMeasurementBehaviour:
    def test_noise_varies_but_truth_fixed(self, spec):
        ctx = Context(NVIDIA_K40, seed=0)
        kernel = Program(ctx, spec, make_config(spec)).build()
        events = kernel.enqueue_many(5)
        truths = {e.true_duration_s for e in events}
        measured = {e.duration_s for e in events}
        assert len(truths) == 1
        assert len(measured) == 5

    def test_seeded_contexts_reproduce(self, spec):
        def run(seed):
            ctx = Context(NVIDIA_K40, seed=seed)
            return Program(ctx, spec, make_config(spec)).build().enqueue().duration_s

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_context_accepts_bare_spec(self):
        ctx = Context(INTEL_I7_3770)
        assert isinstance(ctx.device, Device)
        assert ctx.device.name == "Intel i7 3770"


class TestCostAccounting:
    def test_build_charges_compile_time(self, spec):
        ctx = Context(NVIDIA_K40, seed=0)
        Program(ctx, spec, make_config(spec)).build()
        assert ctx.ledger.compile_s > 0
        assert ctx.ledger.run_s == 0

    def test_unrolled_variant_compiles_slower(self, spec):
        ctx1 = Context(NVIDIA_K40, seed=0)
        Program(ctx1, spec, make_config(spec, unroll=0)).build()
        ctx2 = Context(NVIDIA_K40, seed=0)
        Program(ctx2, spec, make_config(spec, unroll=1)).build()
        assert ctx2.ledger.compile_s > ctx1.ledger.compile_s

    def test_failed_build_charged(self, spec):
        ctx = Context(AMD_HD7970, seed=0)
        with pytest.raises(BuildError):
            Program(ctx, spec, make_config(spec, wg_x=128, wg_y=8)).build()
        assert ctx.ledger.failed_s == pytest.approx(FAILED_BUILD_COST_S)
        assert ctx.ledger.compile_s == 0

    def test_runs_charged(self, spec):
        ctx = Context(NVIDIA_K40, seed=0)
        kernel = Program(ctx, spec, make_config(spec)).build()
        e = kernel.enqueue()
        assert ctx.ledger.run_s == pytest.approx(e.duration_s)
