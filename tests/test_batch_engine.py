"""The batch measurement engine's core contract: vectorized == scalar.

``Measurer.measure_batch`` (and the batch simulator path under it) must be
*bit-identical* to looping ``Measurer.measure`` — same valid/invalid split,
same measured values, same cost-ledger totals, same RNG stream consumption,
same cache and DB contents.  Everything downstream (search baselines, the
tuner, campaigns, the oracle) relies on this equivalence, so it is pinned
here across all three kernels, CPU and GPU devices, duplicates, cache hits
and DB hits.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.measure import Measurer
from repro.core.results import MeasurementDB
from repro.kernels import ConvolutionKernel, RaycastingKernel, StereoKernel
from repro.runtime import Context
from repro.simulator import (
    AMD_HD7970,
    INTEL_I7_3770,
    NVIDIA_K40,
    execute_batch,
    validate_batch,
)
from repro.simulator.executor import KernelExecutor
from repro.simulator.workload import WorkloadBatch

CASES = [
    ("convolution", ConvolutionKernel, NVIDIA_K40, 3),
    ("convolution-amd", ConvolutionKernel, AMD_HD7970, 3),
    ("raycasting", RaycastingKernel, INTEL_I7_3770, 1),
    ("stereo", StereoKernel, NVIDIA_K40, 5),
]

_SPECS = {}


def make_spec(cls):
    if cls not in _SPECS:
        _SPECS[cls] = cls()
    return _SPECS[cls]


def scalar_reference(measurer, indices):
    """Loop the scalar path, collecting the same shape measure_batch returns."""
    ok_i, ok_t, bad = [], [], []
    for i in indices:
        t = measurer.measure(int(i))
        if t is None:
            bad.append(int(i))
        else:
            ok_i.append(int(i))
            ok_t.append(t)
    return (
        np.asarray(ok_i, dtype=np.int64),
        np.asarray(ok_t, dtype=np.float64),
        np.asarray(bad, dtype=np.int64),
    )


def ledger_of(ctx):
    return (ctx.ledger.compile_s, ctx.ledger.run_s, ctx.ledger.failed_s)


def mixed_indices(spec, rng, n=300):
    """Random indices with intra-batch duplicates mixed in."""
    base = rng.integers(0, spec.space.size, size=n)
    dups = rng.choice(base, size=n // 5)
    out = np.concatenate([base, dups])
    rng.shuffle(out)
    return out


@pytest.mark.parametrize("name,cls,device,repeats", CASES)
class TestBatchEqualsScalar:
    def test_bitwise_identical_measurements(self, name, cls, device, repeats):
        spec = make_spec(cls)
        indices = mixed_indices(spec, np.random.default_rng(hash(name) % 2**31))
        ctx_a, ctx_b = Context(device, seed=7), Context(device, seed=7)
        ma = Measurer(ctx_a, spec, repeats=repeats)
        mb = Measurer(ctx_b, spec, repeats=repeats)

        oks, times, bads = scalar_reference(ma, indices)
        ms = mb.measure_batch(indices)

        assert np.array_equal(oks, ms.indices)
        assert np.array_equal(times, ms.times_s)
        assert np.array_equal(bads, ms.invalid_indices)
        assert ledger_of(ctx_a) == ledger_of(ctx_b)
        assert ma._cache == mb._cache
        # both paths consumed the same number of noise draws
        assert ctx_a.rng.standard_normal() == ctx_b.rng.standard_normal()

    def test_re_measuring_cached_batch_matches(self, name, cls, device, repeats):
        spec = make_spec(cls)
        rng = np.random.default_rng(3)
        indices = spec.space.sample_indices(120, rng)
        ctx_a, ctx_b = Context(device, seed=11), Context(device, seed=11)
        ma = Measurer(ctx_a, spec, repeats=repeats)
        mb = Measurer(ctx_b, spec, repeats=repeats)
        for i in indices[:60]:  # pre-populate the caches identically
            ma.measure(i)
            mb.measure(i)

        oks, times, bads = scalar_reference(ma, indices)
        ms = mb.measure_batch(indices)

        assert np.array_equal(oks, ms.indices)
        assert np.array_equal(times, ms.times_s)
        assert np.array_equal(bads, ms.invalid_indices)
        assert ledger_of(ctx_a) == ledger_of(ctx_b)

    def test_db_hits_match_scalar(self, name, cls, device, repeats):
        spec = make_spec(cls)
        rng = np.random.default_rng(5)
        indices = mixed_indices(spec, rng, n=150)
        seeded = {int(i): 0.001 * (k + 1) for k, i in enumerate(indices[:20])}
        seeded[int(indices[25])] = None  # a known-invalid entry
        dbs = [MeasurementDB(), MeasurementDB()]
        for db in dbs:
            db.put_many(spec.name, device.name, seeded)

        ctx_a, ctx_b = Context(device, seed=23), Context(device, seed=23)
        ma = Measurer(ctx_a, spec, repeats=repeats, db=dbs[0])
        mb = Measurer(ctx_b, spec, repeats=repeats, db=dbs[1])

        oks, times, bads = scalar_reference(ma, indices)
        ms = mb.measure_batch(indices)

        assert np.array_equal(oks, ms.indices)
        assert np.array_equal(times, ms.times_s)
        assert np.array_equal(bads, ms.invalid_indices)
        assert ledger_of(ctx_a) == ledger_of(ctx_b)
        assert dbs[0].table(spec.name, device.name) == dbs[1].table(
            spec.name, device.name
        )


class TestBatchSimulatorPath:
    @pytest.mark.parametrize("name,cls,device,repeats", CASES)
    def test_workload_batch_matches_scalar_profiles(
        self, name, cls, device, repeats
    ):
        spec = make_spec(cls)
        rng = np.random.default_rng(17)
        indices = spec.space.sample_indices(200, rng)
        wb = spec.workload_batch(indices, device)
        ref = WorkloadBatch.from_profiles(
            [spec.workload(spec.space[int(i)], device) for i in indices]
        )
        for f in dataclasses.fields(WorkloadBatch):
            a, b = getattr(wb, f.name), getattr(ref, f.name)
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b), f"column {f.name} differs"
            else:
                assert a == b, f"field {f.name} differs"

    @pytest.mark.parametrize("name,cls,device,repeats", CASES)
    def test_execute_batch_matches_scalar_executor(
        self, name, cls, device, repeats
    ):
        spec = make_spec(cls)
        rng = np.random.default_rng(29)
        indices = spec.space.sample_indices(200, rng)
        tuples = spec.config_tuples(indices)
        wb = spec.workload_batch(indices, device, config_tuples=tuples)
        be = execute_batch(wb, device, kernel_name=spec.name, config_tuples=tuples)
        stages = validate_batch(wb, device)
        assert np.array_equal(be.stages, stages)
        executor = KernelExecutor(device, spec.name)
        for p, i in enumerate(indices):
            profile = spec.workload(spec.space[int(i)], device)
            if stages[p] != 0:
                assert np.isnan(be.times[p])
                continue
            assert be.times[p] == executor.time(profile, tuples[p])

    def test_sigma_zero_device_consumes_no_probe_draws(self):
        spec = make_spec(ConvolutionKernel)
        quiet = dataclasses.replace(NVIDIA_K40, timing_noise_sigma=0.0)
        indices = mixed_indices(spec, np.random.default_rng(31), n=100)
        ctx_a, ctx_b = Context(quiet, seed=13), Context(quiet, seed=13)
        ma, mb = Measurer(ctx_a, spec), Measurer(ctx_b, spec)
        oks, times, bads = scalar_reference(ma, indices)
        ms = mb.measure_batch(indices)
        assert np.array_equal(times, ms.times_s)
        assert ledger_of(ctx_a) == ledger_of(ctx_b)
        assert ctx_a.rng.standard_normal() == ctx_b.rng.standard_normal()

    def test_empty_batch(self):
        spec = make_spec(ConvolutionKernel)
        ctx = Context(NVIDIA_K40, seed=1)
        before = ledger_of(ctx)
        ms = Measurer(ctx, spec).measure_batch([])
        assert ms.n_valid == 0 and ms.n_invalid == 0
        assert ledger_of(ctx) == before


class TestEngineStats:
    def test_counters_partition_requests(self):
        spec = make_spec(ConvolutionKernel)
        ctx = Context(NVIDIA_K40, seed=2)
        db = MeasurementDB()
        db.put(spec.name, NVIDIA_K40.name, 0, 1e-3)
        m = Measurer(ctx, spec, db=db)
        rng = np.random.default_rng(0)
        indices = np.concatenate(
            [[0], spec.space.sample_indices(50, rng)]
        )
        m.measure_batch(indices)
        m.measure_batch(indices)  # second pass: everything served from db
        s = m.stats
        assert s.n_requested == 2 * len(indices)
        assert s.n_simulated + s.n_cache_hits + s.n_db_hits == s.n_requested
        assert s.n_db_hits >= len(indices) + 1
        assert 0.0 < s.cache_hit_rate <= 1.0
        assert s.configs_per_sec > 0

    def test_merge_adds_counters(self):
        from repro.core.measure import EngineStats

        a = EngineStats(n_requested=5, n_simulated=3, elapsed_s=1.0)
        b = EngineStats(n_requested=7, n_db_hits=7, elapsed_s=0.5)
        c = a.merge(b)
        assert c.n_requested == 12 and c.n_simulated == 3 and c.n_db_hits == 7
        assert c.elapsed_s == 1.5
