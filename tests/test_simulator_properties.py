"""Property-based tests on the simulator's cost-model invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulator.devices import AMD_HD7970, INTEL_I7_3770, NVIDIA_K40
from repro.simulator.executor import execute, simulate_kernel_time
from repro.simulator.validity import validate
from repro.simulator.workload import WorkloadProfile

DEVICES = (INTEL_I7_3770, NVIDIA_K40, AMD_HD7970)

pow2s = st.sampled_from([1, 2, 4, 8, 16, 32])


@st.composite
def profiles(draw):
    wx = draw(pow2s)
    wy = draw(pow2s)
    gx = wx * draw(st.integers(1, 64))
    gy = wy * draw(st.integers(1, 64))
    return WorkloadProfile(
        global_size=(gx, gy),
        workgroup=(wx, wy),
        flops_per_thread=draw(st.floats(1.0, 1e4)),
        global_reads=draw(st.floats(0.0, 100.0)),
        global_writes=draw(st.floats(0.0, 10.0)),
        image_reads=draw(st.floats(0.0, 100.0)),
        local_reads=draw(st.floats(0.0, 100.0)),
        local_writes=draw(st.floats(0.0, 10.0)),
        constant_reads=draw(st.floats(0.0, 50.0)),
        local_mem_per_wg_bytes=draw(st.integers(0, 32 * 1024)),
        registers_per_thread=draw(st.integers(8, 64)),
        coalesced_fraction=draw(st.floats(0.0, 1.0)),
        spatial_locality=draw(st.floats(0.0, 1.0)),
        footprint_bytes=draw(st.floats(0.0, 1e9)),
        loop_iterations_per_thread=draw(st.floats(0.0, 1e4)),
        barriers_per_workgroup=draw(st.floats(0.0, 4.0)),
        wg_footprint_bytes=draw(st.floats(0.0, 1e6)),
    )


@given(profiles(), st.sampled_from(DEVICES))
@settings(max_examples=150, deadline=None)
def test_time_positive_and_finite_for_valid_profiles(profile, device):
    if not validate(profile, device):
        return
    t = simulate_kernel_time(profile, device)
    assert np.isfinite(t)
    assert t > 0


@given(profiles(), st.sampled_from(DEVICES))
@settings(max_examples=80, deadline=None)
def test_more_arithmetic_never_faster(profile, device):
    if not validate(profile, device):
        return
    import dataclasses

    heavier = dataclasses.replace(
        profile, flops_per_thread=profile.flops_per_thread * 4.0
    )
    assert simulate_kernel_time(heavier, device) >= simulate_kernel_time(
        profile, device
    )


@given(profiles(), st.sampled_from(DEVICES))
@settings(max_examples=80, deadline=None)
def test_more_global_traffic_never_faster(profile, device):
    if not validate(profile, device):
        return
    import dataclasses

    heavier = dataclasses.replace(profile, global_reads=profile.global_reads + 50.0)
    assert simulate_kernel_time(heavier, device) >= simulate_kernel_time(
        profile, device
    )


@given(profiles(), st.sampled_from(DEVICES))
@settings(max_examples=80, deadline=None)
def test_better_coalescing_never_slower(profile, device):
    if not validate(profile, device):
        return
    import dataclasses

    best = dataclasses.replace(profile, coalesced_fraction=1.0)
    worst = dataclasses.replace(profile, coalesced_fraction=0.0)
    assert simulate_kernel_time(best, device) <= simulate_kernel_time(worst, device)


@given(profiles(), st.sampled_from(DEVICES), st.tuples(st.integers(0, 7), st.integers(0, 7)))
@settings(max_examples=80, deadline=None)
def test_jitter_bounded(profile, device, key_bits):
    """Structured + idiosyncratic jitter stays within its clipped range."""
    if not validate(profile, device):
        return
    base = simulate_kernel_time(profile, device)
    jittered = simulate_kernel_time(
        profile, device, jitter_key=("k", (key_bits[0], key_bits[1], 1, 2, 0))
    )
    sigma = device.jitter_sigma + device.jitter_idio_sigma
    bound = np.exp(4.0 * sigma + 4.0 * sigma)  # 4-sigma clip on each part
    assert base / bound <= jittered <= base * bound


@given(profiles())
@settings(max_examples=60, deadline=None)
def test_breakdown_parts_sum_consistently(profile):
    device = NVIDIA_K40
    if not validate(profile, device):
        return
    b = execute(profile, device)
    busy = max(b.compute_time, b.memory.total) + (1.0 - b.overlap) * min(
        b.compute_time, b.memory.total
    )
    # total >= quantized busy + overheads (latency term is the remainder).
    assert b.total_time >= busy * b.wave_quantization * 0.999
    assert b.total_time >= b.overhead_time


@given(profiles(), st.sampled_from(DEVICES))
@settings(max_examples=60, deadline=None)
def test_validity_is_deterministic(profile, device):
    assert validate(profile, device).valid == validate(profile, device).valid
