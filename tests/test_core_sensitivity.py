"""Tests for the sensitivity/interaction analyzer."""

import numpy as np
import pytest

from repro.core.sensitivity import (
    interaction_strength,
    parameter_sensitivity,
    sensitivity_report,
)
from repro.params import ParameterSpace, boolean, pow2


@pytest.fixture
def toy_space():
    return ParameterSpace(
        [pow2("a", 1, 8), pow2("b", 1, 8), boolean("c")]
    )


def additive_fn(space):
    """log t = log2(a) + 2*log2(b); c irrelevant."""

    def predict(indices):
        vals = space.values_matrix(np.asarray(indices))
        return np.exp(np.log2(vals[:, 0]) + 2 * np.log2(vals[:, 1]))

    return predict


def interacting_fn(space):
    """log t = log2(a) * log2(b): strongly non-additive."""

    def predict(indices):
        vals = space.values_matrix(np.asarray(indices))
        return np.exp(np.log2(vals[:, 0]) * np.log2(vals[:, 1]))

    return predict


class TestParameterSensitivity:
    def test_recovers_relative_magnitudes(self, toy_space):
        sens = parameter_sensitivity(
            additive_fn(toy_space), toy_space, np.random.default_rng(0), n_base=24
        )
        # b's coefficient is twice a's; c does nothing.
        assert sens["b"] == pytest.approx(2 * sens["a"], rel=1e-6)
        assert sens["c"] == pytest.approx(0.0, abs=1e-9)
        assert sens["a"] == pytest.approx(3.0, rel=1e-6)  # log2 range over 1..8

    def test_nan_predictions_skipped(self, toy_space):
        def predict(indices):
            out = additive_fn(toy_space)(indices)
            out[::2] = np.nan
            return out

        sens = parameter_sensitivity(
            predict, toy_space, np.random.default_rng(0), n_base=16
        )
        # Sweeps of the 4-valued parameters keep >= 2 finite points and
        # stay measurable; the 2-valued switch may lose every pair.
        assert sens["a"] == sens["a"]
        assert sens["b"] == sens["b"]

    def test_validation(self, toy_space):
        with pytest.raises(ValueError):
            parameter_sensitivity(
                additive_fn(toy_space), toy_space, np.random.default_rng(0), n_base=0
            )


class TestInteractionStrength:
    def test_zero_for_additive(self, toy_space):
        v = interaction_strength(
            additive_fn(toy_space), toy_space, "a", "b", np.random.default_rng(0)
        )
        assert v == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_multiplicative(self, toy_space):
        v = interaction_strength(
            interacting_fn(toy_space), toy_space, "a", "b", np.random.default_rng(0)
        )
        assert v > 0.5

    def test_requires_two_values(self):
        space = ParameterSpace([pow2("a", 1, 1), boolean("c")])
        with pytest.raises(ValueError):
            interaction_strength(
                lambda idx: np.ones(len(idx)), space, "a", "c",
                np.random.default_rng(0),
            )


class TestOnRealKernel:
    def test_local_ppt_interaction_exceeds_pad_interleaved(self):
        """The tile-size interaction (use_local x ppt_y) must dwarf a pair
        with no mechanism linking them (pad x interleaved)."""
        from repro.experiments.oracle import TrueTimeOracle
        from repro.kernels import ConvolutionKernel
        from repro.simulator import NVIDIA_K40

        spec = ConvolutionKernel()
        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        rng = np.random.default_rng(1)
        strong = interaction_strength(
            oracle.times_for, spec.space, "use_local", "ppt_y", rng, n_base=60
        )
        weak = interaction_strength(
            oracle.times_for, spec.space, "pad", "interleaved",
            np.random.default_rng(1), n_base=60,
        )
        assert strong > weak


class TestReport:
    def test_sorted_and_rendered(self):
        txt = sensitivity_report({"a": 0.5, "b": 1.5, "c": float("nan")})
        lines = txt.splitlines()
        assert lines[0].startswith("b")
        assert "n/a" in txt

    def test_top_limits_rows(self):
        txt = sensitivity_report({"a": 1.0, "b": 2.0, "c": 3.0}, top=2)
        assert len(txt.splitlines()) == 2
