"""OnlineTuner end-to-end: detection, incremental recovery, quiescence.

The contract under test (docs/robustness.md, "Online drift detection"):

* a regime shift injected after the detector is armed is detected and
  answered with an *incremental* re-tune whose ledger spend is a small
  fraction of the initial campaign's;
* the whole loop is deterministic — same seeds, same drift profile,
  same report, bit for bit;
* on a quiet machine (drift ``none``), the loop NEVER re-tunes, even
  under the flaky-gpu fault profile — monitoring must not burn budget
  chasing noise (the quiescence gate, ``drift``-marked).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drift import DetectorSettings
from repro.core.online import OnlineSettings, OnlineTuner
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.kernels import get_benchmark
from repro.runtime import Context
from repro.simulator import NVIDIA_K40

KERNEL = "convolution"

# Small but healthy campaign: the shapes the daemon smoke uses, scaled
# down for test wall-time.
TUNE = dict(n_train=120, m_candidates=12, k_bag=5, candidate_pool=4000)
CAL = 12


def _tune_cost_s(seed: int) -> float:
    """Ledger spend of the initial tune alone (deterministic), used to
    place the drift onset after the detector's calibration window."""
    ctx = Context(NVIDIA_K40, seed=seed)
    tuner = MLAutoTuner(ctx, get_benchmark(KERNEL), TunerSettings(**TUNE))
    tuner.tune(np.random.default_rng(seed), model_seed=seed)
    return ctx.ledger.total_s


def _run(seed: int, drift, faults=None, steps=60, max_retunes=8):
    ctx = Context(NVIDIA_K40, seed=seed, drift=drift, faults=faults)
    online = OnlineTuner(
        ctx,
        get_benchmark(KERNEL),
        settings=OnlineSettings(
            steps=steps,
            step_interval_s=30.0,
            detector=DetectorSettings(calibration=CAL),
            retune_window=16,
            max_retunes=max_retunes,
        ),
        tune_settings=TunerSettings(**TUNE),
    )
    report = online.run(np.random.default_rng(seed), model_seed=seed)
    return report, ctx


def _shift_profile(seed: int) -> str:
    onset = _tune_cost_s(seed) + (CAL + 4) * 30.0
    return (
        f"thermal-throttle:onset_s={onset:.1f},ramp_s=120,"
        "throttle_factor=1.5"
    )


def test_settings_validation():
    with pytest.raises(ValueError):
        OnlineSettings(steps=-1)
    with pytest.raises(ValueError):
        OnlineSettings(step_interval_s=-1.0)
    with pytest.raises(ValueError):
        OnlineSettings(retune_window=0)
    with pytest.raises(ValueError):
        OnlineSettings(max_retunes=-1)


def test_detects_shift_and_recovers_incrementally():
    seed = 7
    report, ctx = _run(seed, _shift_profile(seed))
    assert not report.initial.failed
    assert report.alarms >= 1
    assert len(report.retunes) >= 1
    event = report.retunes[0]
    # The estimated shift tracks the injected throttle (alarm may land
    # mid-ramp, so anywhere meaningfully above quiet and at/below 1.5).
    assert 1.1 < event.ratio < 1.6
    # Incremental: the response costs a small fraction of the campaign.
    assert report.retune_cost_s < 0.5 * report.initial_cost_s
    assert event.cost_s > 0.0
    # Everything was charged through the one ledger.
    assert ctx.ledger.total_s == pytest.approx(
        report.initial_cost_s + report.monitor_cost_s + report.retune_cost_s
    )
    # The trajectory recorded the alarm step.
    alarm_steps = [p["step"] for p in report.trajectory if p["alarm"]]
    assert alarm_steps and alarm_steps[0] == event.step
    # Report serializes (the serve watch payload).
    d = report.as_dict(include_trajectory=True)
    assert d["alarms"] == report.alarms
    assert len(d["retunes"]) == len(report.retunes)
    assert len(d["trajectory"]) == report.steps


def test_deterministic_replay():
    seed = 7
    profile = _shift_profile(seed)
    rep_a, ctx_a = _run(seed, profile)
    rep_b, ctx_b = _run(seed, profile)
    assert rep_a.as_dict(include_trajectory=True) == rep_b.as_dict(
        include_trajectory=True
    )
    assert float.hex(ctx_a.ledger.total_s) == float.hex(ctx_b.ledger.total_s)


def test_max_retunes_caps_responses():
    # A regime shift every ~4 probes: far more alarms than the cap.
    seed = 3
    onset = _tune_cost_s(seed) + (CAL + 2) * 30.0
    profile = (
        f"noisy-neighbor:onset_s={onset:.1f},regime_duration_s=120,"
        "contention_min=1.3,contention_max=2.0,contention_sigma=0.05"
    )
    report, _ = _run(seed, profile, steps=80, max_retunes=2)
    assert len(report.retunes) <= 2
    assert report.alarms >= 1


def test_degraded_initial_tune_short_circuits():
    ctx = Context(NVIDIA_K40, seed=1)
    online = OnlineTuner(
        ctx,
        get_benchmark(KERNEL),
        settings=OnlineSettings(steps=50),
        tune_settings=TunerSettings(**TUNE, max_cost_s=1e-6),
    )
    report = online.run(np.random.default_rng(1), model_seed=1)
    # Budget death before stage one finished: degraded (or outright
    # failed) tune, and no fitted model — nothing to monitor against.
    assert report.initial.failed or report.initial.degraded
    assert online.model is None
    assert report.steps == 0
    assert report.alarms == 0 and not report.retunes
    assert report.monitor_cost_s == 0.0


@pytest.mark.drift
@pytest.mark.parametrize("seed", range(20))
def test_quiescence_no_retunes_on_quiet_machine(seed):
    """drift 'none' + flaky-gpu faults, 20 seeds: the detector never
    fires, the tuner never re-tunes, and monitoring costs stay tiny."""
    report, ctx = _run(seed, "none", faults="flaky-gpu", steps=40)
    assert ctx.drift is None
    if report.initial.failed:  # fault-profile worst case: nothing to watch
        pytest.skip("initial tune failed under faults for this seed")
    assert report.alarms == 0
    assert report.retunes == []
    assert report.retune_cost_s == 0.0
    # Monitoring spends only the incumbent's (mostly cached) re-measures.
    assert report.monitor_cost_s < 0.2 * report.initial_cost_s
