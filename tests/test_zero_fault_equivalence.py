"""The zero-fault regression gate.

``tests/data/zero_fault_fixtures.json`` was recorded from the pre-PR code
(commit 6046c7c), before the fault-injection runtime and the resilient
measurement pipeline existed.  With no fault profile attached, every
output of the new code — measured values, valid/invalid splits, ledger
totals, the RNG stream position, the tuners' picks and costs — must be
**bit-identical** to those recordings: resilience must cost nothing when
nothing fails.

Values are compared through ``float.hex`` (no tolerance), the RNG through
the PCG64 state word (any extra or missing draw shifts it).

The tuner fixture runs with ``fit_mode="classic"`` — the training engine
the recordings were made with; the adaptive engine's equivalence to it is
pinned separately by ``tests/test_ml_adaptive.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.iterative import IterativeSettings, IterativeTuner
from repro.core.measure import Measurer
from repro.core.tuner import MLAutoTuner, TunerSettings
from repro.kernels import get_benchmark
from repro.runtime import Context
from repro.simulator import NVIDIA_K40

FIXTURES = json.loads(
    (Path(__file__).parent / "data" / "zero_fault_fixtures.json").read_text()
)
KERNELS = sorted(FIXTURES["kernels"])


def _ledger_hex(ledger) -> dict:
    return {
        "compile_s": float.hex(ledger.compile_s),
        "run_s": float.hex(ledger.run_s),
        "failed_s": float.hex(ledger.failed_s),
        "total_s": float.hex(ledger.total_s),
    }


def _rng_word(ctx) -> str:
    return str(ctx.measurement.rng.bit_generator.state["state"]["state"])


@pytest.mark.parametrize("kernel", KERNELS)
def test_serial_measurements_bit_identical(kernel):
    want = FIXTURES["kernels"][kernel]["serial"]
    spec = get_benchmark(kernel)
    ctx = Context(NVIDIA_K40, seed=123)
    measurer = Measurer(ctx, spec)
    indices = spec.space.sample_indices(40, np.random.default_rng(42))
    assert [int(i) for i in indices] == want["indices"]
    values = [measurer.measure(int(i)) for i in indices]
    got = [None if v is None else float.hex(v) for v in values]
    assert got == want["values"]
    assert _ledger_hex(ctx.ledger) == want["ledger"]
    assert ctx.ledger.retry_s == 0.0  # the new bucket never fills fault-free
    assert _rng_word(ctx) == want["rng_state"]
    # No resilience machinery fired.
    s = measurer.stats
    assert (s.n_transient, s.n_timeouts, s.n_retries, s.n_quarantined) == (
        0, 0, 0, 0,
    )
    assert measurer.quarantine == set()


@pytest.mark.parametrize("kernel", KERNELS)
def test_batch_measurements_bit_identical(kernel):
    want = FIXTURES["kernels"][kernel]["batch"]
    spec = get_benchmark(kernel)
    ctx = Context(NVIDIA_K40, seed=123)
    measurer = Measurer(ctx, spec)
    indices = spec.space.sample_indices(40, np.random.default_rng(42))
    ms = measurer.measure_batch(indices)
    assert [int(i) for i in ms.indices] == want["valid_indices"]
    assert [float.hex(float(t)) for t in ms.times_s] == want["times"]
    assert [int(i) for i in ms.invalid_indices] == want["invalid_indices"]
    assert ms.n_quarantined == 0
    assert _ledger_hex(ctx.ledger) == want["ledger"]
    assert ctx.ledger.retry_s == 0.0
    assert _rng_word(ctx) == want["rng_state"]


@pytest.mark.slow
@pytest.mark.parametrize("kernel", KERNELS)
def test_tuner_pick_bit_identical(kernel):
    want = FIXTURES["kernels"][kernel]["tune"]
    spec = get_benchmark(kernel)
    ctx = Context(NVIDIA_K40, seed=7)
    # fit_mode="classic": the fixtures anchor to the pre-PR trainer, and
    # this gate pins the measurement/ledger/RNG machinery, not the model
    # engine.  Adaptive-vs-classic training parity has its own anchor
    # (tests/test_ml_adaptive.py, freeze-never bit-identity).
    tuner = MLAutoTuner(
        ctx,
        spec,
        TunerSettings(n_train=600, m_candidates=60, k_bag=11, fit_mode="classic"),
    )
    result = tuner.tune(np.random.default_rng(7), model_seed=7)
    assert result.best_index == want["best_index"]
    assert float.hex(result.best_time_s) == want["best_time_s"]
    assert result.n_trained == want["n_trained"]
    assert result.n_stage2 == want["n_stage2"]
    assert result.stage2_invalid == want["stage2_invalid"]
    assert float.hex(result.total_cost_s) == want["total_cost_s"]
    assert _ledger_hex(ctx.ledger) == want["ledger"]
    assert _rng_word(ctx) == want["rng_state"]
    # The result payload of a fault-free run carries no degradation.
    assert result.degraded is False
    assert result.degraded_reason == ""
    assert dict(result.failure_breakdown) == {}
    assert tuner.replenish_rounds_used == 0


@pytest.mark.slow
@pytest.mark.parametrize("kernel", KERNELS)
def test_iterative_pick_bit_identical(kernel):
    want = FIXTURES["kernels"][kernel]["iterative"]
    spec = get_benchmark(kernel)
    ctx = Context(NVIDIA_K40, seed=11)
    tuner = IterativeTuner(
        ctx,
        spec,
        IterativeSettings(total_budget=300, rounds=2, fit_mode="classic"),
    )
    result = tuner.tune(np.random.default_rng(11), model_seed=11)
    assert result.best_index == want["best_index"]
    assert float.hex(result.best_time_s) == want["best_time_s"]
    assert float.hex(result.total_cost_s) == want["total_cost_s"]
    assert _ledger_hex(ctx.ledger) == want["ledger"]
    assert _rng_word(ctx) == want["rng_state"]
    assert result.degraded is False
    assert dict(result.failure_breakdown) == {}
