"""Shared fixtures: small problem sizes for functional kernel tests.

The *timing* model always reflects the problem a spec was built with, so
timing tests use default (paper-sized) specs; *functional* tests use these
scaled-down problems to keep NumPy execution fast.
"""

import numpy as np
import pytest

from repro.kernels.convolution import ConvolutionKernel, ConvolutionProblem
from repro.kernels.raycasting import RaycastingKernel, RaycastingProblem
from repro.kernels.stereo import StereoKernel, StereoProblem


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_convolution():
    return ConvolutionKernel(ConvolutionProblem(width=64, height=48, ksize=5))


@pytest.fixture
def small_raycasting():
    return RaycastingKernel(RaycastingProblem(volume=16, image=24, tf_size=32))


@pytest.fixture
def small_stereo():
    return StereoKernel(StereoProblem(image=48, disparities=8, window=4))


@pytest.fixture
def paper_convolution():
    return ConvolutionKernel()


@pytest.fixture
def paper_raycasting():
    return RaycastingKernel()


@pytest.fixture
def paper_stereo():
    return StereoKernel()
