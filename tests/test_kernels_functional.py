"""Functional-equivalence tests: every valid configuration computes the
same output as the reference ("These candidates are all functionally
equivalent, but the different values of the tuning parameters causes their
performance to vary", §5.1)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st


def config_strategy(spec):
    return st.integers(0, spec.space.size - 1).map(lambda i: spec.space[i])


class TestConvolutionFunctional:
    def test_reference_is_box_filter(self, small_convolution, rng):
        inputs = small_convolution.make_inputs(rng)
        out = small_convolution.reference(inputs)
        img = inputs["image"]
        p = small_convolution.problem
        # Interior pixel: plain mean of the 5x5 neighbourhood.
        y, x = 10, 20
        r = p.ksize // 2
        expect = img[y - r : y + r + 1, x - r : x + r + 1].mean()
        assert out[y, x] == pytest.approx(expect, rel=1e-5)

    def test_border_clamps_to_edge(self, small_convolution, rng):
        inputs = small_convolution.make_inputs(rng)
        out = small_convolution.reference(inputs)
        assert np.all(np.isfinite(out))
        # Corner equals the clamped-window mean computed by hand.
        img = inputs["image"]
        p = small_convolution.problem
        r = p.ksize // 2
        padded = np.pad(img, r, mode="edge")
        expect = padded[: p.ksize, : p.ksize].mean()
        assert out[0, 0] == pytest.approx(expect, rel=1e-5)

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(pad=0, use_local=0),
            dict(pad=1, use_local=1),
            dict(pad=0, use_local=1, interleaved=1),
            dict(pad=1, use_image=1, unroll=1),
            dict(wg_x=128, wg_y=1, ppt_x=1, ppt_y=16),
            dict(ppt_x=128, ppt_y=128),  # block bigger than the image
        ],
    )
    def test_config_paths_match_reference(self, small_convolution, rng, overrides):
        base = dict(
            wg_x=8, wg_y=4, ppt_x=2, ppt_y=2, use_image=0, use_local=0,
            pad=0, interleaved=0, unroll=0,
        )
        base.update(overrides)
        cfg = small_convolution.space.config(**base)
        inputs = small_convolution.make_inputs(rng)
        ref = small_convolution.reference(inputs)
        out = small_convolution.run(cfg, inputs)
        np.testing.assert_array_equal(out, ref)

    @given(data=st.data())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_random_configs_bitwise_equal(self, small_convolution, data):
        cfg = data.draw(config_strategy(small_convolution))
        inputs = small_convolution.make_inputs(np.random.default_rng(7))
        np.testing.assert_array_equal(
            small_convolution.run(cfg, inputs), small_convolution.reference(inputs)
        )


class TestRaycastingFunctional:
    def test_output_shape_and_range(self, small_raycasting, rng):
        inputs = small_raycasting.make_inputs(rng)
        out = small_raycasting.reference(inputs)
        n = small_raycasting.problem.image
        assert out.shape == (n, n, 4)
        assert np.all(out >= 0)
        assert np.all(out[..., 3] <= 1.0 + 1e-5)  # compositing keeps alpha <= 1

    def test_empty_volume_gives_black_image(self, small_raycasting):
        p = small_raycasting.problem
        inputs = {
            "volume": np.zeros((p.volume,) * 3, dtype=np.float32),
            "tf": np.zeros((p.tf_size, 4), dtype=np.float32),
        }
        out = small_raycasting.reference(inputs)
        assert np.all(out == 0)

    @pytest.mark.parametrize("unroll", [1, 2, 4, 8, 16])
    def test_unroll_factors_match_reference(self, small_raycasting, rng, unroll):
        cfg = small_raycasting.space.config(
            wg_x=4, wg_y=4, ppt_x=2, ppt_y=1, img_data=0, img_tf=0,
            local_tf=0, const_tf=0, interleaved=0, unroll=unroll,
        )
        inputs = small_raycasting.make_inputs(rng)
        np.testing.assert_array_equal(
            small_raycasting.run(cfg, inputs), small_raycasting.reference(inputs)
        )

    @given(data=st.data())
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_random_configs_bitwise_equal(self, small_raycasting, data):
        cfg = data.draw(config_strategy(small_raycasting))
        inputs = small_raycasting.make_inputs(np.random.default_rng(3))
        np.testing.assert_array_equal(
            small_raycasting.run(cfg, inputs), small_raycasting.reference(inputs)
        )


class TestStereoFunctional:
    def test_recovers_constant_shift(self, small_stereo):
        """A left image that is the right image shifted by d should give
        disparity ~d away from borders."""
        p = small_stereo.problem
        rng = np.random.default_rng(5)
        right = rng.integers(0, 256, size=(p.image, p.image), dtype=np.int64)
        d_true = 3
        left = np.roll(right, d_true, axis=1)
        out = small_stereo.reference({"left": left, "right": right})
        core = out[4 : p.image - 8, 8 : p.image - 8]
        assert (core == d_true).mean() > 0.9

    def test_ties_break_to_lowest_disparity(self, small_stereo):
        p = small_stereo.problem
        flat = np.full((p.image, p.image), 7, dtype=np.int64)
        out = small_stereo.reference({"left": flat, "right": flat})
        assert np.all(out == 0)

    @pytest.mark.parametrize("fd", [1, 2, 4, 8])
    def test_disparity_chunking_matches(self, small_stereo, rng, fd):
        cfg = small_stereo.space.config(
            wg_x=8, wg_y=8, ppt_x=1, ppt_y=1, img_left=0, img_right=0,
            local_left=0, local_right=0, unroll_disp=fd,
            unroll_diff_x=1, unroll_diff_y=1,
        )
        inputs = small_stereo.make_inputs(rng)
        np.testing.assert_array_equal(
            small_stereo.run(cfg, inputs), small_stereo.reference(inputs)
        )

    @given(data=st.data())
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_random_configs_exact_equal(self, small_stereo, data):
        cfg = data.draw(config_strategy(small_stereo))
        inputs = small_stereo.make_inputs(np.random.default_rng(11))
        np.testing.assert_array_equal(
            small_stereo.run(cfg, inputs), small_stereo.reference(inputs)
        )
