"""Unit and property tests for repro.params.space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import Configuration, ParameterSpace, boolean, choice, pow2


@pytest.fixture
def small_space():
    return ParameterSpace(
        [
            pow2("wg_x", 1, 8),
            boolean("use_local"),
            choice("unroll", (1, 2, 4)),
        ]
    )


class TestConstruction:
    def test_size_is_product_of_cardinalities(self, small_space):
        assert small_space.size == 4 * 2 * 3
        assert len(small_space) == 24

    def test_paper_space_sizes(self):
        from repro.kernels import ConvolutionKernel, RaycastingKernel, StereoKernel

        assert ConvolutionKernel().space.size == 131072
        assert RaycastingKernel().space.size == 655360
        assert StereoKernel().space.size == 2359296

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace([boolean("a"), boolean("a")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace([])

    def test_parameter_lookup(self, small_space):
        assert small_space.parameter("wg_x").cardinality == 4
        with pytest.raises(KeyError):
            small_space.parameter("nope")

    def test_contains(self, small_space):
        assert "wg_x" in small_space
        assert "nope" not in small_space


class TestIndexing:
    def test_first_and_last(self, small_space):
        assert small_space[0].as_tuple() == (1, 0, 1)
        assert small_space[23].as_tuple() == (8, 1, 4)

    def test_most_significant_first(self, small_space):
        # last parameter varies fastest
        assert small_space[0]["unroll"] == 1
        assert small_space[1]["unroll"] == 2
        assert small_space[2]["unroll"] == 4
        assert small_space[3]["unroll"] == 1
        assert small_space[3]["use_local"] == 1

    def test_out_of_range(self, small_space):
        with pytest.raises(IndexError):
            small_space.digits_of(24)
        with pytest.raises(IndexError):
            small_space.digits_of(-1)

    def test_index_of_digits_validates(self, small_space):
        with pytest.raises(ValueError):
            small_space.index_of_digits([0, 0])  # wrong length
        with pytest.raises(ValueError):
            small_space.index_of_digits([4, 0, 0])  # digit out of range

    def test_config_constructor_roundtrip(self, small_space):
        c = small_space.config(wg_x=4, use_local=1, unroll=2)
        assert small_space[c.index] == c
        assert c["wg_x"] == 4

    def test_config_constructor_rejects_bad_names(self, small_space):
        with pytest.raises(ValueError, match="missing"):
            small_space.config(wg_x=4)
        with pytest.raises(ValueError, match="unknown"):
            small_space.config(wg_x=4, use_local=1, unroll=2, bogus=3)

    def test_index_of_mapping(self, small_space):
        c = small_space[17]
        assert small_space.index_of(dict(c)) == 17
        assert small_space.index_of(c) == 17


class TestConfiguration:
    def test_mapping_protocol(self, small_space):
        c = small_space[5]
        assert set(c.keys()) == {"wg_x", "use_local", "unroll"}
        assert len(c) == 3
        assert dict(c) == {name: c[name] for name in c}

    def test_equality_with_mapping(self, small_space):
        c = small_space[5]
        assert c == dict(c)
        assert c != dict(c, wg_x=999)

    def test_hashable(self, small_space):
        assert len({small_space[1], small_space[1], small_space[2]}) == 2

    def test_repr_contains_values(self, small_space):
        assert "wg_x" in repr(small_space[0])


class TestSampling:
    def test_without_replacement_unique(self, small_space):
        rng = np.random.default_rng(0)
        idx = small_space.sample_indices(24, rng)
        assert sorted(idx) == list(range(24))

    def test_too_many_without_replacement(self, small_space):
        with pytest.raises(ValueError):
            small_space.sample_indices(25, np.random.default_rng(0))

    def test_with_replacement_allows_any_n(self, small_space):
        idx = small_space.sample_indices(100, np.random.default_rng(0), replace=True)
        assert idx.shape == (100,)
        assert idx.min() >= 0 and idx.max() < 24

    def test_rejection_path_on_large_space(self):
        from repro.kernels import StereoKernel

        space = StereoKernel().space
        rng = np.random.default_rng(1)
        idx = space.sample_indices(5000, rng)
        assert len(set(int(i) for i in idx)) == 5000
        assert idx.max() < space.size

    def test_rejection_path_deterministic(self):
        from repro.kernels import StereoKernel

        space = StereoKernel().space
        a = space.sample_indices(5000, np.random.default_rng(3))
        b = space.sample_indices(5000, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)
        assert a.dtype == np.int64

    def test_rejection_path_with_collisions(self):
        # n large enough (vs 2.36M stereo configs) that the top-up loop
        # re-draws after collisions; the result must still be exactly n
        # unique in-range indices.
        from repro.kernels import StereoKernel

        space = StereoKernel().space
        idx = space.sample_indices(400_000, np.random.default_rng(5))
        assert idx.shape == (400_000,)
        assert np.unique(idx).size == idx.size
        assert idx.min() >= 0 and idx.max() < space.size

    def test_rejection_path_roughly_uniform(self):
        from repro.kernels import StereoKernel

        space = StereoKernel().space
        idx = space.sample_indices(50_000, np.random.default_rng(8))
        deciles = np.histogram(idx, bins=10, range=(0, space.size))[0]
        assert deciles.min() > 0.85 * idx.size / 10
        assert deciles.max() < 1.15 * idx.size / 10

    def test_sample_returns_configurations(self, small_space):
        configs = small_space.sample(5, np.random.default_rng(0))
        assert all(isinstance(c, Configuration) for c in configs)

    def test_negative_n_rejected(self, small_space):
        with pytest.raises(ValueError):
            small_space.sample_indices(-1, np.random.default_rng(0))


class TestVectorizedViews:
    def test_digits_matrix_matches_scalar(self, small_space):
        idx = np.arange(24)
        mat = small_space.digits_matrix(idx)
        for i in idx:
            assert tuple(mat[i]) == small_space.digits_of(int(i))

    def test_values_matrix_matches_configs(self, small_space):
        idx = np.array([0, 7, 23])
        vals = small_space.values_matrix(idx)
        for row, i in zip(vals, idx):
            assert tuple(row) == tuple(float(v) for v in small_space[int(i)].as_tuple())

    def test_digits_matrix_range_check(self, small_space):
        with pytest.raises(IndexError):
            small_space.digits_matrix([24])


# -- property-based -----------------------------------------------------------

spaces = st.lists(
    st.sampled_from(
        [
            pow2("p2", 1, 16),
            pow2("p2b", 2, 8),
            boolean("b1"),
            boolean("b2"),
            choice("c1", (1, 2, 4)),
            choice("c2", ("x", "y")),
        ]
    ),
    min_size=1,
    max_size=4,
    unique_by=lambda p: p.name,
).map(ParameterSpace)


@given(spaces, st.data())
@settings(max_examples=60)
def test_index_digit_bijection(space, data):
    """digits_of and index_of_digits are inverse bijections."""
    index = data.draw(st.integers(0, space.size - 1))
    digits = space.digits_of(index)
    assert space.index_of_digits(digits) == index
    assert all(0 <= d < p.cardinality for d, p in zip(digits, space.parameters))


@given(spaces, st.data())
@settings(max_examples=60)
def test_config_roundtrip_through_values(space, data):
    """index -> configuration -> values -> index is the identity."""
    index = data.draw(st.integers(0, space.size - 1))
    config = space[index]
    assert space.config(**dict(config)).index == index


@given(spaces)
@settings(max_examples=30)
def test_iteration_covers_space_exactly_once(space):
    seen = [c.index for c in space]
    assert seen == list(range(space.size))


class TestIndicesWith:
    def test_no_pins_returns_everything(self, small_space):
        idx = small_space.indices_with()
        assert idx.tolist() == list(range(24))

    def test_single_pin_partitions_space(self, small_space):
        on = small_space.indices_with(use_local=1)
        off = small_space.indices_with(use_local=0)
        assert on.size == off.size == 12
        assert sorted(np.concatenate([on, off]).tolist()) == list(range(24))
        for i in on:
            assert small_space[int(i)]["use_local"] == 1

    def test_multiple_pins(self, small_space):
        idx = small_space.indices_with(wg_x=8, unroll=4)
        assert idx.size == 2  # only use_local sweeps
        for i in idx:
            cfg = small_space[int(i)]
            assert cfg["wg_x"] == 8 and cfg["unroll"] == 4

    def test_all_pinned_single_index(self, small_space):
        idx = small_space.indices_with(wg_x=2, use_local=0, unroll=2)
        assert idx.size == 1
        assert small_space[int(idx[0])].as_tuple() == (2, 0, 2)

    def test_unknown_parameter_rejected(self, small_space):
        with pytest.raises(ValueError, match="unknown"):
            small_space.indices_with(bogus=1)

    def test_illegal_value_rejected(self, small_space):
        with pytest.raises(ValueError):
            small_space.indices_with(wg_x=3)

    def test_large_space_instant(self):
        from repro.kernels import StereoKernel

        space = StereoKernel().space
        idx = space.indices_with(local_left=1, local_right=1)
        assert idx.size == space.size // 4
        assert space[int(idx[0])]["local_left"] == 1
