"""The wave-engine equivalence gate.

The wave-based resilient batch engine (``Measurer._measure_batch_waves``)
must be **bit-identical by construction** to the serial resilient loop
(:meth:`Measurer.measure_batch_serial_resilient`): same values, same
valid/invalid/quarantined splits, same ledger totals including the
``retry_s`` bucket, same EngineStats, same RNG stream position, same
cache / DB / injector / drift-counter state afterwards.  This suite
drives both engines over the full fault x drift matrix for 20 seeds
each and compares everything through ``float.hex`` (no tolerance).

Batches deliberately overlap and repeat indices so the matrix also
exercises cache-served re-measures, intra-batch duplicates, DB
write-through and reset-revived configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.measure import Measurer, RetryPolicy
from repro.core.results import MeasurementDB
from repro.kernels import get_benchmark
from repro.runtime import Context
from repro.simulator import NVIDIA_K40

FAULTS = [None, "flaky-gpu", "unstable-driver", "noisy-rig"]
DRIFTS = [None, "thermal-throttle", "noisy-neighbor"]
N_SEEDS = 20


def _state(ctx, m, sets):
    """Everything observable after a measurement run, hex-exact."""
    led = ctx.ledger
    out = [
        dict(
            ok=[int(i) for i in ms.indices],
            t=[float.hex(float(t)) for t in ms.times_s],
            bad=[int(i) for i in ms.invalid_indices],
            quar=[int(i) for i in ms.quarantined_indices],
        )
        for ms in sets
    ]
    stats = {
        k: v
        for k, v in m.stats.as_dict().items()
        if k not in ("elapsed_s", "n_waves", "configs_per_sec")
    }
    return dict(
        sets=out,
        ledger=[
            float.hex(x)
            for x in (led.compile_s, led.run_s, led.failed_s, led.retry_s)
        ],
        rng=str(ctx.measurement.rng.bit_generator.state["state"]["state"]),
        quarantine=sorted(m.quarantine),
        cache={
            k: (None if v is None else float.hex(v))
            for k, v in m._cache.items()
        },
        stats=stats,
        injected=dict(ctx.faults.injected) if ctx.faults else None,
        attempts=dict(ctx.faults._attempts) if ctx.faults else None,
        drift=(
            (ctx.drift.last_regime, ctx.drift.shifts_seen, ctx.drift.applied)
            if ctx.drift
            else None
        ),
    )


def _batches(spec, seed, n=44):
    rng = np.random.default_rng(7000 + seed)
    idx = [int(i) for i in spec.space.sample_indices(n, rng)]
    first = idx[: n // 2]
    # Overlap + in-batch duplicates: cache hits, DB hits, double-measures.
    second = idx[n // 3 :] + first[:4] + [first[0], first[0]]
    return first, second


def _run(engine, spec, seed, faults, drift, db=None):
    ctx = Context(NVIDIA_K40, seed=321 + seed, faults=faults, drift=drift)
    m = Measurer(ctx, spec, db=db)
    sets = []
    for batch in _batches(spec, seed):
        if engine == "wave":
            sets.append(m.measure_batch(batch))
        else:
            sets.append(m.measure_batch_serial_resilient(batch))
    return _state(ctx, m, sets), m


@pytest.mark.parametrize("drift", DRIFTS, ids=[str(d) for d in DRIFTS])
@pytest.mark.parametrize("faults", FAULTS, ids=[str(f) for f in FAULTS])
def test_wave_matches_serial_bit_for_bit(faults, drift):
    spec = get_benchmark("convolution")
    for seed in range(N_SEEDS):
        wave, _ = _run("wave", spec, seed, faults, drift)
        serial, _ = _run("serial", spec, seed, faults, drift)
        assert wave == serial, f"seed {seed}: wave engine diverged"


@pytest.mark.parametrize(
    "faults,drift",
    [("flaky-gpu", "thermal-throttle"), ("unstable-driver", "noisy-neighbor")],
)
def test_wave_matches_serial_with_db(tmp_path, faults, drift):
    """DB write-through: entries, values and hit accounting all match."""
    spec = get_benchmark("convolution")
    for seed in range(5):
        dbs = [
            MeasurementDB(tmp_path / f"{engine}-{seed}.json")
            for engine in ("wave", "serial")
        ]
        wave, _ = _run("wave", spec, seed, faults, drift, db=dbs[0])
        serial, _ = _run("serial", spec, seed, faults, drift, db=dbs[1])
        assert wave == serial
        dump = [
            {
                k: {
                    i: (None if v is None else float.hex(v))
                    for i, v in t.items()
                }
                for k, t in db._data.items()
            }
            for db in dbs
        ]
        assert dump[0] == dump[1]


def test_wave_counts_waves_serial_does_not():
    spec = get_benchmark("convolution")
    _, m_wave = _run("wave", spec, 0, "flaky-gpu", None)
    _, m_serial = _run("serial", spec, 0, "flaky-gpu", None)
    assert m_wave.stats.n_waves > 0
    assert m_serial.stats.n_waves == 0


def test_budget_conflict_falls_back_to_serial(monkeypatch):
    """The constant-sum budget heuristic is re-validated against the exact
    ledger floats; a disagreement must rewind the RNG and reproduce the
    batch through the serial loop — still bit-identical."""
    spec = get_benchmark("convolution")
    serial, _ = _run("serial", spec, 3, "unstable-driver", "noisy-neighbor")

    ctx = Context(NVIDIA_K40, seed=321 + 3, faults="unstable-driver",
                  drift="noisy-neighbor")
    m = Measurer(ctx, spec)
    real = Measurer._resolve_probe_jobs

    def corrupt(self, *a, **kw):
        scheds, waves = real(self, *a, **kw)
        for s in scheds:
            if s.broke:  # flip one budget decision: forces the conflict path
                s.broke[0] = not s.broke[0]
                return scheds, waves
        return scheds, waves

    monkeypatch.setattr(Measurer, "_resolve_probe_jobs", corrupt)
    sets = [m.measure_batch(b) for b in _batches(spec, 3)]
    assert _state(ctx, m, sets) == serial


def test_quarantine_persists_across_batches():
    """A configuration quarantined in batch 1 is skipped (no budget burn)
    by the wave engine in batch 2, exactly like the serial loop."""
    spec = get_benchmark("convolution")
    # Tight budget: first failure already exceeds it -> quarantines happen.
    policy = RetryPolicy(config_budget_s=0.01)
    states = []
    for engine in ("wave", "serial"):
        ctx = Context(NVIDIA_K40, seed=99, faults="unstable-driver")
        m = Measurer(ctx, spec, retry=policy)
        batch = [int(i) for i in spec.space.sample_indices(
            30, np.random.default_rng(5))]
        sets = []
        for _ in range(2):  # same batch twice: 2nd hits the quarantine set
            if engine == "wave":
                sets.append(m.measure_batch(batch))
            else:
                sets.append(m.measure_batch_serial_resilient(batch))
        states.append(_state(ctx, m, sets))
        assert m.quarantine, "expected quarantined configurations"
    assert states[0] == states[1]
