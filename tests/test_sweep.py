"""Property tests for the fused prediction-sweep engine.

The engine's contract (``src/repro/core/sweep.py``):

* the float64 lane matches the chunked reference path to <= 1e-9
  relative (with and without the log transform);
* the float32 lane's top-M overlaps the exact lane's >= 99%;
* top-M is deterministic under prediction ties (smallest index wins) and
  identical across chunk sizes, streaming vs full selection, and worker
  counts;
* empty and singleton candidate sets behave like the reference.
"""

import numpy as np
import pytest

import repro.core.sweep as sweep_mod
from repro.core.model import PerformanceModel
from repro.core.sweep import (
    PredictionSweeper,
    SweepSettings,
    _TopMAccumulator,
    select_top_m,
)
from repro.experiments.oracle import TrueTimeOracle
from repro.kernels import ConvolutionKernel
from repro.simulator import NVIDIA_K40


@pytest.fixture(scope="module")
def spec():
    return ConvolutionKernel()


@pytest.fixture(scope="module")
def fitted(spec):
    """One fitted model reused by every test (training is the slow part)."""
    oracle = TrueTimeOracle(spec, NVIDIA_K40)
    rng = np.random.default_rng(7)
    idx = spec.space.sample_indices(700, rng)
    t = oracle.measure(idx, rng)
    ok = ~np.isnan(t)
    model = PerformanceModel(spec.space, seed=7).fit(idx[ok], t[ok])
    return model


def make_sweeper(model, **kw):
    return PredictionSweeper(
        model.space,
        model.encoder,
        model._model,
        log_transform=model.log_transform,
        settings=SweepSettings(**kw),
    )


class TestSelectTopM:
    def test_plain_selection_sorted(self):
        v = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        i = np.arange(5)
        vals, idx = select_top_m(v, i, 3)
        np.testing.assert_array_equal(vals, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(idx, [1, 3, 2])

    def test_ties_at_boundary_broken_by_smallest_index(self):
        v = np.array([0.0, 1.0, 0.0, 1.0, 1.0, 2.0])
        i = np.array([9, 4, 2, 8, 1, 0])
        _, idx = select_top_m(v, i, 3)
        # Both zeros enter; of the three tied 1.0s the smallest index (1)
        # fills the last slot.
        np.testing.assert_array_equal(idx, [2, 9, 1])

    def test_result_independent_of_input_order(self):
        rng = np.random.default_rng(0)
        v = rng.integers(0, 5, 200).astype(np.float64)  # many ties
        i = rng.permutation(200).astype(np.int64)
        base = select_top_m(v, i, 17)
        for _ in range(5):
            p = rng.permutation(200)
            got = select_top_m(v[p], i[p], 17)
            np.testing.assert_array_equal(got[0], base[0])
            np.testing.assert_array_equal(got[1], base[1])

    def test_split_merge_equals_global(self):
        """Selecting per part then re-selecting over the survivors equals
        one global selection — the streaming/sharding correctness core."""
        rng = np.random.default_rng(1)
        v = rng.integers(0, 7, 500).astype(np.float64)
        i = rng.permutation(500).astype(np.int64)
        m = 23
        base = select_top_m(v, i, m)
        for parts in (2, 3, 7):
            vs, iss = [], []
            for vp, ip in zip(np.array_split(v, parts), np.array_split(i, parts)):
                a, b = select_top_m(vp, ip, m)
                vs.append(a)
                iss.append(b)
            got = select_top_m(np.concatenate(vs), np.concatenate(iss), m)
            np.testing.assert_array_equal(got[0], base[0])
            np.testing.assert_array_equal(got[1], base[1])

    def test_m_zero_and_m_beyond_n(self):
        v = np.array([2.0, 1.0])
        i = np.array([5, 3])
        vals, idx = select_top_m(v, i, 0)
        assert vals.shape == (0,) and idx.shape == (0,)
        vals, idx = select_top_m(v, i, 10)
        np.testing.assert_array_equal(vals, [1.0, 2.0])
        np.testing.assert_array_equal(idx, [3, 5])

    def test_accumulator_matches_one_shot(self):
        rng = np.random.default_rng(2)
        v = rng.standard_normal(10_000)
        i = np.arange(10_000, dtype=np.int64)
        acc = _TopMAccumulator(m=50, chunk=512)
        for s in range(0, 10_000, 512):
            acc.absorb(v[s : s + 512], i[s : s + 512])
        vals, idx = acc.result()
        base_vals, base_idx = select_top_m(v, i, 50)
        np.testing.assert_array_equal(vals, base_vals)
        np.testing.assert_array_equal(idx, base_idx)


class TestSweepSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            SweepSettings(chunk=16)
        with pytest.raises(ValueError):
            SweepSettings(dtype="float16")
        with pytest.raises(ValueError):
            SweepSettings(workers=-1)

    def test_defaults(self):
        s = SweepSettings()
        assert s.enabled and s.dtype == "float64" and s.workers == 0


class TestFloat64Parity:
    """The exact lane vs the chunked reference path."""

    def test_parity_on_random_subset(self, fitted):
        rng = np.random.default_rng(3)
        idx = rng.choice(fitted.space.size, 50_001, replace=False).astype(np.int64)
        ref = fitted.predict_indices_reference(idx)
        got = make_sweeper(fitted).predict(idx)
        rel = np.max(np.abs(got - ref) / np.abs(ref))
        assert rel <= 1e-9

    def test_parity_without_log_transform(self, spec):
        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        rng = np.random.default_rng(11)
        idx = spec.space.sample_indices(400, rng)
        t = oracle.measure(idx, rng)
        ok = ~np.isnan(t)
        model = PerformanceModel(spec.space, seed=11, log_transform=False).fit(
            idx[ok], t[ok]
        )
        probe = np.arange(0, spec.space.size, 17, dtype=np.int64)
        ref = model.predict_indices_reference(probe)
        got = make_sweeper(model).predict(probe)
        rel = np.max(np.abs(got - ref) / np.maximum(np.abs(ref), 1e-300))
        assert rel <= 1e-9

    def test_parity_across_chunk_sizes(self, fitted):
        idx = np.arange(0, fitted.space.size, 11, dtype=np.int64)
        base = make_sweeper(fitted, chunk=1 << 14).predict(idx)
        for chunk in (256, 1 << 10, 1 << 16):
            got = make_sweeper(fitted, chunk=chunk).predict(idx)
            np.testing.assert_array_equal(got, base)

    def test_range_work_equals_array_work(self, fitted):
        s = make_sweeper(fitted)
        lo = fitted.space.size - 40_000
        all_pred = s.predict(None)
        np.testing.assert_array_equal(
            all_pred[lo:],
            s.predict(np.arange(lo, fitted.space.size, dtype=np.int64)),
        )


class TestTopM:
    def test_streaming_equals_reference_selection(self, fitted):
        idx = np.arange(fitted.space.size, dtype=np.int64)
        ref = fitted.predict_indices_reference(idx)
        _, want = select_top_m(ref, idx, 300)
        got = make_sweeper(fitted).top_m(300)
        np.testing.assert_array_equal(got, want)

    def test_model_routes_match_either_engine(self, fitted):
        """PerformanceModel.top_m gives the same answer with the sweeper
        enabled and with it disabled (the reference fallback)."""
        on = PerformanceModel(fitted.space, seed=7)
        off = PerformanceModel(fitted.space, seed=7, sweep=SweepSettings(enabled=False))
        on._model = off._model = fitted._model
        np.testing.assert_array_equal(on.top_m(100), off.top_m(100))

    def test_nested_prefix_property(self, fitted):
        """top_m(M) is a prefix of top_m(M') for M < M' — what the tuner's
        escalation and the fig11 shared-model grid rely on."""
        s = make_sweeper(fitted)
        big = s.top_m(400)
        for m in (1, 50, 399):
            np.testing.assert_array_equal(s.top_m(m), big[:m])

    def test_deterministic_under_ties(self):
        """An artificially tied model: every prediction equal, so top-M
        must be the M smallest *indices*, on both engines."""
        v = np.full(1000, 2.5)
        i = np.arange(1000, dtype=np.int64)
        _, idx = select_top_m(v, i, 10)
        np.testing.assert_array_equal(idx, np.arange(10))
        acc = _TopMAccumulator(m=10, chunk=64)
        for s in range(0, 1000, 64):
            acc.absorb(v[s : s + 64], i[s : s + 64])
        _, idx = acc.result()
        np.testing.assert_array_equal(idx, np.arange(10))

    def test_m_larger_than_pool(self, fitted):
        pool = np.array([5, 3, 1000], dtype=np.int64)
        got = make_sweeper(fitted).top_m(50, pool)
        assert sorted(got.tolist()) == [3, 5, 1000]


class TestEdgeCases:
    def test_empty_candidate_set(self, fitted):
        s = make_sweeper(fitted)
        assert s.predict(np.array([], dtype=np.int64)).shape == (0,)
        assert s.top_m(10, np.array([], dtype=np.int64)).shape == (0,)

    def test_singleton_candidate_set(self, fitted):
        s = make_sweeper(fitted)
        one = s.predict(np.array([1234], dtype=np.int64))
        assert one.shape == (1,) and one[0] > 0
        np.testing.assert_array_equal(
            s.top_m(5, np.array([1234], dtype=np.int64)), [1234]
        )

    def test_out_of_range_rejected(self, fitted):
        s = make_sweeper(fitted)
        with pytest.raises(IndexError):
            s.predict(np.array([fitted.space.size], dtype=np.int64))
        with pytest.raises(IndexError):
            s.predict(np.array([-1], dtype=np.int64))

    def test_non_1d_rejected(self, fitted):
        with pytest.raises(ValueError):
            make_sweeper(fitted).predict(np.zeros((2, 2), dtype=np.int64))

    def test_custom_model_family_falls_back(self, spec):
        """A non-ensemble model has no weights to fold: the model must
        quietly use the reference path, not crash."""
        from repro.ml import RidgeRegression

        oracle = TrueTimeOracle(spec, NVIDIA_K40)
        rng = np.random.default_rng(5)
        idx = spec.space.sample_indices(200, rng)
        t = oracle.measure(idx, rng)
        ok = ~np.isnan(t)
        model = PerformanceModel(
            spec.space, k=3, seed=5, base_factory=lambda: RidgeRegression()
        ).fit(idx[ok], t[ok])
        assert model._get_sweeper() is None
        assert model.top_m(5).shape == (5,)


class TestFloat32Lane:
    def test_top_m_overlap(self, fitted):
        exact = make_sweeper(fitted).top_m(200)
        fast = make_sweeper(fitted, dtype="float32").top_m(200)
        overlap = len(set(exact.tolist()) & set(fast.tolist())) / 200
        assert overlap >= 0.99

    def test_predictions_close(self, fitted):
        idx = np.arange(0, fitted.space.size, 29, dtype=np.int64)
        ref = fitted.predict_indices_reference(idx)
        fast = make_sweeper(fitted, dtype="float32").predict(idx)
        rel = np.max(np.abs(fast - ref) / np.abs(ref))
        assert rel < 1e-4  # float32 forward pass, not the exact lane

    def test_output_contract_is_float64(self, fitted):
        out = make_sweeper(fitted, dtype="float32").predict(
            np.arange(100, dtype=np.int64)
        )
        assert out.dtype == np.float64


class TestSharding:
    def test_multi_worker_equals_single(self, fitted, monkeypatch):
        """Shard boundaries must not change any result bit."""
        monkeypatch.setattr(sweep_mod, "MIN_CONFIGS_PER_WORKER", 1 << 12)
        idx = np.arange(0, 40_000, dtype=np.int64)
        single = make_sweeper(fitted)
        multi = make_sweeper(fitted, workers=2)
        assert multi._n_shards(idx.shape[0]) == 2  # sharding actually engaged
        np.testing.assert_array_equal(multi.predict(idx), single.predict(idx))
        np.testing.assert_array_equal(multi.top_m(150, idx), single.top_m(150, idx))

    def test_small_sweeps_stay_inline(self, fitted):
        s = make_sweeper(fitted, workers=8)
        assert s._n_shards(100) == 1  # pool would cost more than it buys

    def test_shard_traces_merge_into_parent(self, fitted, monkeypatch, tmp_path):
        from repro.obs import Tracer

        monkeypatch.setattr(sweep_mod, "MIN_CONFIGS_PER_WORKER", 1 << 12)
        path = tmp_path / "sweep.trace.jsonl"
        tracer = Tracer(path)
        s = PredictionSweeper(
            fitted.space,
            fitted.encoder,
            fitted._model,
            settings=SweepSettings(workers=2),
            tracer=tracer,
        )
        s.top_m(50, np.arange(0, 20_000, dtype=np.int64))
        tracer.close()
        text = path.read_text()
        assert "sweep.shard" in text
        assert "sweep-shard-0" in text and "sweep-shard-1" in text
