"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_config, build_parser, main
from repro.kernels import ConvolutionKernel


class TestParseConfig:
    def test_full_parse(self):
        space = ConvolutionKernel().space
        values = _parse_config(
            "wg_x=32,wg_y=4,ppt_x=2,ppt_y=2,use_image=1,use_local=0,"
            "pad=1,interleaved=1,unroll=1",
            space,
        )
        assert values["wg_x"] == 32 and values["unroll"] == 1

    def test_unknown_name(self):
        space = ConvolutionKernel().space
        with pytest.raises(SystemExit, match="unknown parameter"):
            _parse_config("bogus=1", space)

    def test_missing_names(self):
        space = ConvolutionKernel().space
        with pytest.raises(SystemExit, match="missing parameters"):
            _parse_config("wg_x=32", space)

    def test_non_integer(self):
        space = ConvolutionKernel().space
        with pytest.raises(SystemExit, match="non-integer"):
            _parse_config("wg_x=abc", space)

    def test_malformed_item(self):
        space = ConvolutionKernel().space
        with pytest.raises(SystemExit, match="name=value"):
            _parse_config("wg_x", space)


class TestCommands:
    def test_devices_lists_catalog(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Nvidia K40" in out and "AMD HD 7970" in out

    def test_benchmarks_lists_sizes(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "131072" in out and "2359296" in out

    def test_tune_small_run(self, capsys):
        rc = main(
            ["tune", "-k", "convolution", "-d", "intel", "-n", "300",
             "-m", "30", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert rc in (0, 1)
        if rc == 0:
            assert "best configuration" in out
        else:
            assert "FAILED" in out

    def test_tune_iterative(self, capsys):
        rc = main(
            ["tune", "-k", "convolution", "-d", "nvidia", "--iterative",
             "--budget", "200", "--rounds", "2", "--seed", "2"]
        )
        assert rc == 0
        assert "best configuration" in capsys.readouterr().out

    def test_predict_roundtrip(self, capsys):
        rc = main(
            ["predict", "-k", "convolution", "-d", "nvidia", "-n", "300",
             "--config",
             "wg_x=32,wg_y=4,ppt_x=2,ppt_y=2,use_image=1,use_local=0,"
             "pad=1,interleaved=1,unroll=1",
             "--seed", "0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted time" in out and "actual" in out

    def test_predict_invalid_config_reported(self, capsys):
        rc = main(
            ["predict", "-k", "convolution", "-d", "amd", "-n", "300",
             "--config",
             "wg_x=128,wg_y=128,ppt_x=1,ppt_y=1,use_image=0,use_local=0,"
             "pad=0,interleaved=0,unroll=0",
             "--seed", "0"]
        )
        assert rc == 0
        assert "INVALID" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "-k", "bogus", "-d", "intel"])


class TestExperimentsSubcommand:
    def test_experiments_only_tables(self, capsys):
        rc = main(["experiments", "--only", "tables"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "131072" in out

    def test_experiments_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        rc = main(["experiments", "--only", "tables", "--out", str(out_path)])
        assert rc == 0
        assert "Table 1" in out_path.read_text()


class TestBenchReportSubcommand:
    def test_renders_all_artifacts_as_one_table(self, tmp_path, capsys):
        import json

        (tmp_path / "BENCH_alpha.json").write_text(json.dumps([
            {"git_rev": "abc1234", "speedup": 8.13, "n_sweep": 6000},
            {"git_rev": "def5678", "speedup": 9.0, "n_sweep": 6000},
        ]))
        (tmp_path / "BENCH_beta.json").write_text(json.dumps([
            {"git_rev": "abc1234", "recovered_gap": 1.0, "alarms": 1},
        ]))
        rc = main(["bench-report", "--dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "beta" in out
        assert "speedup 8.13x" in out and "speedup 9x" in out
        assert "recovered_gap 1" in out
        assert "abc1234" in out and "def5678" in out
        assert "n_sweep=6000" in out

    def test_empty_dir_fails_with_message(self, tmp_path, capsys):
        rc = main(["bench-report", "--dir", str(tmp_path)])
        assert rc == 1
        assert "no BENCH_" in capsys.readouterr().out

    def test_unreadable_artifact_reported_not_fatal(self, tmp_path, capsys):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        (tmp_path / "BENCH_ok.json").write_text('[{"git_rev": "a", "speedup": 2.0}]')
        rc = main(["bench-report", "--dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "unreadable" in out and "speedup 2x" in out
