"""Tests for the execution-time model."""

import pytest

from repro.simulator.devices import AMD_HD7970, INTEL_I7_3770, NVIDIA_K40
from repro.simulator.executor import (
    KernelExecutor,
    compute_time,
    execute,
    granularity_penalty,
    overhead_time,
    overlap_fraction,
    simd_utilization,
    simulate_kernel_time,
    wave_quantization_factor,
)
from repro.simulator.occupancy import compute_occupancy
from repro.simulator.validity import InvalidConfig
from repro.simulator.workload import WorkloadProfile


def profile(**kw):
    base = dict(
        global_size=(2048, 2048),
        workgroup=(32, 8),
        flops_per_thread=50.0,
        global_reads=25.0,
        global_writes=1.0,
        footprint_bytes=32e6,
        spatial_locality=0.85,
    )
    base.update(kw)
    return WorkloadProfile(**base)


class TestSimdUtilization:
    def test_full_warps(self):
        assert simd_utilization(profile(workgroup=(32, 2)), NVIDIA_K40) == 1.0

    def test_ragged_group(self):
        # 8 threads in a 32-wide warp: 25% of issue slots useful.
        assert simd_utilization(profile(workgroup=(8, 1)), NVIDIA_K40) == pytest.approx(
            0.25
        )

    def test_wavefront_width_matters(self):
        # A 32-thread group wastes half an AMD wavefront but fills a warp.
        p = profile(workgroup=(32, 1))
        assert simd_utilization(p, AMD_HD7970) == pytest.approx(0.5)
        assert simd_utilization(p, NVIDIA_K40) == pytest.approx(1.0)


class TestComputeTime:
    def test_scales_with_flops(self):
        t1 = compute_time(profile(flops_per_thread=50), NVIDIA_K40)
        t2 = compute_time(profile(flops_per_thread=100), NVIDIA_K40)
        assert t2 > t1

    def test_loop_overhead_charged(self):
        rolled = compute_time(profile(loop_iterations_per_thread=100), NVIDIA_K40)
        unrolled = compute_time(profile(loop_iterations_per_thread=10), NVIDIA_K40)
        assert rolled > unrolled

    def test_cpu_vectorization_depends_on_contiguity(self):
        fast = compute_time(profile(coalesced_fraction=1.0), INTEL_I7_3770)
        slow = compute_time(profile(coalesced_fraction=0.0), INTEL_I7_3770)
        assert slow > 2 * fast


class TestWaveQuantization:
    def test_exact_fit_no_penalty(self):
        p = profile(workgroup=(32, 8))
        occ = compute_occupancy(p, NVIDIA_K40)
        per_wave = NVIDIA_K40.compute_units * occ.workgroups_per_cu
        n_wg = p.num_workgroups
        q = wave_quantization_factor(p, NVIDIA_K40, occ)
        assert q >= 1.0
        if n_wg % per_wave == 0:
            assert q == pytest.approx(1.0)

    def test_underfilled_device_penalized(self):
        # 4 work-groups on a 15-CU device: most of the chip idles.
        p = profile(global_size=(64, 16), workgroup=(32, 8))
        occ = compute_occupancy(p, NVIDIA_K40)
        assert wave_quantization_factor(p, NVIDIA_K40, occ) > 3.0


class TestOverheads:
    def test_cpu_per_item_overhead_dominates_tiny_threads(self):
        many = profile(workgroup=(8, 8))  # 4.2M one-pixel threads
        few = profile(global_size=(128, 128), workgroup=(8, 8))
        assert overhead_time(many, INTEL_I7_3770) > 100 * overhead_time(
            few, INTEL_I7_3770
        )

    def test_barrier_cost_much_higher_on_cpu(self):
        p = profile(barriers_per_workgroup=2.0)
        per_item_cpu = overhead_time(p, INTEL_I7_3770) - overhead_time(
            profile(), INTEL_I7_3770
        )
        per_item_gpu = overhead_time(p, NVIDIA_K40) - overhead_time(
            profile(), NVIDIA_K40
        )
        assert per_item_cpu > 5 * per_item_gpu

    def test_granularity_penalty_gpu_only(self):
        big = profile(workgroup=(32, 32))
        assert granularity_penalty(big, NVIDIA_K40) > granularity_penalty(
            profile(workgroup=(32, 1)), NVIDIA_K40
        )
        assert granularity_penalty(big, INTEL_I7_3770) == 1.0


class TestOverlap:
    def test_gpu_overlap_saturates_with_occupancy(self):
        p_low = profile(workgroup=(8, 8), local_mem_per_wg_bytes=24 * 1024)
        p_high = profile(workgroup=(32, 8))
        occ_low = compute_occupancy(p_low, NVIDIA_K40)
        occ_high = compute_occupancy(p_high, NVIDIA_K40)
        assert overlap_fraction(NVIDIA_K40, occ_low) < overlap_fraction(
            NVIDIA_K40, occ_high
        )
        assert overlap_fraction(NVIDIA_K40, occ_high) == 1.0

    def test_cpu_overlap_fixed(self):
        occ = compute_occupancy(profile(), INTEL_I7_3770)
        assert overlap_fraction(INTEL_I7_3770, occ) == pytest.approx(0.80)


class TestExecute:
    def test_deterministic(self):
        key = ("convolution", (32, 8, 1, 1, 0, 0, 1, 1, 0))
        t1 = simulate_kernel_time(profile(), NVIDIA_K40, jitter_key=key)
        t2 = simulate_kernel_time(profile(), NVIDIA_K40, jitter_key=key)
        assert t1 == t2

    def test_jitter_differs_across_configs(self):
        k1 = ("convolution", (32, 8, 1, 1, 0, 0, 1, 1, 0))
        k2 = ("convolution", (32, 8, 1, 1, 0, 0, 1, 1, 1))
        assert simulate_kernel_time(profile(), NVIDIA_K40, k1) != simulate_kernel_time(
            profile(), NVIDIA_K40, k2
        )

    def test_no_jitter_without_key(self):
        b = execute(profile(), NVIDIA_K40)
        assert b.jitter == 1.0

    def test_invalid_profile_raises(self):
        with pytest.raises(InvalidConfig):
            execute(profile(workgroup=(64, 32)), NVIDIA_K40)  # 2048 > 1024

    def test_breakdown_consistent(self):
        b = execute(profile(), NVIDIA_K40)
        assert b.total_time > 0
        assert b.compute_time > 0
        assert b.memory.total > 0
        assert b.wave_quantization >= 1.0
        assert 0.0 <= b.overlap <= 1.0

    def test_time_positive_across_devices(self):
        for dev in (INTEL_I7_3770, NVIDIA_K40, AMD_HD7970):
            p = profile(workgroup=(16, 8))
            assert simulate_kernel_time(p, dev) > 0


class TestKernelExecutor:
    def test_bound_executor_matches_free_function(self):
        ex = KernelExecutor(NVIDIA_K40, "convolution")
        cfg = (32, 8, 1, 1, 0, 0, 1, 1, 0)
        assert ex.time(profile(), cfg) == simulate_kernel_time(
            profile(), NVIDIA_K40, jitter_key=("convolution", cfg)
        )

    def test_kernel_namespace_separates_jitter(self):
        cfg = (32, 8, 1, 1, 0, 0, 1, 1, 0)
        t1 = KernelExecutor(NVIDIA_K40, "convolution").time(profile(), cfg)
        t2 = KernelExecutor(NVIDIA_K40, "stereo").time(profile(), cfg)
        assert t1 != t2
