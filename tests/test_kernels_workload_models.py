"""Detailed tests of the per-benchmark workload models: the traffic,
register, locality and validity consequences of each Table 2 parameter."""

import numpy as np
import pytest

from repro.kernels import ConvolutionKernel, RaycastingKernel, StereoKernel
from repro.simulator.devices import AMD_HD7970, INTEL_I7_3770, NVIDIA_K40
from repro.simulator.validity import validate


def conv_cfg(spec, **overrides):
    base = dict(
        wg_x=16, wg_y=8, ppt_x=2, ppt_y=2, use_image=0, use_local=0,
        pad=1, interleaved=1, unroll=0,
    )
    base.update(overrides)
    return spec.space.config(**base)


def ray_cfg(spec, **overrides):
    base = dict(
        wg_x=16, wg_y=8, ppt_x=1, ppt_y=1, img_data=0, img_tf=0,
        local_tf=0, const_tf=0, interleaved=1, unroll=1,
    )
    base.update(overrides)
    return spec.space.config(**base)


def stereo_cfg(spec, **overrides):
    base = dict(
        wg_x=16, wg_y=8, ppt_x=1, ppt_y=1, img_left=0, img_right=0,
        local_left=0, local_right=0, unroll_disp=1, unroll_diff_x=1,
        unroll_diff_y=1,
    )
    base.update(overrides)
    return spec.space.config(**base)


class TestConvolutionWorkload:
    @pytest.fixture(scope="class")
    def spec(self):
        return ConvolutionKernel()

    def test_direct_path_reads_25_taps_per_pixel(self, spec):
        p = spec.workload(conv_cfg(spec, ppt_x=1, ppt_y=1), NVIDIA_K40)
        assert p.global_reads == pytest.approx(25.0)
        assert p.global_writes == pytest.approx(1.0)
        assert p.image_reads == 0.0 and p.local_reads == 0.0

    def test_local_path_amortizes_tile_load(self, spec):
        cfg = conv_cfg(spec, use_local=1)
        p = spec.workload(cfg, NVIDIA_K40)
        # Tile (16*2+4) x (8*2+4) over 128 threads.
        tile = (16 * 2 + 4) * (8 * 2 + 4)
        assert p.global_reads == pytest.approx(tile / 128)
        assert p.local_writes == pytest.approx(tile / 128)
        assert p.local_reads == pytest.approx(4 * 25)  # pixels * taps
        assert p.local_mem_per_wg_bytes == tile * 4
        assert p.barriers_per_workgroup == 2.0

    def test_image_routes_reads_to_texture(self, spec):
        p = spec.workload(conv_cfg(spec, use_image=1), NVIDIA_K40)
        assert p.image_reads > 0 and p.global_reads == 0.0
        both = spec.workload(conv_cfg(spec, use_image=1, use_local=1), NVIDIA_K40)
        # §5.1 combination rule: tile loaded via image, then cached locally.
        assert both.image_reads > 0 and both.local_reads > 0
        assert both.global_reads == 0.0

    def test_padding_cuts_boundary_arithmetic(self, spec):
        padded = spec.workload(conv_cfg(spec, pad=1), NVIDIA_K40)
        clamped = spec.workload(conv_cfg(spec, pad=0), NVIDIA_K40)
        assert clamped.flops_per_thread > padded.flops_per_thread
        assert clamped.footprint_bytes < padded.footprint_bytes

    def test_interleaving_coalesces_on_gpu_only(self, spec):
        inter = spec.workload(conv_cfg(spec, ppt_x=8, interleaved=1), NVIDIA_K40)
        block = spec.workload(conv_cfg(spec, ppt_x=8, interleaved=0), NVIDIA_K40)
        assert inter.coalesced_fraction > block.coalesced_fraction
        inter_cpu = spec.workload(conv_cfg(spec, ppt_x=8, interleaved=1), INTEL_I7_3770)
        block_cpu = spec.workload(conv_cfg(spec, ppt_x=8, interleaved=0), INTEL_I7_3770)
        assert block_cpu.coalesced_fraction > inter_cpu.coalesced_fraction

    def test_launch_padding_counts_idle_threads(self, spec):
        p = spec.workload(conv_cfg(spec, ppt_x=128, ppt_y=128, wg_x=128, wg_y=128), INTEL_I7_3770)
        # 2048/128 = 16 needed per axis, padded to one full 128x128 group.
        assert p.global_size == (128, 128)
        # Average per-thread work reflects that most threads are idle.
        assert p.flops_per_thread < 0.2 * 128 * 128 * 25

    def test_unroll_changes_loop_iterations_when_honoured(self, spec):
        rolled = spec.workload(conv_cfg(spec, unroll=0), NVIDIA_K40)
        # Find a config where the K40 driver honours the pragma.
        honoured = None
        for i in (1, 2, 4, 8):
            cfg = conv_cfg(spec, unroll=1, ppt_x=i)
            w = spec.workload(cfg, NVIDIA_K40)
            if w.unroll_factor > 1 and w.loop_iterations_per_thread < (
                spec.workload(conv_cfg(spec, unroll=0, ppt_x=i), NVIDIA_K40)
                .loop_iterations_per_thread
            ):
                honoured = w
                break
        assert honoured is not None
        assert honoured.registers_per_thread > rolled.registers_per_thread

    def test_wg_footprint_tracks_block_size(self, spec):
        small = spec.workload(conv_cfg(spec), NVIDIA_K40)
        big = spec.workload(conv_cfg(spec, ppt_x=16, ppt_y=16), NVIDIA_K40)
        assert big.wg_footprint_bytes > 10 * small.wg_footprint_bytes


class TestRaycastingWorkload:
    @pytest.fixture(scope="class")
    def spec(self):
        return RaycastingKernel()

    def test_samples_per_ray_equal_steps(self, spec):
        p = spec.workload(ray_cfg(spec), NVIDIA_K40)
        steps = spec.problem.steps
        assert p.global_reads == pytest.approx(2 * steps)  # volume + TF
        assert p.global_writes == pytest.approx(4.0)  # RGBA store

    def test_tf_memory_space_routing(self, spec):
        dev = NVIDIA_K40
        const = spec.workload(ray_cfg(spec, const_tf=1), dev)
        assert const.constant_reads == pytest.approx(spec.problem.steps)
        img = spec.workload(ray_cfg(spec, img_tf=1), dev)
        assert img.image_reads == pytest.approx(spec.problem.steps)
        loc = spec.workload(ray_cfg(spec, local_tf=1), dev)
        assert loc.local_reads == pytest.approx(spec.problem.steps)
        assert loc.local_mem_per_wg_bytes == spec.problem.tf_size * 16
        assert loc.barriers_per_workgroup == 1.0

    def test_tf_combination_rule_image_feeds_local(self, spec):
        both = spec.workload(ray_cfg(spec, img_tf=1, local_tf=1), NVIDIA_K40)
        # The cooperative copy pulls through the image path.
        assert 0 < both.image_reads < 64
        assert both.local_reads == pytest.approx(spec.problem.steps)

    def test_volume_via_image_improves_locality(self, spec):
        glob = spec.workload(ray_cfg(spec, img_data=0), NVIDIA_K40)
        img = spec.workload(ray_cfg(spec, img_data=1), NVIDIA_K40)
        assert img.spatial_locality > glob.spatial_locality

    def test_manual_unroll_always_effective(self, spec):
        for f in (1, 2, 4, 8, 16):
            for dev in (NVIDIA_K40, AMD_HD7970, INTEL_I7_3770):
                p = spec.workload(ray_cfg(spec, unroll=f), dev)
                assert p.unroll_factor == f
                assert p.loop_iterations_per_thread == pytest.approx(
                    spec.problem.steps / f + 2.0
                )

    def test_unroll_raises_register_demand(self, spec):
        r1 = spec.workload(ray_cfg(spec, unroll=1), NVIDIA_K40)
        r16 = spec.workload(ray_cfg(spec, unroll=16), NVIDIA_K40)
        assert r16.registers_per_thread > r1.registers_per_thread


class TestStereoWorkload:
    @pytest.fixture(scope="class")
    def spec(self):
        return StereoKernel()

    def test_direct_comparisons(self, spec):
        p = spec.workload(stereo_cfg(spec), NVIDIA_K40)
        D, w = spec.problem.disparities, spec.problem.window
        assert p.global_reads == pytest.approx(2 * D * w * w)
        assert p.global_writes == pytest.approx(1.0)

    def test_right_tile_spans_disparity_range(self, spec):
        left = spec.workload(stereo_cfg(spec, local_left=1), NVIDIA_K40)
        right = spec.workload(stereo_cfg(spec, local_right=1), NVIDIA_K40)
        assert right.local_mem_per_wg_bytes > left.local_mem_per_wg_bytes

    def test_both_tiles_accumulate(self, spec):
        both = spec.workload(
            stereo_cfg(spec, local_left=1, local_right=1), NVIDIA_K40
        )
        only = spec.workload(stereo_cfg(spec, local_left=1), NVIDIA_K40)
        assert both.local_mem_per_wg_bytes > only.local_mem_per_wg_bytes
        assert both.barriers_per_workgroup == 4.0

    def test_large_local_tiles_invalid_on_gpus(self, spec):
        cfg = stereo_cfg(
            spec, local_left=1, local_right=1, wg_x=16, wg_y=16, ppt_x=8, ppt_y=4
        )
        p = spec.workload(cfg, AMD_HD7970)
        assert not validate(p, AMD_HD7970)
        # The CPU's bigger (emulated) scratchpad still accepts it.
        p_cpu = spec.workload(cfg, INTEL_I7_3770)
        assert validate(p_cpu, INTEL_I7_3770)

    def test_three_unroll_axes_compose(self, spec):
        base = spec.workload(stereo_cfg(spec), INTEL_I7_3770)
        # Intel reliability is high but stochastic; scan for an honoured one.
        found = False
        for wgx in (2, 4, 8, 16, 32):
            cfg = stereo_cfg(spec, wg_x=wgx, unroll_disp=8, unroll_diff_x=4, unroll_diff_y=4)
            p = spec.workload(cfg, INTEL_I7_3770)
            if p.loop_iterations_per_thread < 0.2 * base.loop_iterations_per_thread:
                found = True
                break
        assert found, "no configuration had all three unrolls honoured"

    def test_space_sizes_match_paper(self):
        assert ConvolutionKernel().space.size == 131072
        assert RaycastingKernel().space.size == 655360
        assert StereoKernel().space.size == 2359296


class TestCrossKernelWorkloadInvariants:
    @pytest.mark.parametrize("spec_cls", [ConvolutionKernel, RaycastingKernel, StereoKernel])
    def test_random_profiles_well_formed(self, spec_cls):
        spec = spec_cls()
        rng = np.random.default_rng(0)
        for i in spec.space.sample_indices(150, rng):
            cfg = spec.space[int(i)]
            for dev in (INTEL_I7_3770, NVIDIA_K40, AMD_HD7970):
                p = spec.workload(cfg, dev)
                assert p.flops_per_thread > 0
                assert p.workgroup == (cfg["wg_x"], cfg["wg_y"])
                assert p.threads >= p.workgroup_threads
                total_reads = (
                    p.global_reads + p.image_reads + p.local_reads + p.constant_reads
                )
                assert total_reads > 0

    @pytest.mark.parametrize("spec_cls", [ConvolutionKernel, RaycastingKernel, StereoKernel])
    def test_workload_deterministic(self, spec_cls):
        spec = spec_cls()
        cfg = spec.space[12345]
        a = spec.workload(cfg, NVIDIA_K40)
        b = spec.workload(cfg, NVIDIA_K40)
        assert a == b
