"""Tests for multi-device portability campaigns."""

import numpy as np
import pytest

from repro.core.campaign import PortabilityCampaign
from repro.core.results import MeasurementDB
from repro.core.tuner import TunerSettings
from repro.kernels import ConvolutionKernel


@pytest.fixture(scope="module")
def campaign_result():
    spec = ConvolutionKernel()
    campaign = PortabilityCampaign(
        spec,
        devices=("intel", "nvidia"),
        settings=TunerSettings(n_train=400, m_candidates=40),
    )
    return campaign.run(seed=3)


class TestCampaign:
    def test_tunes_every_device(self, campaign_result):
        assert set(campaign_result.results) == {"intel", "nvidia"}
        for r in campaign_result.results.values():
            assert not r.failed

    def test_matrix_diagonal_is_own_time(self, campaign_result):
        for d in ("intel", "nvidia"):
            own = campaign_result.transplant_matrix[d][d]
            assert own is not None and own > 0
            assert campaign_result.slowdown(d, d) == pytest.approx(1.0)

    def test_cross_device_transplant_costs(self, campaign_result):
        # CPU<->GPU transplants are expensive (or invalid) in each direction.
        s = campaign_result.slowdown("intel", "nvidia")
        assert s != s or s > 1.5

    def test_report_renders(self, campaign_result):
        text = campaign_result.report()
        assert "portability campaign: convolution" in text
        assert "transplant slowdowns" in text
        assert "intel" in text and "nvidia" in text

    def test_db_persistence(self, tmp_path):
        spec = ConvolutionKernel()
        db = MeasurementDB(tmp_path / "campaign.json")
        campaign = PortabilityCampaign(
            spec,
            devices=("nvidia",),
            settings=TunerSettings(n_train=150, m_candidates=15),
            db=db,
        )
        result = campaign.run(seed=5)
        assert len(db) > 100
        # The winning configuration's measurement is in the store.
        if not result.results["nvidia"].failed:
            stored = db.get("convolution", "Nvidia K40",
                            result.results["nvidia"].best_index)
            assert stored is not None
        # And it survived to disk.
        assert MeasurementDB(tmp_path / "campaign.json").best(
            "convolution", "Nvidia K40"
        )[1] > 0

    def test_empty_devices_rejected(self):
        with pytest.raises(ValueError):
            PortabilityCampaign(ConvolutionKernel(), devices=())
