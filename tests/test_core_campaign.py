"""Tests for multi-device portability campaigns."""

import numpy as np
import pytest

from repro.core.campaign import PortabilityCampaign
from repro.core.results import MeasurementDB
from repro.core.tuner import TunerSettings
from repro.kernels import ConvolutionKernel


@pytest.fixture(scope="module")
def campaign_result():
    spec = ConvolutionKernel()
    campaign = PortabilityCampaign(
        spec,
        devices=("intel", "nvidia"),
        settings=TunerSettings(n_train=400, m_candidates=40),
    )
    return campaign.run(seed=3)


class TestCampaign:
    def test_tunes_every_device(self, campaign_result):
        assert set(campaign_result.results) == {"intel", "nvidia"}
        for r in campaign_result.results.values():
            assert not r.failed

    def test_matrix_diagonal_is_own_time(self, campaign_result):
        for d in ("intel", "nvidia"):
            own = campaign_result.transplant_matrix[d][d]
            assert own is not None and own > 0
            assert campaign_result.slowdown(d, d) == pytest.approx(1.0)

    def test_cross_device_transplant_costs(self, campaign_result):
        # CPU<->GPU transplants are expensive (or invalid) in each direction.
        s = campaign_result.slowdown("intel", "nvidia")
        assert s != s or s > 1.5

    def test_report_renders(self, campaign_result):
        text = campaign_result.report()
        assert "portability campaign: convolution" in text
        assert "transplant slowdowns" in text
        assert "intel" in text and "nvidia" in text

    def test_db_persistence(self, tmp_path):
        spec = ConvolutionKernel()
        db = MeasurementDB(tmp_path / "campaign.json")
        campaign = PortabilityCampaign(
            spec,
            devices=("nvidia",),
            settings=TunerSettings(n_train=150, m_candidates=15),
            db=db,
        )
        result = campaign.run(seed=5)
        assert len(db) > 100
        # The winning configuration's measurement is in the store.
        if not result.results["nvidia"].failed:
            stored = db.get("convolution", "Nvidia K40",
                            result.results["nvidia"].best_index)
            assert stored is not None
        # And it survived to disk.
        assert MeasurementDB(tmp_path / "campaign.json").best(
            "convolution", "Nvidia K40"
        )[1] > 0

    def test_empty_devices_rejected(self):
        with pytest.raises(ValueError):
            PortabilityCampaign(ConvolutionKernel(), devices=())


class TestCampaignGrid:
    @pytest.fixture(scope="class")
    def grid(self, tmp_path_factory):
        spec = ConvolutionKernel()
        db_path = tmp_path_factory.mktemp("grid") / "grid.json"
        db = MeasurementDB(db_path)
        from repro.core.campaign import run_campaign_grid

        report = run_campaign_grid(
            [spec],
            ["intel", "nvidia"],
            settings=TunerSettings(n_train=150, m_candidates=15),
            db=db,
            max_workers=2,
            seed=7,
        )
        return report, db, db_path, spec

    def test_every_cell_tuned_in_parallel(self, grid):
        report, _, _, _ = grid
        assert len(report.cells) == 2
        devices = {c.device for c in report.cells}
        assert devices == {"Intel i7 3770", "Nvidia K40"}
        for cell in report.cells:
            assert cell.kernel == "convolution"
            assert cell.stats.n_requested >= 165
            assert cell.ledger.total_s > 0

    def test_shards_merged_into_main_db(self, grid):
        report, db, db_path, spec = grid
        for cell in report.cells:
            assert db.table(spec.name, cell.device), cell.device
            r = cell.result
            if not r.failed:
                assert db.has(spec.name, cell.device, r.best_index)
        # and persisted to disk
        assert len(MeasurementDB(db_path)) == len(db)

    def test_report_carries_engine_counters(self, grid):
        report, _, _, _ = grid
        text = report.report()
        assert "campaign grid: 2 (kernel, device) cells" in text
        assert "cache hit" in text and "configs/s" in text
        total = report.total_stats
        assert total.n_requested == sum(c.stats.n_requested for c in report.cells)

    def test_rerun_resumes_entirely_from_db(self, grid):
        report, db, db_path, spec = grid
        from repro.core.campaign import run_campaign_grid

        again = run_campaign_grid(
            [spec],
            ["intel", "nvidia"],
            settings=TunerSettings(n_train=150, m_candidates=15),
            db=MeasurementDB(db_path),
            max_workers=1,  # inline: same semantics as the pooled path
            seed=7,
        )
        assert again.total_stats.n_simulated == 0
        assert again.total_cost_s == 0.0
        for cell in again.cells:
            before = report.result(cell.kernel, cell.device)
            assert cell.result.best_index == before.best_index
            assert not cell.result.failed
            assert cell.result.best_time_s == before.best_time_s

    def test_empty_grid_rejected(self):
        from repro.core.campaign import run_campaign_grid

        with pytest.raises(ValueError):
            run_campaign_grid([], ["intel"])
        with pytest.raises(ValueError):
            run_campaign_grid([ConvolutionKernel()], [])
