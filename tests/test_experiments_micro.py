"""Micro smoke tests of the heavy experiment functions at tiny budgets.

The benchmark suite asserts the full shape claims; these tests only verify
that each experiment function runs end to end, returns the documented
structure, and renders, so `pytest tests/` exercises every harness path.
"""

import numpy as np
import pytest

from repro.experiments import fig04_06_model_error as fig46
from repro.experiments import fig08_10_scatter as fig810
from repro.experiments import fig11_13_autotuner as fig1113
from repro.experiments import fig14_large_spaces as fig14
from repro.experiments import sec7_discussion as sec7
from repro.experiments.presets import Preset

MICRO = Preset(
    name="micro",
    training_sizes=(60, 150),
    holdout=60,
    repeats=1,
    tuner_sizes=(150,),
    tuner_m=(10, 30),
    fig14_train=200,
    fig14_m=30,
    fig14_random_budget=500,
)


class TestErrorCurveMicro:
    def test_structure_and_rendering(self):
        r = fig46.run(
            preset=MICRO, devices=("nvidia",), benchmarks=("convolution",), seed=0
        )
        curve = r["curves"][("nvidia", "convolution")]
        assert set(curve["errors"]) == {60, 150}
        assert all(0 < e < 2.0 for e in curve["errors"].values())
        assert 0 <= curve["invalid_fraction"] <= 1
        txt = fig46.format_text(r)
        assert "Figure 5" in txt and "missing" not in txt.splitlines()[3]


class TestScatterMicro:
    def test_structure(self):
        r = fig810.run(devices=("intel",), n_train=150, seed=0)
        s = r["scatter"]["intel"]
        assert s["actual_s"].shape == (100,)
        assert s["predicted_s"].shape == (100,)
        assert -1.0 <= s["log_correlation"] <= 1.0
        assert "Figure 8" in fig810.format_text(r, max_rows=5)


class TestTunerGridMicro:
    def test_structure(self):
        g = fig1113.tuner_grid_for_device(
            "intel", sizes=(150,), m_values=(10, 30), repeats=1, seed=0
        )
        assert set(g["slowdown"]) == {(150, 10), (150, 30)}
        for v in g["slowdown"].values():
            assert v != v or v >= 0.99
        r = {"preset": "micro", "devices": ("intel",), "grids": {"intel": g}}
        assert "Figure 12" in fig1113.format_text(r)

    def test_failure_counted_when_too_few_valid(self):
        g = fig1113.tuner_grid_for_device(
            "amd", sizes=(40,), m_values=(10,), repeats=1, seed=0,
            min_valid_train=1000,  # force the too-few-samples branch
        )
        assert g["failures"][(40, 10)] == 1
        assert g["slowdown"][(40, 10)] != g["slowdown"][(40, 10)]  # NaN


class TestFig14Micro:
    def test_structure(self):
        cell = fig14.tune_large_space(
            "raycasting", "nvidia", n_train=200, m_candidates=30,
            random_budget=500, seed=0,
        )
        assert cell["benchmark"] == "raycasting"
        if not cell["failed"]:
            assert cell["slowdown"] > 0
            assert cell["tuned_time_s"] > 0
        r = {
            "preset": "micro",
            "devices": ("nvidia",),
            "benchmarks": ("raycasting",),
            "cells": {("raycasting", "nvidia"): cell},
        }
        assert "Figure 14" in fig14.format_text(r)

    def test_too_few_valid_samples_reported(self):
        cell = fig14.tune_large_space(
            "stereo", "amd", n_train=12, m_candidates=5, random_budget=50, seed=0
        )
        # 12 samples on a ~50%-invalid space rarely yields 11 valid ones.
        if cell["failed"]:
            assert cell["reason"]


class TestSec7Micro:
    def test_invalid_fractions(self):
        inv = sec7.invalid_fraction_by_device(seed=0, n=300)
        assert set(inv) == {"intel", "nvidia", "amd"}
        assert all(0 <= v <= 1 for v in inv.values())

    def test_memory_sensitivity_structure(self):
        sens = sec7.memory_sensitivity_by_device(seed=0, n_base=10)
        assert set(sens) == {"intel", "nvidia", "amd"}
        assert "use_image" in sens["intel"]
