"""Tests for the configuration feature encoder."""

import numpy as np
import pytest

from repro.core.encoding import ConfigEncoder
from repro.kernels import ConvolutionKernel, RaycastingKernel
from repro.params import ParameterSpace, boolean, choice, pow2


class TestEncodingRules:
    def test_pow2_encoded_as_log2(self):
        space = ParameterSpace([pow2("wg", 1, 128)])
        enc = ConfigEncoder(space)
        X = enc.encode_indices(np.arange(space.size))
        np.testing.assert_allclose(X[:, 0], np.arange(8))
        assert enc.feature_names == ["log2(wg)"]

    def test_bool_encoded_as_01(self):
        space = ParameterSpace([boolean("flag")])
        enc = ConfigEncoder(space)
        X = enc.encode_indices([0, 1])
        np.testing.assert_allclose(X.ravel(), [0.0, 1.0])

    def test_pow2_valued_choice_gets_log2(self):
        """The paper's unroll factors (1,2,4,8,16) are a choice parameter
        but should be encoded on the log2 axis, not one-hot."""
        space = ParameterSpace([choice("unroll", (1, 2, 4, 8, 16))])
        enc = ConfigEncoder(space)
        assert enc.n_features == 1
        X = enc.encode_indices(np.arange(5))
        np.testing.assert_allclose(X.ravel(), [0, 1, 2, 3, 4])

    def test_general_choice_one_hot(self):
        space = ParameterSpace([choice("mode", ("a", "b", "c"))])
        enc = ConfigEncoder(space)
        assert enc.n_features == 3
        X = enc.encode_indices([0, 1, 2])
        np.testing.assert_allclose(X, np.eye(3))
        assert enc.feature_names == ["mode=='a'", "mode=='b'", "mode=='c'"]

    def test_non_pow2_numeric_choice_one_hot(self):
        space = ParameterSpace([choice("n", (1, 3, 5))])
        assert ConfigEncoder(space).n_features == 3


class TestBenchmarkEncodings:
    def test_convolution_feature_width(self):
        enc = ConfigEncoder(ConvolutionKernel().space)
        # 4 pow2 + 5 bool, no one-hot.
        assert enc.n_features == 9

    def test_raycasting_feature_width(self):
        enc = ConfigEncoder(RaycastingKernel().space)
        # 4 pow2 + 5 bool + 1 log2 unroll.
        assert enc.n_features == 10

    def test_encode_config_matches_encode_indices(self):
        spec = ConvolutionKernel()
        enc = ConfigEncoder(spec.space)
        cfg = spec.space[12345]
        np.testing.assert_array_equal(
            enc.encode_config(cfg), enc.encode_indices([12345])[0]
        )
        np.testing.assert_array_equal(
            enc.encode_config(dict(cfg)), enc.encode_indices([12345])[0]
        )

    def test_bulk_encoding_consistent(self):
        spec = ConvolutionKernel()
        enc = ConfigEncoder(spec.space)
        idx = np.array([0, 5, 99, 131071])
        X = enc.encode_indices(idx)
        for row, i in zip(X, idx):
            np.testing.assert_array_equal(row, enc.encode_config(spec.space[int(i)]))

    def test_repr(self):
        enc = ConfigEncoder(ConvolutionKernel().space)
        assert "9 features" in repr(enc)
